//! Compares the two clustering paradigms of the paper — density-based
//! FOSC-OPTICSDend and centroid-based MPCKMeans — on data where their
//! strengths differ, with CVCP choosing each method's parameter.
//!
//! ```text
//! cargo run --release --example compare_algorithms
//! ```
//!
//! On globular data both paradigms do well; on non-convex (two-moons-like)
//! data only the density-based method can follow the cluster shape — the
//! same qualitative behaviour the paper reports when comparing the absolute
//! F-measure levels of the two methods.

use cvcp_suite::constraints::generate::sample_labeled_subset;
use cvcp_suite::prelude::*;

fn evaluate(name: &str, dataset: &cvcp_suite::data::Dataset, rng: &mut SeededRng) {
    let labeled = sample_labeled_subset(dataset.labels(), 0.15, 2, rng);
    let side = SideInformation::Labels(labeled.clone());
    let config = CvcpConfig {
        n_folds: 5,
        stratified: true,
    };

    let fosc = FoscMethod::default();
    let mpck = MpckMethod::default();
    let fosc_sel = select_model(
        &fosc,
        dataset.matrix(),
        &side,
        &[3, 6, 9, 12, 15, 18, 21, 24],
        &config,
        rng,
    );
    let mpck_sel = select_model(
        &mpck,
        dataset.matrix(),
        &side,
        &mpck.default_parameter_range(dataset.n_classes()),
        &config,
        rng,
    );

    let fosc_partition =
        fosc.instantiate(fosc_sel.best_param)
            .cluster(dataset.matrix(), &side, rng);
    let mpck_partition =
        mpck.instantiate(mpck_sel.best_param)
            .cluster(dataset.matrix(), &side, rng);
    let fosc_f = cvcp_suite::metrics::overall_fmeasure_excluding(
        &fosc_partition,
        dataset.labels(),
        labeled.indices(),
    );
    let mpck_f = cvcp_suite::metrics::overall_fmeasure_excluding(
        &mpck_partition,
        dataset.labels(),
        labeled.indices(),
    );

    println!("{name}:");
    println!(
        "  FOSC-OPTICSDend  MinPts={:<3} internal={:.3}  Overall F={:.3}",
        fosc_sel.best_param, fosc_sel.best_score, fosc_f
    );
    println!(
        "  MPCKMeans        k={:<6} internal={:.3}  Overall F={:.3}",
        mpck_sel.best_param, mpck_sel.best_score, mpck_f
    );
}

fn main() {
    let mut rng = SeededRng::new(5);

    let globular = cvcp_suite::data::synthetic::separated_blobs(4, 30, 5, 9.0, &mut rng);
    evaluate(
        "globular blobs (both paradigms should do well)",
        &globular,
        &mut rng,
    );

    let moons = cvcp_suite::data::synthetic::two_moons(90, 0.05, 2, &mut rng);
    evaluate("two moons (density-based should win)", &moons, &mut rng);

    let rings = cvcp_suite::data::synthetic::concentric_rings(70, &[1.0, 4.0], 0.08, 2, &mut rng);
    evaluate(
        "concentric rings (density-based should win)",
        &rings,
        &mut rng,
    );
}
