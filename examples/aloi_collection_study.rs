//! A miniature version of the paper's ALOI-collection study (Figures 9–12):
//! run CVCP / Expected / Silhouette on several data sets of the ALOI-k5-like
//! collection and print box-plot summaries of the resulting quality
//! distributions.
//!
//! ```text
//! cargo run --release --example aloi_collection_study [n_datasets]
//! ```

use cvcp_suite::core::experiment::{run_experiment, summarize, ExperimentConfig, SideInfoSpec};
use cvcp_suite::core::report::boxplot_row;
use cvcp_suite::prelude::*;

fn main() {
    let n_datasets: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let collection = cvcp_suite::data::aloi::aloi_k5_collection_of_size(2014, n_datasets);
    let spec = SideInfoSpec::LabelFraction(0.10);
    let config = ExperimentConfig {
        n_trials: 3,
        cvcp: CvcpConfig {
            n_folds: 4,
            stratified: true,
        },
        params: Vec::new(), // default per-method range
        seed: 9,
        with_silhouette: true,
        n_threads: 4,
    };

    let mpck = MpckMethod::default();
    let mut cvcp_values = Vec::new();
    let mut expected_values = Vec::new();
    let mut silhouette_values = Vec::new();

    println!(
        "MPCKMeans on {} ALOI-k5-like data sets, 10% labels, {} trials each",
        collection.len(),
        config.n_trials
    );
    for dataset in &collection {
        let outcomes = run_experiment(&mpck, dataset, spec, &config);
        let summary = summarize(dataset.name(), &mpck.name(), spec, &outcomes);
        cvcp_values.extend(summary.cvcp_values.iter().copied());
        expected_values.extend(summary.expected_values.iter().copied());
        silhouette_values.extend(summary.silhouette_values.iter().copied());
        println!(
            "  {:<14} CVCP {:.3}  Expected {:.3}  Silhouette {:.3}",
            summary.dataset,
            summary.cvcp.mean,
            summary.expected.mean,
            summary.silhouette.map_or(f64::NAN, |s| s.mean)
        );
    }

    println!("\nquality distributions over the collection (cf. Figure 10 of the paper):");
    println!("{}", boxplot_row("CVCP-10", &cvcp_values));
    println!("{}", boxplot_row("Exp-10", &expected_values));
    println!("{}", boxplot_row("Sil-10", &silhouette_values));
}
