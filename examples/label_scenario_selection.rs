//! Scenario I (labelled objects) on the paper's UCI-style replicas:
//! CVCP selects `MinPts` for FOSC-OPTICSDend on every data set and the
//! example reports CVCP vs. expected quality — a miniature version of
//! Tables 5–7 of the paper.
//!
//! ```text
//! cargo run --release --example label_scenario_selection
//! ```

use cvcp_suite::core::experiment::{run_experiment, summarize, ExperimentConfig, SideInfoSpec};
use cvcp_suite::prelude::*;

fn main() {
    let corpus = cvcp_suite::data::replicas::uci_corpus(7);
    let method = FoscMethod::default();
    let spec = SideInfoSpec::LabelFraction(0.10);

    let config = ExperimentConfig {
        n_trials: 5,
        cvcp: CvcpConfig {
            n_folds: 5,
            stratified: true,
        },
        params: vec![3, 6, 9, 12, 15, 18, 21, 24],
        seed: 42,
        with_silhouette: false,
        n_threads: 4,
    };

    println!(
        "FOSC-OPTICSDend, label scenario, 10% labelled objects, {} trials",
        config.n_trials
    );
    println!(
        "{:<18} {:>9} {:>9} {:>9} {:>12}",
        "data set", "CVCP", "Expected", "diff", "correlation"
    );
    for dataset in &corpus {
        let outcomes = run_experiment(&method, dataset, spec, &config);
        let summary = summarize(dataset.name(), &method.name(), spec, &outcomes);
        println!(
            "{:<18} {:>9.4} {:>9.4} {:>+9.4} {:>12.4}",
            summary.dataset,
            summary.cvcp.mean,
            summary.expected.mean,
            summary.cvcp.mean - summary.expected.mean,
            summary.mean_correlation,
        );
    }
    println!("\n(The paper's Tables 5–7 report the same comparison over 50 trials");
    println!(" and 5/10/20% labelled objects; run the cvcp-experiments binaries for");
    println!(" the full reproduction.)");
}
