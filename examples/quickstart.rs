//! Quickstart: select the number of clusters for MPCKMeans with CVCP.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The example builds a small labelled data set, reveals 10 % of the labels
//! as side information, lets CVCP pick `k` for MPCKMeans from the range
//! 2…8, and compares the external quality of the selected model with the
//! "expected" quality of guessing the parameter.

use cvcp_suite::prelude::*;

fn main() {
    let mut rng = SeededRng::new(2014);

    // A synthetic data set with 4 well separated classes.
    let dataset = cvcp_suite::data::synthetic::separated_blobs(4, 30, 6, 10.0, &mut rng);
    println!("data set: {}", dataset.describe());

    // Scenario I: reveal the labels of 10 % of the objects.
    let labeled = cvcp_suite::constraints::generate::sample_labeled_subset(
        dataset.labels(),
        0.10,
        2,
        &mut rng,
    );
    println!("side information: {} labelled objects", labeled.len());
    let side = SideInformation::Labels(labeled.clone());

    // CVCP model selection over k = 2..=8.
    let method = MpckMethod::default();
    let params: Vec<usize> = (2..=8).collect();
    let config = CvcpConfig {
        n_folds: 5,
        stratified: true,
    };
    let selection = select_model(&method, dataset.matrix(), &side, &params, &config, &mut rng);

    println!("\nCVCP internal scores (classification F-measure over held-out constraints):");
    for eval in &selection.evaluations {
        let marker = if eval.param == selection.best_param {
            " <= selected"
        } else {
            ""
        };
        println!("  k = {:<2} score = {:.4}{marker}", eval.param, eval.score);
    }

    // Step 4: final clustering with all side information, and an external
    // check against the ground truth (excluding the labelled objects).
    let mut cvcp_external = 0.0;
    let mut externals = Vec::new();
    for &k in &params {
        let clusterer = method.instantiate(k);
        let partition = clusterer.cluster(dataset.matrix(), &side, &mut rng);
        let f = cvcp_suite::metrics::overall_fmeasure_excluding(
            &partition,
            dataset.labels(),
            labeled.indices(),
        );
        if k == selection.best_param {
            cvcp_external = f;
        }
        externals.push(f);
    }
    let expected = expected_quality(&externals);

    println!("\nexternal Overall F-measure:");
    println!(
        "  CVCP-selected k = {} : {:.4}",
        selection.best_param, cvcp_external
    );
    println!("  expected (random guess in 2..=8): {:.4}", expected);
    println!(
        "  correlation(internal, external) = {:.4}",
        cvcp_suite::metrics::pearson(&selection.scores(), &externals)
    );
}
