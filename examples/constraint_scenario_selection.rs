//! Scenario II (pairwise constraints): the user provides must-link /
//! cannot-link constraints instead of labels.  The example demonstrates the
//! transitive-closure-aware cross-validation of the paper and uses it to
//! select `MinPts` for FOSC-OPTICSDend and `k` for MPCKMeans on the same
//! data, then compares the two selected models.
//!
//! ```text
//! cargo run --release --example constraint_scenario_selection
//! ```

use cvcp_suite::constraints::generate::{constraint_pool, sample_constraints};
use cvcp_suite::prelude::*;

fn main() {
    let mut rng = SeededRng::new(31);
    let dataset = cvcp_suite::data::replicas::zyeast_like(31);
    println!("data set: {}", dataset.describe());

    // Build the paper's constraint pool (all pairs among 10% of each class)
    // and hand 20% of it to the algorithms.
    let pool = constraint_pool(dataset.labels(), 0.10, 2, &mut rng);
    let sample = sample_constraints(&pool, 0.20, &mut rng);
    println!(
        "constraint pool: {} constraints, sampled: {} ({} must-link / {} cannot-link)",
        pool.len(),
        sample.len(),
        sample.n_must_link(),
        sample.n_cannot_link()
    );
    // The transitive closure adds the implied constraints (Figure 2 of the paper).
    let closed = sample.transitive_closure();
    println!("transitive closure: {} constraints", closed.len());

    let side = SideInformation::Constraints(sample.clone());
    let config = CvcpConfig {
        n_folds: 5,
        stratified: true,
    };

    // --- FOSC-OPTICSDend: select MinPts -----------------------------------
    let fosc = FoscMethod::default();
    let fosc_sel = select_model(
        &fosc,
        dataset.matrix(),
        &side,
        &[3, 6, 9, 12, 15, 18, 21, 24],
        &config,
        &mut rng,
    );
    println!(
        "\nFOSC-OPTICSDend: selected MinPts = {} (score {:.4})",
        fosc_sel.best_param, fosc_sel.best_score
    );

    // --- MPCKMeans: select k ----------------------------------------------
    let mpck = MpckMethod::default();
    let mpck_sel = select_model(
        &mpck,
        dataset.matrix(),
        &side,
        &(2..=8).collect::<Vec<_>>(),
        &config,
        &mut rng,
    );
    println!(
        "MPCKMeans:       selected k = {} (score {:.4})",
        mpck_sel.best_param, mpck_sel.best_score
    );

    // --- compare the final models against the ground truth ----------------
    let involved = side.involved_objects();
    let fosc_partition =
        fosc.instantiate(fosc_sel.best_param)
            .cluster(dataset.matrix(), &side, &mut rng);
    let mpck_partition =
        mpck.instantiate(mpck_sel.best_param)
            .cluster(dataset.matrix(), &side, &mut rng);
    let fosc_f = cvcp_suite::metrics::overall_fmeasure_excluding(
        &fosc_partition,
        dataset.labels(),
        &involved,
    );
    let mpck_f = cvcp_suite::metrics::overall_fmeasure_excluding(
        &mpck_partition,
        dataset.labels(),
        &involved,
    );
    println!("\nexternal Overall F-measure (side-information objects excluded):");
    println!(
        "  FOSC-OPTICSDend(MinPts={}) : {:.4}",
        fosc_sel.best_param, fosc_f
    );
    println!(
        "  MPCKMeans(k={})            : {:.4}",
        mpck_sel.best_param, mpck_f
    );
    println!("\nOn this waveform-profile data the density-based model should win,");
    println!("matching the paper's observation on the Zyeast data.");
}
