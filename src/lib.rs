//! # cvcp-suite
//!
//! Umbrella crate for the CVCP reproduction — *Model Selection for
//! Semi-Supervised Clustering* (Pourrajabi et al., EDBT 2014).
//!
//! This crate simply re-exports the public API of the workspace crates so
//! downstream users can depend on a single crate:
//!
//! * [`data`] — matrices, distances, synthetic data and the paper's data-set
//!   replicas;
//! * [`constraints`] — must-link/cannot-link constraints, transitive closure
//!   and the leak-free cross-validation fold machinery;
//! * [`metrics`] — internal and external evaluation measures and statistics;
//! * [`kmeans`] — MPCKMeans and friends;
//! * [`density`] — OPTICS, dendrograms, FOSC and FOSC-OPTICSDend;
//! * [`obs`] — always-on engine metrics (log-bucketed histograms), the
//!   opt-in per-job span recorder and the critical-path profiler;
//! * [`engine`] — the deterministic, cache-aware parallel execution engine
//!   that evaluates the (parameter × fold × replica) grid;
//! * [`core`] — the CVCP model-selection framework, baselines and the
//!   experiment harness;
//! * [`server`] — the newline-delimited-JSON TCP serving front-end over
//!   the engine.
//!
//! See the `examples/` directory for end-to-end usage and `EXPERIMENTS.md`
//! for the reproduction of the paper's tables and figures.

#![warn(missing_docs)]

pub use cvcp_constraints as constraints;
pub use cvcp_core as core;
pub use cvcp_data as data;
pub use cvcp_density as density;
pub use cvcp_engine as engine;
pub use cvcp_kmeans as kmeans;
pub use cvcp_metrics as metrics;
pub use cvcp_obs as obs;
pub use cvcp_server as server;

/// One-stop prelude re-exporting the most commonly used items.
pub mod prelude {
    pub use cvcp_constraints::prelude::*;
    pub use cvcp_core::prelude::*;
    pub use cvcp_data::prelude::*;
    pub use cvcp_density::prelude::*;
    pub use cvcp_engine::prelude::*;
    pub use cvcp_kmeans::prelude::*;
    pub use cvcp_metrics::prelude::*;
}

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_are_wired_up() {
        // Touch one item from every re-exported crate.
        let _ = crate::data::replicas::iris_like(0);
        let _ = crate::constraints::ConstraintSet::new(3);
        let _ = crate::metrics::stats::mean(&[1.0, 2.0]);
        let _ = crate::kmeans::KMeans::new(2);
        let _ = crate::density::Dbscan::new(1.0, 3);
        let _ = crate::engine::Engine::sequential();
        let _ = crate::obs::LogHistogram::new();
        let _ = crate::core::CvcpConfig::default();
        let _ = crate::server::ServerConfig::default();
    }
}
