//! End-to-end integration tests for Scenario II (pairwise constraints),
//! exercising the transitive-closure-aware fold splitting together with both
//! clustering algorithms.

use cvcp_suite::constraints::folds::{constraint_scenario_folds, leaked_constraints};
use cvcp_suite::constraints::generate::{constraint_pool, sample_constraints};
use cvcp_suite::prelude::*;

fn dataset(seed: u64) -> cvcp_suite::data::Dataset {
    let mut rng = SeededRng::new(seed);
    cvcp_suite::data::synthetic::separated_blobs(4, 22, 3, 10.0, &mut rng)
}

#[test]
fn constraint_scenario_selection_works_for_both_methods() {
    let ds = dataset(10);
    let mut rng = SeededRng::new(11);
    let pool = constraint_pool(ds.labels(), 0.15, 2, &mut rng);
    let sample = sample_constraints(&pool, 0.5, &mut rng);
    let side = SideInformation::Constraints(sample.clone());
    let cfg = CvcpConfig {
        n_folds: 4,
        stratified: true,
    };

    let fosc_sel = select_model(
        &FoscMethod::default(),
        ds.matrix(),
        &side,
        &[3, 6, 9, 12, 15, 18, 21, 24],
        &cfg,
        &mut rng,
    );
    let mpck_sel = select_model(
        &MpckMethod::default(),
        ds.matrix(),
        &side,
        &[2, 3, 4, 5, 6, 7, 8],
        &cfg,
        &mut rng,
    );

    // clusters have 22 objects; MinPts beyond that cannot describe them
    assert!(
        fosc_sel.best_param <= 21,
        "MinPts = {}",
        fosc_sel.best_param
    );
    assert!(
        (2..=6).contains(&mpck_sel.best_param),
        "k = {}",
        mpck_sel.best_param
    );

    // the selected models must cluster the data reasonably
    let involved = side.involved_objects();
    for (method, param) in [
        (
            &FoscMethod::default() as &dyn ParameterizedMethod,
            fosc_sel.best_param,
        ),
        (
            &MpckMethod::default() as &dyn ParameterizedMethod,
            mpck_sel.best_param,
        ),
    ] {
        let partition = method
            .instantiate(param)
            .cluster(ds.matrix(), &side, &mut rng);
        let f = cvcp_suite::metrics::overall_fmeasure_excluding(&partition, ds.labels(), &involved);
        assert!(f > 0.6, "{} external F = {f}", method.name());
    }
}

#[test]
fn cross_validation_folds_never_leak_through_the_closure() {
    // The paper's central methodological point: after fold splitting, no
    // test constraint is derivable from the training constraints.
    for seed in 0..5u64 {
        let ds = dataset(seed);
        let mut rng = SeededRng::new(seed * 13 + 1);
        let pool = constraint_pool(ds.labels(), 0.2, 2, &mut rng);
        let sample = sample_constraints(&pool, 0.6, &mut rng);
        let splits = constraint_scenario_folds(&sample, 5, &mut rng);
        let leaks = leaked_constraints(&splits);
        assert!(
            leaks.is_empty(),
            "seed {seed}: found {} leaked constraints",
            leaks.len()
        );
    }
}

#[test]
fn more_constraints_do_not_hurt_fosc_quality() {
    // Matches the trend in Tables 11–13: quality improves (or stays) as the
    // number of constraints grows.
    let ds = dataset(20);
    let method = FoscMethod::default();
    let cfg = CvcpConfig {
        n_folds: 4,
        stratified: true,
    };
    let mut rng = SeededRng::new(21);
    let pool = constraint_pool(ds.labels(), 0.2, 2, &mut rng);

    let mut quality_at = Vec::new();
    for fraction in [0.2, 0.8] {
        let mut best = Vec::new();
        for trial in 0..3u64 {
            let mut trial_rng = SeededRng::new(100 + trial);
            let sample = sample_constraints(&pool, fraction, &mut trial_rng);
            let side = SideInformation::Constraints(sample);
            let sel = select_model(
                &method,
                ds.matrix(),
                &side,
                &[3, 6, 9, 12, 15],
                &cfg,
                &mut trial_rng,
            );
            let partition =
                method
                    .instantiate(sel.best_param)
                    .cluster(ds.matrix(), &side, &mut trial_rng);
            let involved = side.involved_objects();
            best.push(cvcp_suite::metrics::overall_fmeasure_excluding(
                &partition,
                ds.labels(),
                &involved,
            ));
        }
        quality_at.push(best.iter().sum::<f64>() / best.len() as f64);
    }
    assert!(
        quality_at[1] >= quality_at[0] - 0.05,
        "quality with more constraints {:.3} should not collapse below {:.3}",
        quality_at[1],
        quality_at[0]
    );
}

#[test]
fn experiment_harness_runs_both_scenarios_end_to_end() {
    use cvcp_suite::core::experiment::{run_experiment, summarize, ExperimentConfig, SideInfoSpec};
    let ds = dataset(30);
    let cfg = ExperimentConfig {
        n_trials: 3,
        cvcp: CvcpConfig {
            n_folds: 3,
            stratified: true,
        },
        params: vec![2, 4, 6],
        seed: 7,
        with_silhouette: true,
        n_threads: 2,
    };
    for spec in [
        SideInfoSpec::LabelFraction(0.15),
        SideInfoSpec::ConstraintSample {
            pool_fraction: 0.15,
            sample_fraction: 0.5,
        },
    ] {
        let outcomes = run_experiment(&MpckMethod::default(), &ds, spec, &cfg);
        let summary = summarize(ds.name(), "MPCKMeans", spec, &outcomes);
        assert_eq!(summary.cvcp_values.len(), 3);
        assert!(summary.cvcp.mean >= 0.0 && summary.cvcp.mean <= 1.0);
        assert!(summary.expected.mean >= 0.0 && summary.expected.mean <= 1.0);
    }
}
