//! "Shape" checks: small-scale versions of the qualitative findings of the
//! paper that must hold in this reproduction even though absolute numbers
//! differ (the original data sets are replaced by synthetic replicas).
//!
//! * CVCP's external quality is at least the expected (random-guess) quality
//!   on data where good parameters exist (Tables 5–16, main finding);
//! * the internal scores correlate strongly with the external quality for
//!   FOSC-OPTICSDend (Tables 1 and 3);
//! * the density-based paradigm reaches higher absolute quality than
//!   MPCKMeans on non-globular data (Section 4.3 discussion).

use cvcp_suite::core::experiment::{run_experiment, summarize, ExperimentConfig, SideInfoSpec};
use cvcp_suite::prelude::*;

fn quick_config(params: Vec<usize>, trials: usize) -> ExperimentConfig {
    ExperimentConfig {
        n_trials: trials,
        cvcp: CvcpConfig {
            n_folds: 4,
            stratified: true,
        },
        params,
        seed: 2014,
        with_silhouette: true,
        n_threads: 4,
    }
}

#[test]
fn cvcp_beats_or_matches_expected_on_aloi_like_data_with_fosc() {
    let ds = cvcp_suite::data::aloi::aloi_k5_dataset(1, 0);
    let cfg = quick_config(vec![3, 6, 9, 12, 15, 18, 21, 24], 5);
    let outcomes = run_experiment(
        &FoscMethod::default(),
        &ds,
        SideInfoSpec::LabelFraction(0.10),
        &cfg,
    );
    let summary = summarize(
        ds.name(),
        "FOSC-OPTICSDend",
        SideInfoSpec::LabelFraction(0.10),
        &outcomes,
    );
    assert!(
        summary.cvcp.mean >= summary.expected.mean - 0.03,
        "CVCP {:.3} must not trail Expected {:.3}",
        summary.cvcp.mean,
        summary.expected.mean
    );
}

#[test]
fn fosc_internal_external_correlation_is_high_on_aloi_like_data() {
    let ds = cvcp_suite::data::aloi::aloi_k5_dataset(3, 1);
    let cfg = quick_config(vec![3, 6, 9, 12, 15, 18, 21, 24], 4);
    let outcomes = run_experiment(
        &FoscMethod::default(),
        &ds,
        SideInfoSpec::LabelFraction(0.10),
        &cfg,
    );
    let mean_corr: f64 =
        outcomes.iter().map(|o| o.correlation).sum::<f64>() / outcomes.len() as f64;
    assert!(
        mean_corr > 0.5,
        "expected a strong positive correlation as in Table 1, got {mean_corr}"
    );
}

#[test]
fn density_paradigm_beats_mpck_on_non_globular_data() {
    let mut rng = SeededRng::new(6);
    let ds = cvcp_suite::data::synthetic::two_moons(80, 0.05, 2, &mut rng);
    let cfg_f = quick_config(vec![4, 6, 8, 10], 3);
    let cfg_m = quick_config(vec![2, 3, 4], 3);
    let spec = SideInfoSpec::LabelFraction(0.15);
    let fosc = summarize(
        "moons",
        "FOSC",
        spec,
        &run_experiment(&FoscMethod::default(), &ds, spec, &cfg_f),
    );
    let mpck = summarize(
        "moons",
        "MPCK",
        spec,
        &run_experiment(&MpckMethod::default(), &ds, spec, &cfg_m),
    );
    assert!(
        fosc.cvcp.mean > mpck.cvcp.mean,
        "FOSC {:.3} should beat MPCKMeans {:.3} on two moons",
        fosc.cvcp.mean,
        mpck.cvcp.mean
    );
}

#[test]
fn cvcp_beats_silhouette_on_aloi_like_data_with_mpck() {
    // Figure 10 / Tables 8–10: CVCP > Silhouette on the ALOI collection.
    let ds = cvcp_suite::data::aloi::aloi_k5_dataset(5, 2);
    let cfg = quick_config((2..=10).collect(), 5);
    let outcomes = run_experiment(
        &MpckMethod::default(),
        &ds,
        SideInfoSpec::LabelFraction(0.10),
        &cfg,
    );
    let summary = summarize(
        ds.name(),
        "MPCKMeans",
        SideInfoSpec::LabelFraction(0.10),
        &outcomes,
    );
    let sil = summary
        .silhouette
        .as_ref()
        .expect("silhouette evaluated")
        .mean;
    assert!(
        summary.cvcp.mean >= sil - 0.05,
        "CVCP {:.3} should not trail Silhouette {:.3} by a wide margin",
        summary.cvcp.mean,
        sil
    );
}

#[test]
fn fosc_quality_stays_high_across_label_amounts() {
    // Tables 5–7: for FOSC-OPTICSDend on an ALOI-like data set, CVCP keeps a
    // clear advantage over the Expected baseline at both the smallest and the
    // largest amount of labelled objects, and absolute quality stays high.
    // (The paper's monotone 5% → 20% trend is a collection-level average over
    // 50 trials; a single data set with a handful of trials is too noisy to
    // assert it directly.)
    let ds = cvcp_suite::data::aloi::aloi_k5_dataset(7, 3);
    let cfg = quick_config(vec![3, 6, 9, 12, 15, 18, 21, 24], 4);
    for fraction in [0.05, 0.20] {
        let spec = SideInfoSpec::LabelFraction(fraction);
        let summary = summarize(
            ds.name(),
            "FOSC",
            spec,
            &run_experiment(&FoscMethod::default(), &ds, spec, &cfg),
        );
        // With only a handful of trials CVCP may occasionally land a whisker
        // below the Expected mean; a small tolerance keeps the check focused
        // on the qualitative claim (no collapse relative to guessing).
        assert!(
            summary.cvcp.mean >= summary.expected.mean - 0.05,
            "{:.0}% labels: CVCP {:.3} must not clearly trail Expected {:.3}",
            fraction * 100.0,
            summary.cvcp.mean,
            summary.expected.mean
        );
        // The ALOI-like replicas deliberately include hard, overlapping sets
        // (DESIGN.md §3); the guard below only rules out a collapse to an
        // all-noise / single-cluster solution.
        assert!(
            summary.cvcp.mean > 0.35,
            "{:.0}% labels: CVCP quality {:.3} unexpectedly low",
            fraction * 100.0,
            summary.cvcp.mean
        );
    }
}
