//! End-to-end integration tests for Scenario I (labelled objects): the whole
//! pipeline — data generation, label sampling, CVCP cross-validation, model
//! selection, final clustering and external evaluation — across crates.

use cvcp_suite::constraints::generate::sample_labeled_subset;
use cvcp_suite::prelude::*;

fn blobs(seed: u64, k: usize, per: usize) -> cvcp_suite::data::Dataset {
    let mut rng = SeededRng::new(seed);
    cvcp_suite::data::synthetic::separated_blobs(k, per, 4, 11.0, &mut rng)
}

#[test]
fn cvcp_selects_a_working_minpts_for_fosc() {
    let ds = blobs(1, 4, 20);
    let mut rng = SeededRng::new(100);
    let labeled = sample_labeled_subset(ds.labels(), 0.2, 2, &mut rng);
    let side = SideInformation::Labels(labeled.clone());
    let cfg = CvcpConfig {
        n_folds: 5,
        stratified: true,
    };
    let method = FoscMethod::default();
    let sel = select_model(
        &method,
        ds.matrix(),
        &side,
        &[3, 6, 9, 12, 15, 18, 21, 24],
        &cfg,
        &mut rng,
    );
    // Clusters have 20 objects each: the selected MinPts must not exceed the
    // cluster size (parameters above it score poorly in cross-validation).
    assert!(
        sel.best_param <= 18,
        "selected MinPts {} with scores {:?}",
        sel.best_param,
        sel.scores()
    );
    // The final clustering with the selected parameter must beat the
    // expected quality of a random guess from the range.
    let involved = labeled.indices();
    let mut externals = Vec::new();
    let mut chosen = 0.0;
    for &p in &[3usize, 6, 9, 12, 15, 18, 21, 24] {
        let partition = method.instantiate(p).cluster(ds.matrix(), &side, &mut rng);
        let f = cvcp_suite::metrics::overall_fmeasure_excluding(&partition, ds.labels(), involved);
        if p == sel.best_param {
            chosen = f;
        }
        externals.push(f);
    }
    let expected = expected_quality(&externals);
    assert!(
        chosen >= expected,
        "CVCP external {chosen} must be at least expected {expected} (externals {externals:?})"
    );
    assert!(
        chosen > 0.8,
        "CVCP-selected clustering should be good, got {chosen}"
    );
}

#[test]
fn cvcp_selects_a_working_k_for_mpck() {
    let ds = blobs(2, 3, 25);
    let mut rng = SeededRng::new(200);
    let labeled = sample_labeled_subset(ds.labels(), 0.2, 2, &mut rng);
    let side = SideInformation::Labels(labeled.clone());
    let cfg = CvcpConfig {
        n_folds: 5,
        stratified: true,
    };
    let method = MpckMethod::default();
    let sel = select_model(
        &method,
        ds.matrix(),
        &side,
        &[2, 3, 4, 5, 6, 7, 8],
        &cfg,
        &mut rng,
    );
    assert!(
        (2..=4).contains(&sel.best_param),
        "selected k {} (scores {:?})",
        sel.best_param,
        sel.scores()
    );
    let partition = method
        .instantiate(sel.best_param)
        .cluster(ds.matrix(), &side, &mut rng);
    let f =
        cvcp_suite::metrics::overall_fmeasure_excluding(&partition, ds.labels(), labeled.indices());
    assert!(f > 0.75, "external F = {f}");
}

#[test]
fn internal_and_external_scores_correlate_on_separable_data() {
    // The core claim of Section 4.2: internal classification scores track
    // the external Overall F-measure across the parameter range.
    let ds = blobs(3, 4, 18);
    let mut rng = SeededRng::new(300);
    let labeled = sample_labeled_subset(ds.labels(), 0.25, 2, &mut rng);
    let side = SideInformation::Labels(labeled.clone());
    let cfg = CvcpConfig {
        n_folds: 5,
        stratified: true,
    };
    let method = FoscMethod::default();
    let params = vec![3usize, 6, 9, 12, 15, 18, 21, 24];
    let sel = select_model(&method, ds.matrix(), &side, &params, &cfg, &mut rng);
    let internal = sel.scores();
    let mut external = Vec::new();
    for &p in &params {
        let partition = method.instantiate(p).cluster(ds.matrix(), &side, &mut rng);
        external.push(cvcp_suite::metrics::overall_fmeasure_excluding(
            &partition,
            ds.labels(),
            labeled.indices(),
        ));
    }
    let r = cvcp_suite::metrics::pearson(&internal, &external);
    assert!(
        r > 0.5,
        "expected a clear positive correlation, got {r} (internal {internal:?}, external {external:?})"
    );
}

#[test]
fn whole_pipeline_is_reproducible_from_the_seed() {
    let ds = blobs(4, 3, 15);
    let run = |seed: u64| {
        let mut rng = SeededRng::new(seed);
        let labeled = sample_labeled_subset(ds.labels(), 0.3, 2, &mut rng);
        let side = SideInformation::Labels(labeled);
        let cfg = CvcpConfig {
            n_folds: 4,
            stratified: true,
        };
        let sel = select_model(
            &MpckMethod::default(),
            ds.matrix(),
            &side,
            &[2, 3, 4, 5],
            &cfg,
            &mut rng,
        );
        (sel.best_param, sel.scores())
    };
    assert_eq!(run(77), run(77));
}

#[test]
fn labelled_objects_are_excluded_from_external_evaluation() {
    // The "set aside" rule: perfect clustering of the *unlabelled* objects
    // scores 1.0 even if the labelled objects were placed badly.
    let ds = blobs(5, 2, 10);
    let mut rng = SeededRng::new(500);
    let labeled = sample_labeled_subset(ds.labels(), 0.2, 1, &mut rng);
    // Build a partition that is perfect except for the labelled objects.
    let mut ids: Vec<usize> = ds.labels().to_vec();
    for &i in labeled.indices() {
        ids[i] = 1 - ids[i]; // flip the labelled objects' clusters
    }
    let partition = cvcp_suite::data::Partition::from_cluster_ids(&ids);
    let f_all = cvcp_suite::metrics::overall_fmeasure(&partition, ds.labels());
    let f_excl =
        cvcp_suite::metrics::overall_fmeasure_excluding(&partition, ds.labels(), labeled.indices());
    assert!(f_excl > f_all);
    assert!((f_excl - 1.0).abs() < 1e-12);
}
