//! Observability guarantees, exercised through the public `cvcp-suite`
//! API:
//!
//! 1. tracing and metrics are **invisible to results** — a traced
//!    selection is bit-identical to the untraced one at 1, 2 and 8
//!    threads, with metrics enabled or disabled;
//! 2. the Chrome `trace_event` export of a full selection is well-formed:
//!    it parses, carries exactly one `X` span per graph job, and every
//!    span nests inside the recorded wall clock;
//! 3. the derived [`GraphProfile`] is internally consistent (critical
//!    path within the wall clock, busy time attributed to workers).

use cvcp_suite::core::trace_export::chrome_trace_json;
use cvcp_suite::core::{
    run_selection_request, run_selection_request_traced, Algorithm, GraphProfile, Json,
    SelectionRequest, SideInfoSpec,
};
use cvcp_suite::engine::Engine;

fn request(id: &str, trace: bool) -> SelectionRequest {
    SelectionRequest {
        id: id.to_string(),
        dataset: "iris_like".to_string(),
        algorithm: Algorithm::Fosc,
        params: vec![3, 6, 9],
        side_info: SideInfoSpec::LabelFraction(0.2),
        n_folds: 4,
        stratified: true,
        seed: 20_140_324,
        priority: None,
        trace,
    }
}

#[test]
fn tracing_and_metrics_never_change_the_selection() {
    let reference = run_selection_request(
        &Engine::sequential(),
        &request("reference", false),
        None,
        |_| {},
    )
    .expect("reference run");

    for threads in [1usize, 2, 8] {
        // Untraced, metrics on (the default engine).
        let plain = run_selection_request(
            &Engine::with_exact_threads(threads),
            &request("p", false),
            None,
            |_| {},
        )
        .expect("plain run");
        assert_eq!(plain, reference, "untraced diverged at {threads} threads");

        // Traced, metrics on.
        let (traced, trace) = run_selection_request_traced(
            &Engine::with_exact_threads(threads),
            &request("t", true),
            None,
            |_| {},
        )
        .expect("traced run");
        assert_eq!(traced, reference, "traced diverged at {threads} threads");
        let trace = trace.expect("trace recorded");
        assert_eq!(
            trace.spans.len(),
            trace.n_jobs,
            "every job has a span at {threads} threads"
        );

        // Untraced, metrics off.
        let unmetered = run_selection_request(
            &Engine::with_metrics_disabled(threads),
            &request("m", false),
            None,
            |_| {},
        )
        .expect("metrics-disabled run");
        assert_eq!(
            unmetered, reference,
            "metrics-disabled run diverged at {threads} threads"
        );
    }
}

#[test]
fn chrome_export_of_a_full_selection_is_well_formed() {
    let (_, trace) = run_selection_request_traced(
        &Engine::with_exact_threads(4),
        &request("export", true),
        None,
        |_| {},
    )
    .expect("traced run");
    let trace = trace.expect("trace recorded");

    let doc = chrome_trace_json(&trace);
    let reparsed = Json::parse(&doc.pretty()).expect("chrome export is valid JSON");
    let events = reparsed
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");

    let spans: Vec<&Json> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("X"))
        .collect();
    assert_eq!(spans.len(), trace.n_jobs, "one X event per graph job");

    let wall_us = trace.wall_ns as f64 / 1000.0;
    for span in &spans {
        let ts = span.get("ts").and_then(|v| v.as_f64()).expect("ts");
        let dur = span.get("dur").and_then(|v| v.as_f64()).expect("dur");
        assert!(ts >= 0.0 && dur >= 0.0);
        // Bucket-free nesting check with a microsecond of rounding slack.
        assert!(
            ts + dur <= wall_us + 1.0,
            "span [{ts}, {}] escapes the wall clock {wall_us}",
            ts + dur
        );
        let name = span.get("name").and_then(|v| v.as_str()).expect("name");
        assert!(!name.is_empty(), "spans carry job labels");
    }

    // Each pool worker got a thread_name metadata row.
    let thread_names = events
        .iter()
        .filter(|e| e.get("name").and_then(|v| v.as_str()) == Some("thread_name"))
        .count();
    assert!(
        thread_names >= trace.n_workers,
        "a timeline row per worker ({thread_names} < {})",
        trace.n_workers
    );

    let profile = GraphProfile::from_trace(&trace);
    assert_eq!(profile.n_jobs, trace.n_jobs);
    assert_eq!(profile.n_executed, trace.spans.len());
    assert!(profile.critical_path_ns <= profile.wall_ns);
    assert!(!profile.critical_path_jobs.is_empty());
    assert!(profile.parallelism > 0.0);
    let attributed: u64 = profile.workers.iter().map(|w| w.busy_ns).sum();
    let off_pool: u64 = trace
        .spans
        .iter()
        .filter(|s| s.worker.is_none())
        .map(|s| s.duration_ns())
        .sum();
    assert_eq!(
        attributed + off_pool,
        profile.total_busy_ns,
        "busy time is fully attributed"
    );
}
