//! The LockRank guard is *observation only*: it may panic on a
//! lock-order violation, but it must never change what the engine
//! computes.  This pins the acceptance criterion of ISSUE 7 — selection
//! output is bit-identical with the guard's checking enabled and disabled
//! (and, in release profiles where the guard compiles away, trivially so).
//!
//! The on→off→on sequence lives in a single `#[test]` on purpose: the
//! checking switch is process-global, and this file being its own test
//! binary keeps the toggle from racing unrelated parallel tests.

use cvcp_engine::obs::lock_rank::{checking_enabled, set_checking_enabled};
use cvcp_suite::constraints::generate::sample_labeled_subset;
use cvcp_suite::constraints::SideInformation;
use cvcp_suite::core::{select_model_with, CvcpConfig, CvcpSelection, FoscMethod};
use cvcp_suite::data::rng::SeededRng;
use cvcp_suite::data::synthetic::separated_blobs;
use cvcp_suite::engine::Engine;

fn run_selection() -> CvcpSelection {
    let mut rng = SeededRng::new(31);
    let ds = separated_blobs(3, 18, 4, 10.0, &mut rng);
    let side = {
        let mut rng = SeededRng::new(32);
        SideInformation::Labels(sample_labeled_subset(ds.labels(), 0.3, 2, &mut rng))
    };
    let cfg = CvcpConfig {
        n_folds: 4,
        stratified: true,
    };
    let engine = Engine::with_exact_threads(4);
    let mut rng = SeededRng::new(33);
    select_model_with(
        &engine,
        &FoscMethod::default(),
        ds.matrix(),
        &side,
        &[3usize, 5, 7, 9],
        &cfg,
        &mut rng,
    )
}

#[test]
fn selection_is_bit_identical_with_the_guard_on_and_off() {
    let initially_checking = checking_enabled();
    set_checking_enabled(true);
    let guarded = run_selection();
    set_checking_enabled(false);
    let unguarded = run_selection();
    set_checking_enabled(true);
    let guarded_again = run_selection();
    set_checking_enabled(initially_checking || !cfg!(debug_assertions));

    assert_eq!(
        guarded, unguarded,
        "LockRank checking must not change the selection"
    );
    assert_eq!(guarded, guarded_again, "and must be deterministic itself");
    assert_eq!(guarded.evaluations.len(), 4, "every candidate evaluated");
}
