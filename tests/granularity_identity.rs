//! Granularity is pure scheduling: the fused per-(trial × parameter)
//! chunk lowering and the per-fold cell lowering must produce
//! **bit-identical** selections at every thread count (ISSUE 9).  Each
//! fused cell forks its RNG stream from the trial's frozen base and its
//! (parameter, fold) coordinates — exactly as a per-fold job does — so
//! job boundaries cannot leak into results.

use cvcp_engine::Engine;
use cvcp_suite::constraints::generate::sample_labeled_subset;
use cvcp_suite::constraints::SideInformation;
use cvcp_suite::core::{
    select_model_with, select_model_with_granularity, CvcpConfig, Granularity, MpckMethod,
};
use cvcp_suite::data::rng::SeededRng;
use cvcp_suite::data::synthetic::separated_blobs;
use cvcp_suite::data::Dataset;

fn blobs(seed: u64) -> Dataset {
    let mut rng = SeededRng::new(seed);
    separated_blobs(3, 22, 4, 11.0, &mut rng)
}

fn label_side(ds: &Dataset, seed: u64) -> SideInformation {
    let mut rng = SeededRng::new(seed);
    SideInformation::Labels(sample_labeled_subset(ds.labels(), 0.25, 2, &mut rng))
}

#[test]
fn fused_and_per_fold_lowerings_are_bit_identical_at_1_2_and_8_threads() {
    let ds = blobs(61);
    let side = label_side(&ds, 62);
    let cfg = CvcpConfig {
        n_folds: 5,
        stratified: true,
    };
    let params = [2usize, 3, 4, 5];

    let run = |n_threads: usize, granularity: Granularity| {
        let engine = Engine::with_exact_threads(n_threads);
        let mut rng = SeededRng::new(9);
        select_model_with_granularity(
            &engine,
            &MpckMethod::default(),
            ds.matrix(),
            &side,
            &params,
            &cfg,
            &mut rng,
            granularity,
        )
    };

    let baseline = run(1, Granularity::PerFold);
    for n_threads in [1usize, 2, 8] {
        for granularity in [Granularity::PerFold, Granularity::Fused, Granularity::Auto] {
            assert_eq!(
                baseline,
                run(n_threads, granularity),
                "{granularity:?} lowering at {n_threads} threads must equal the sequential per-fold run"
            );
        }
    }
}

#[test]
fn granularity_pinned_entry_point_matches_the_cost_model_entry_point() {
    let ds = blobs(71);
    let side = label_side(&ds, 72);
    let cfg = CvcpConfig {
        n_folds: 5,
        stratified: true,
    };
    let params = [2usize, 3, 4];

    let auto = {
        let engine = Engine::with_exact_threads(4);
        let mut rng = SeededRng::new(5);
        select_model_with(
            &engine,
            &MpckMethod::default(),
            ds.matrix(),
            &side,
            &params,
            &cfg,
            &mut rng,
        )
    };
    for granularity in [Granularity::PerFold, Granularity::Fused] {
        let engine = Engine::with_exact_threads(4);
        let mut rng = SeededRng::new(5);
        let pinned = select_model_with_granularity(
            &engine,
            &MpckMethod::default(),
            ds.matrix(),
            &side,
            &params,
            &cfg,
            &mut rng,
            granularity,
        );
        assert_eq!(auto, pinned, "{granularity:?} must match the Auto lowering");
    }
}
