//! Engine-level guarantees of the CVCP execution engine, exercised through
//! the public `cvcp-suite` API:
//!
//! 1. model selection is **bit-identical** at 1, 2 and 8 threads for the
//!    same seed (the sequential path is literally the 1-thread case);
//! 2. the artifact cache hands out **pointer-equal** (`Arc::ptr_eq`)
//!    distance matrices and density hierarchies across folds and requests;
//! 3. a failed or cancelled job never poisons the pool — subsequent
//!    requests on the same engine still succeed.

use cvcp_engine::{
    fingerprint_matrix, ArtifactCache, ArtifactKey, CacheConfig, Engine, JobGraph, JobOutcome,
};
use cvcp_suite::constraints::generate::{
    constraint_pool, sample_constraints, sample_labeled_subset,
};
use cvcp_suite::constraints::SideInformation;
use cvcp_suite::core::experiment::{
    run_experiment, run_experiment_on, run_experiment_trialwise, ExperimentConfig, SideInfoSpec,
};
use cvcp_suite::core::{select_model, select_model_with, CvcpConfig, FoscMethod, MpckMethod};
use cvcp_suite::data::rng::SeededRng;
use cvcp_suite::data::synthetic::separated_blobs;
use cvcp_suite::data::Dataset;
use std::sync::Arc;

fn blobs(seed: u64) -> Dataset {
    let mut rng = SeededRng::new(seed);
    separated_blobs(3, 22, 4, 11.0, &mut rng)
}

fn label_side(ds: &Dataset, seed: u64) -> SideInformation {
    let mut rng = SeededRng::new(seed);
    SideInformation::Labels(sample_labeled_subset(ds.labels(), 0.25, 2, &mut rng))
}

#[test]
fn selection_is_bit_identical_at_1_2_and_8_threads() {
    let ds = blobs(41);
    let side = label_side(&ds, 42);
    let cfg = CvcpConfig {
        n_folds: 5,
        stratified: true,
    };
    let params = [2usize, 3, 4, 5, 6];

    let run = |n_threads: usize| {
        let engine = Engine::with_exact_threads(n_threads);
        let mut rng = SeededRng::new(7);
        select_model_with(
            &engine,
            &MpckMethod::default(),
            ds.matrix(),
            &side,
            &params,
            &cfg,
            &mut rng,
        )
    };
    let seq = run(1);
    assert_eq!(seq, run(2), "2-thread run must equal the sequential run");
    assert_eq!(seq, run(8), "8-thread run must equal the sequential run");

    // The plain sequential entry point is the same computation.
    let mut rng = SeededRng::new(7);
    let plain = select_model(
        &MpckMethod::default(),
        ds.matrix(),
        &side,
        &params,
        &cfg,
        &mut rng,
    );
    assert_eq!(seq, plain);
}

#[test]
fn fosc_selection_is_thread_count_invariant_in_the_constraint_scenario() {
    let ds = blobs(50);
    let mut rng = SeededRng::new(51);
    let pool = constraint_pool(ds.labels(), 0.25, 2, &mut rng);
    let side = SideInformation::Constraints(sample_constraints(&pool, 0.6, &mut rng));
    let cfg = CvcpConfig {
        n_folds: 4,
        stratified: true,
    };
    let params = [3usize, 6, 9, 12, 15];

    let run = |n_threads: usize| {
        let engine = Engine::with_exact_threads(n_threads);
        let mut rng = SeededRng::new(9);
        select_model_with(
            &engine,
            &FoscMethod::default(),
            ds.matrix(),
            &side,
            &params,
            &cfg,
            &mut rng,
        )
    };
    let seq = run(1);
    assert_eq!(seq, run(2));
    assert_eq!(seq, run(8));
}

#[test]
fn experiments_are_bit_identical_across_thread_counts() {
    let ds = blobs(60);
    let config = |n_threads: usize| ExperimentConfig {
        n_trials: 4,
        cvcp: CvcpConfig {
            n_folds: 3,
            stratified: true,
        },
        params: vec![2, 3, 4],
        seed: 17,
        with_silhouette: true,
        n_threads,
    };
    let a = run_experiment(
        &MpckMethod::default(),
        &ds,
        SideInfoSpec::LabelFraction(0.2),
        &config(1),
    );
    let b = run_experiment(
        &MpckMethod::default(),
        &ds,
        SideInfoSpec::LabelFraction(0.2),
        &config(8),
    );
    assert_eq!(a, b);
}

#[test]
fn unified_experiment_plan_is_bit_identical_to_the_trialwise_reference() {
    // The full-grid lowering contract: `run_experiment_on` fans the whole
    // (trial × parameter × fold) grid — plus every per-parameter final
    // clustering — into one batch-lane job graph, and its reports must be
    // bit-identical to the trial-only reference lowering (the pre-unified
    // shape, one inline job per trial) at 1, 2 and 8 threads.
    let ds = blobs(95);
    let config = ExperimentConfig {
        n_trials: 3,
        cvcp: CvcpConfig {
            n_folds: 3,
            stratified: true,
        },
        params: vec![2, 3, 4],
        seed: 23,
        with_silhouette: true,
        n_threads: 1, // unused: engines are built explicitly below
    };
    let spec = SideInfoSpec::LabelFraction(0.2);
    let reference = run_experiment_trialwise(
        &Engine::with_exact_threads(4),
        &MpckMethod::default(),
        &ds,
        spec,
        &config,
    );
    assert_eq!(reference.len(), 3);
    for threads in [1usize, 2, 8] {
        let unified = run_experiment_on(
            &Engine::with_exact_threads(threads),
            &MpckMethod::default(),
            &ds,
            spec,
            &config,
        );
        assert_eq!(
            unified, reference,
            "unified plan diverged from the trialwise reference at {threads} threads"
        );
    }
}

#[test]
fn selection_is_bit_identical_under_cache_sharding() {
    // `CVCP_CACHE_SHARDS` (fed into `CacheConfig::shards`) only
    // repartitions the artifact cache across independent locks; the
    // selection result must be bit-identical at every (thread count ×
    // shard count) combination.
    let ds = blobs(90);
    let side = label_side(&ds, 91);
    let cfg = CvcpConfig {
        n_folds: 4,
        stratified: true,
    };
    let params = [2usize, 3, 4, 5];
    let run = |n_threads: usize, shards: usize| {
        let engine =
            Engine::with_cache_config_exact(n_threads, CacheConfig::default().with_shards(shards));
        let mut rng = SeededRng::new(13);
        select_model_with(
            &engine,
            &MpckMethod::default(),
            ds.matrix(),
            &side,
            &params,
            &cfg,
            &mut rng,
        )
    };
    let baseline = run(1, 1);
    for threads in [1usize, 2, 8] {
        for shards in [1usize, 8] {
            assert_eq!(
                baseline,
                run(threads, shards),
                "selection diverged at {threads} threads × {shards} shards"
            );
        }
    }

    // The shard assignment itself is a pure function of key content and
    // shard count — identical across cache instances (and, because it is
    // built on the content fingerprints rather than `std::hash`'s
    // per-process random state, across runs and processes too).
    let a = ArtifactCache::with_config(CacheConfig::default().with_shards(8));
    let b = ArtifactCache::with_config(CacheConfig::default().with_shards(8));
    let data = fingerprint_matrix(ds.matrix());
    for min_pts in 1..=32 {
        let key = ArtifactKey::CoreDistances { data, min_pts };
        assert_eq!(a.shard_of(&key), b.shard_of(&key));
    }
}

#[test]
fn artifact_cache_shares_pointer_equal_artifacts_across_folds_and_requests() {
    let ds = blobs(70);
    let side = label_side(&ds, 71);
    let cfg = CvcpConfig {
        n_folds: 6,
        stratified: true,
    };
    let params = [3usize, 6, 9];
    let engine = Engine::with_exact_threads(4);

    let mut rng = SeededRng::new(3);
    let first = select_model_with(
        &engine,
        &FoscMethod::default(),
        ds.matrix(),
        &side,
        &params,
        &cfg,
        &mut rng,
    );

    // One pairwise matrix serves every (parameter × fold) cell: the grid has
    // 3 parameters × 6 folds but the matrix was computed exactly once.
    let data_key = fingerprint_matrix(ds.matrix());
    let pairwise_key = ArtifactKey::PairwiseDistances { data: data_key };
    let a: Arc<Vec<Vec<f64>>> = engine.cache().get(pairwise_key).expect("pairwise cached");
    let b: Arc<Vec<Vec<f64>>> = engine.cache().get(pairwise_key).expect("pairwise cached");
    assert!(Arc::ptr_eq(&a, &b), "cache must hand out the same Arc");
    assert_eq!(a.len(), ds.len());

    // Density hierarchies: one per MinPts, shared across the 6 folds.
    let stats_before = engine.cache().stats();
    assert!(
        stats_before.hits > stats_before.misses,
        "grid evaluation must be cache-dominated: {stats_before:?}"
    );

    // A second request on the same engine re-uses everything: no new misses.
    let mut rng = SeededRng::new(3);
    let second = select_model_with(
        &engine,
        &FoscMethod::default(),
        ds.matrix(),
        &side,
        &params,
        &cfg,
        &mut rng,
    );
    assert_eq!(first, second);
    let stats_after = engine.cache().stats();
    assert_eq!(
        stats_after.misses, stats_before.misses,
        "second identical request must not compute any new artifact"
    );
}

#[test]
fn failed_job_does_not_poison_the_pool() {
    let engine = Engine::with_exact_threads(2);

    // A graph whose middle job panics: dependents are skipped, the sibling
    // completes, and the engine remains fully usable.
    let mut graph: JobGraph<u32> = JobGraph::new(1);
    let bad = graph.add_job(&[], |_| panic!("injected failure"));
    let _skipped = graph.add_job(&[bad], |_| 1);
    let _sibling = graph.add_job(&[], |_| 2);
    let result = engine.run_graph(graph);
    assert!(matches!(&result.outcomes[0], JobOutcome::Failed(m) if m.contains("injected")));
    assert_eq!(result.outcomes[1], JobOutcome::Skipped);
    assert_eq!(result.outcomes[2], JobOutcome::Completed(2));

    // A cancelled graph is skipped wholesale…
    let mut graph: JobGraph<u32> = JobGraph::new(2);
    graph.add_job(&[], |_| 3);
    let handle = engine.submit(graph);
    handle.cancel();
    let cancelled = handle.wait();
    assert!(cancelled
        .outcomes
        .iter()
        .all(|o| !matches!(o, JobOutcome::Failed(_))));

    // …and real work on the same engine still runs to completion.
    let ds = blobs(80);
    let side = label_side(&ds, 81);
    let mut rng = SeededRng::new(4);
    let selection = select_model_with(
        &engine,
        &MpckMethod::default(),
        ds.matrix(),
        &side,
        &[2, 3, 4],
        &CvcpConfig {
            n_folds: 3,
            stratified: true,
        },
        &mut rng,
    );
    assert!([2, 3, 4].contains(&selection.best_param));
}
