//! Feature scaling.
//!
//! Both clustering paradigms in the paper operate on raw feature vectors;
//! for mixed-scale data (e.g. the Wine replica, whose features span several
//! orders of magnitude) z-score normalisation is applied before clustering,
//! as is standard practice for k-means and density-based methods alike.

use crate::matrix::DataMatrix;

/// A fit-then-transform feature scaler.
pub trait Scaler {
    /// Fits scaler parameters on `data` and returns the transformed matrix.
    fn fit_transform(&mut self, data: &DataMatrix) -> DataMatrix;

    /// Transforms a matrix using previously fitted parameters.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Scaler::fit_transform`] or with a matrix of
    /// different dimensionality.
    fn transform(&self, data: &DataMatrix) -> DataMatrix;
}

/// Standardises each column to zero mean and unit variance.
///
/// Columns with zero variance are left centred at zero (no division).
#[derive(Debug, Clone, Default)]
pub struct ZScoreScaler {
    means: Option<Vec<f64>>,
    stds: Option<Vec<f64>>,
}

impl ZScoreScaler {
    /// Creates an unfitted scaler.
    pub fn new() -> Self {
        Self::default()
    }

    /// The fitted per-column means (if fitted).
    pub fn means(&self) -> Option<&[f64]> {
        self.means.as_deref()
    }

    /// The fitted per-column standard deviations (if fitted).
    pub fn stds(&self) -> Option<&[f64]> {
        self.stds.as_deref()
    }
}

impl Scaler for ZScoreScaler {
    fn fit_transform(&mut self, data: &DataMatrix) -> DataMatrix {
        let means = data.column_means();
        let stds: Vec<f64> = data
            .column_variances()
            .into_iter()
            .map(|v| v.sqrt())
            .collect();
        self.means = Some(means);
        self.stds = Some(stds);
        self.transform(data)
    }

    fn transform(&self, data: &DataMatrix) -> DataMatrix {
        let means = self.means.as_ref().expect("scaler must be fitted first");
        let stds = self.stds.as_ref().expect("scaler must be fitted first");
        assert_eq!(data.n_cols(), means.len(), "dimension mismatch");
        let mut out = DataMatrix::zeros(data.n_rows(), data.n_cols());
        for i in 0..data.n_rows() {
            let row = data.row(i);
            let dest = out.row_mut(i);
            for j in 0..row.len() {
                let centred = row[j] - means[j];
                dest[j] = if stds[j] > 1e-12 {
                    centred / stds[j]
                } else {
                    centred
                };
            }
        }
        out
    }
}

/// Rescales each column to the `[0, 1]` interval.
///
/// Constant columns are mapped to `0.0`.
#[derive(Debug, Clone, Default)]
pub struct MinMaxScaler {
    mins: Option<Vec<f64>>,
    maxs: Option<Vec<f64>>,
}

impl MinMaxScaler {
    /// Creates an unfitted scaler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scaler for MinMaxScaler {
    fn fit_transform(&mut self, data: &DataMatrix) -> DataMatrix {
        let (mins, maxs) = data.column_min_max();
        self.mins = Some(mins);
        self.maxs = Some(maxs);
        self.transform(data)
    }

    fn transform(&self, data: &DataMatrix) -> DataMatrix {
        let mins = self.mins.as_ref().expect("scaler must be fitted first");
        let maxs = self.maxs.as_ref().expect("scaler must be fitted first");
        assert_eq!(data.n_cols(), mins.len(), "dimension mismatch");
        let mut out = DataMatrix::zeros(data.n_rows(), data.n_cols());
        for i in 0..data.n_rows() {
            let row = data.row(i);
            let dest = out.row_mut(i);
            for j in 0..row.len() {
                let span = maxs[j] - mins[j];
                dest[j] = if span > 1e-12 {
                    (row[j] - mins[j]) / span
                } else {
                    0.0
                };
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataMatrix {
        DataMatrix::from_rows(&[
            vec![1.0, 100.0, 5.0],
            vec![2.0, 200.0, 5.0],
            vec![3.0, 300.0, 5.0],
            vec![4.0, 400.0, 5.0],
        ])
    }

    #[test]
    fn zscore_zero_mean_unit_variance() {
        let mut scaler = ZScoreScaler::new();
        let out = scaler.fit_transform(&sample());
        let means = out.column_means();
        let vars = out.column_variances();
        for j in 0..2 {
            assert!(means[j].abs() < 1e-9, "column {j} mean {}", means[j]);
            assert!((vars[j] - 1.0).abs() < 1e-9, "column {j} var {}", vars[j]);
        }
        // constant column centred but untouched otherwise
        assert!(out.column(2).iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn zscore_transform_applies_training_parameters() {
        let mut scaler = ZScoreScaler::new();
        let _ = scaler.fit_transform(&sample());
        let other = DataMatrix::from_rows(&[vec![2.5, 250.0, 5.0]]);
        let out = scaler.transform(&other);
        // 2.5 is the fitted mean of column 0 -> exactly 0
        assert!(out.get(0, 0).abs() < 1e-9);
        assert!(out.get(0, 1).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "fitted first")]
    fn zscore_requires_fit() {
        let scaler = ZScoreScaler::new();
        let _ = scaler.transform(&sample());
    }

    #[test]
    fn minmax_maps_to_unit_interval() {
        let mut scaler = MinMaxScaler::new();
        let out = scaler.fit_transform(&sample());
        let (mins, maxs) = out.column_min_max();
        assert!(mins[0].abs() < 1e-12 && (maxs[0] - 1.0).abs() < 1e-12);
        assert!(mins[1].abs() < 1e-12 && (maxs[1] - 1.0).abs() < 1e-12);
        // constant column becomes zero
        assert!(out.column(2).iter().all(|v| *v == 0.0));
    }

    #[test]
    fn minmax_transform_can_exceed_bounds_for_new_data() {
        let mut scaler = MinMaxScaler::new();
        let _ = scaler.fit_transform(&sample());
        let other = DataMatrix::from_rows(&[vec![5.0, 0.0, 5.0]]);
        let out = scaler.transform(&other);
        assert!(out.get(0, 0) > 1.0);
        assert!(out.get(0, 1) < 0.0);
    }

    #[test]
    fn scalers_preserve_shape() {
        let mut z = ZScoreScaler::new();
        let mut m = MinMaxScaler::new();
        let a = z.fit_transform(&sample());
        let b = m.fit_transform(&sample());
        assert_eq!(a.n_rows(), 4);
        assert_eq!(a.n_cols(), 3);
        assert_eq!(b.n_rows(), 4);
        assert_eq!(b.n_cols(), 3);
    }
}
