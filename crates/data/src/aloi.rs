//! Replica of the ALOI "k5" image-collection benchmark.
//!
//! The paper uses the image collections of Horta & Campello (2012), built
//! from the Amsterdam Library of Object Images: the *k5* collection consists
//! of 100 independent data sets, each containing 125 objects described by 144
//! colour-moment attributes, sampled from 5 randomly chosen image categories
//! (25 objects per category).
//!
//! The original images are not available offline, so this module generates a
//! synthetic collection with the same layout: 100 data sets × 125 objects ×
//! 144 dimensions × 5 balanced classes.  Each data set draws its own class
//! prototypes, separations, anisotropies and elongations, so the *collection*
//! exhibits the spread of difficulty that the paper's box plots (Figs. 9–12)
//! summarise.  Cluster structure is predominantly recoverable by density-based
//! clustering and partially by k-means — consistent with the paper's observed
//! quality ranges (Overall F-measure roughly 0.5–1.0 for FOSC-OPTICSDend and
//! 0.4–0.8 for MPCKMeans).

use crate::dataset::Dataset;
use crate::rng::SeededRng;
use crate::synthetic::{gaussian_mixture, rename, ClusterSpec};

/// Number of data sets in the ALOI k5 collection.
pub const ALOI_COLLECTION_SIZE: usize = 100;
/// Number of classes per ALOI k5 data set.
pub const ALOI_CLASSES: usize = 5;
/// Number of objects per class in an ALOI k5 data set.
pub const ALOI_OBJECTS_PER_CLASS: usize = 25;
/// Dimensionality (colour-moment descriptor length) of ALOI objects.
pub const ALOI_DIMS: usize = 144;

/// Generates a single ALOI-k5-like data set.
///
/// `index` selects the data set within the collection (0..100 in the paper's
/// setting, but any value is accepted); together with `seed` it fully
/// determines the data.
pub fn aloi_k5_dataset(seed: u64, index: usize) -> Dataset {
    generate(seed, index, ALOI_CLASSES, ALOI_OBJECTS_PER_CLASS, ALOI_DIMS)
}

/// Generates the full ALOI-k5-like collection (100 data sets).
pub fn aloi_k5_collection(seed: u64) -> Vec<Dataset> {
    aloi_k5_collection_of_size(seed, ALOI_COLLECTION_SIZE)
}

/// Generates the first `size` data sets of the collection (useful for quick
/// experiment modes; the paper uses the full 100).
pub fn aloi_k5_collection_of_size(seed: u64, size: usize) -> Vec<Dataset> {
    (0..size).map(|i| aloi_k5_dataset(seed, i)).collect()
}

/// Generates an ALOI-like data set with custom layout (used by tests and by
/// the `k2`–`k4` collections of Horta & Campello, which the paper mentions
/// but does not evaluate on).
pub fn generate(
    seed: u64,
    index: usize,
    n_classes: usize,
    per_class: usize,
    dims: usize,
) -> Dataset {
    assert!(n_classes >= 1 && per_class >= 1 && dims >= 1);
    let mut rng = SeededRng::new(seed ^ (0xA101 + index as u64 * 0x9E37_79B9));

    // Per-data-set difficulty knobs: how far apart the class prototypes are,
    // how anisotropic each class is, and how many classes are "hard"
    // (close to another class).  The separation is expressed relative to
    // √dims because within-cluster distances concentrate around
    // √(2·dims)·σ in high dimensions — without this scaling the classes
    // would be inseparable at 144 attributes.  The ranges are chosen so the
    // collection spans easy to moderately hard sets.
    let separation = rng.uniform_in(0.7, 1.6) * (dims as f64).sqrt();
    // At least one pair of classes is pulled together, so every data set has
    // some overlap and the clustering quality genuinely depends on MinPts.
    let n_hard_pairs = 1 + rng.index(2); // 1 or 2 pairs of classes pulled together

    // Prototype directions: random unit vectors scaled by the separation.
    let mut centers: Vec<Vec<f64>> = Vec::with_capacity(n_classes);
    for _ in 0..n_classes {
        let mut c: Vec<f64> = (0..dims).map(|_| rng.standard_normal()).collect();
        let norm: f64 = c.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-12);
        for v in &mut c {
            *v = *v / norm * separation;
        }
        centers.push(c);
    }
    // Pull some pairs of prototypes together to create overlapping classes.
    for p in 0..n_hard_pairs {
        if n_classes < 2 {
            break;
        }
        let a = (2 * p) % n_classes;
        let b = (2 * p + 1) % n_classes;
        if a == b {
            continue;
        }
        let (left, right) = if a < b {
            let (l, r) = centers.split_at_mut(b);
            (&mut l[a], &mut r[0])
        } else {
            let (l, r) = centers.split_at_mut(a);
            (&mut r[0], &mut l[b])
        };
        for j in 0..dims {
            let mid = 0.5 * (left[j] + right[j]);
            left[j] = mid + 0.40 * (left[j] - mid);
            right[j] = mid + 0.40 * (right[j] - mid);
        }
    }

    let specs: Vec<ClusterSpec> = centers
        .into_iter()
        .map(|center| {
            let base_std = rng.uniform_in(0.7, 1.3);
            let std_devs: Vec<f64> = (0..dims)
                .map(|_| base_std * rng.uniform_in(0.6, 1.4))
                .collect();
            ClusterSpec {
                center,
                std_devs,
                size: per_class,
                elongation: rng.uniform_in(0.0, 1.5),
            }
        })
        .collect();

    let ds = gaussian_mixture(&specs, &mut rng);
    // Push a small fraction of each class away from its centroid ("imaging
    // outliers"): these objects thin out the local density, so the choice of
    // MinPts visibly affects the achievable quality — as it does on the real
    // image collections.
    let ds = add_class_outliers(ds, 0.10, 2.2, &mut rng);
    rename(ds, format!("aloi_k{n_classes}_{index:03}"))
}

/// Moves a random `fraction` of the objects of each class away from their
/// class centroid by the given `factor` (> 1 stretches outwards).
fn add_class_outliers(ds: Dataset, fraction: f64, factor: f64, rng: &mut SeededRng) -> Dataset {
    let members = ds.class_members();
    let dims = ds.dims();
    let mut matrix = ds.matrix().clone();
    for class_members in &members {
        if class_members.is_empty() {
            continue;
        }
        // class centroid
        let mut centroid = vec![0.0; dims];
        for &i in class_members {
            for (j, v) in ds.matrix().row(i).iter().enumerate() {
                centroid[j] += v;
            }
        }
        for v in &mut centroid {
            *v /= class_members.len() as f64;
        }
        for &i in class_members {
            if rng.bernoulli(fraction) {
                let row = matrix.row_mut(i);
                for j in 0..dims {
                    row[j] = centroid[j] + factor * (row[j] - centroid[j]);
                }
            }
        }
    }
    Dataset::new(ds.name().to_string(), matrix, ds.labels().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_dataset_shape() {
        let ds = aloi_k5_dataset(1, 0);
        assert_eq!(ds.len(), 125);
        assert_eq!(ds.dims(), 144);
        assert_eq!(ds.n_classes(), 5);
        assert_eq!(ds.class_counts(), vec![25; 5]);
        assert!(ds.matrix().all_finite());
    }

    #[test]
    fn collection_of_size_layout_and_names() {
        let collection = aloi_k5_collection_of_size(1, 7);
        assert_eq!(collection.len(), 7);
        assert_eq!(collection[0].name(), "aloi_k5_000");
        assert_eq!(collection[6].name(), "aloi_k5_006");
        for ds in &collection {
            assert_eq!(ds.len(), 125);
            assert_eq!(ds.n_classes(), 5);
        }
    }

    #[test]
    fn datasets_differ_across_indices() {
        let a = aloi_k5_dataset(1, 0);
        let b = aloi_k5_dataset(1, 1);
        assert_ne!(a.matrix(), b.matrix());
    }

    #[test]
    fn datasets_deterministic_per_seed_and_index() {
        assert_eq!(aloi_k5_dataset(4, 3), aloi_k5_dataset(4, 3));
        assert_ne!(
            aloi_k5_dataset(4, 3).matrix(),
            aloi_k5_dataset(5, 3).matrix()
        );
    }

    #[test]
    fn custom_generate_layout() {
        let ds = generate(9, 0, 3, 10, 16);
        assert_eq!(ds.len(), 30);
        assert_eq!(ds.dims(), 16);
        assert_eq!(ds.n_classes(), 3);
    }

    #[test]
    fn difficulty_varies_across_collection() {
        // Not every data set should be equally easy: the minimum pairwise
        // centroid distance should vary noticeably across the collection.
        let collection = aloi_k5_collection_of_size(2, 10);
        let mut min_dists = Vec::new();
        for ds in &collection {
            let members = ds.class_members();
            let centroids: Vec<Vec<f64>> = members
                .iter()
                .map(|idx| {
                    let mut c = vec![0.0; ds.dims()];
                    for &i in idx {
                        for (j, v) in ds.matrix().row(i).iter().enumerate() {
                            c[j] += v;
                        }
                    }
                    for v in &mut c {
                        *v /= idx.len() as f64;
                    }
                    c
                })
                .collect();
            let mut min_d = f64::MAX;
            for a in 0..centroids.len() {
                for b in (a + 1)..centroids.len() {
                    let d: f64 = centroids[a]
                        .iter()
                        .zip(&centroids[b])
                        .map(|(x, y)| (x - y) * (x - y))
                        .sum::<f64>()
                        .sqrt();
                    min_d = min_d.min(d);
                }
            }
            min_dists.push(min_d);
        }
        let max = min_dists.iter().cloned().fold(f64::MIN, f64::max);
        let min = min_dists.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max > min * 1.3,
            "difficulty should vary: min={min}, max={max}"
        );
    }
}
