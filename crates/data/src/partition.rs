//! Cluster partitions (clustering results).
//!
//! A [`Partition`] assigns every object either to a cluster (a non-negative
//! id) or to *noise*.  K-means style algorithms never produce noise;
//! density-based methods such as FOSC-OPTICSDend routinely do.  For the
//! constraint-classification view of the CVCP paper, two objects are
//! "in the same cluster" only if both are assigned to the *same, non-noise*
//! cluster.

/// Cluster assignment of a single object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Assignment {
    /// Member of the cluster with the given id.
    Cluster(usize),
    /// Not assigned to any cluster.
    Noise,
}

impl Assignment {
    /// The cluster id, or `None` for noise.
    pub fn cluster(self) -> Option<usize> {
        match self {
            Assignment::Cluster(c) => Some(c),
            Assignment::Noise => None,
        }
    }

    /// `true` when the object is noise.
    pub fn is_noise(self) -> bool {
        matches!(self, Assignment::Noise)
    }
}

/// A clustering of `n` objects.
///
/// ```
/// use cvcp_data::partition::{Assignment, Partition};
///
/// let p = Partition::from_cluster_ids(&[0, 0, 1, 1]);
/// assert!(p.same_cluster(0, 1));
/// assert!(!p.same_cluster(1, 2));
/// assert_eq!(p.n_clusters(), 2);
///
/// let q = Partition::from_optional_ids(&[Some(0), None, Some(0)]);
/// assert!(q.assignment(1).is_noise());
/// assert!(!q.same_cluster(0, 1)); // noise is never "same cluster"
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    assignments: Vec<Assignment>,
}

impl Partition {
    /// Builds a partition where every object is in a cluster (no noise).
    pub fn from_cluster_ids(ids: &[usize]) -> Self {
        Self {
            assignments: ids.iter().map(|&c| Assignment::Cluster(c)).collect(),
        }
    }

    /// Builds a partition from optional cluster ids (`None` = noise).
    pub fn from_optional_ids(ids: &[Option<usize>]) -> Self {
        Self {
            assignments: ids
                .iter()
                .map(|c| c.map_or(Assignment::Noise, Assignment::Cluster))
                .collect(),
        }
    }

    /// Builds a partition directly from assignments.
    pub fn from_assignments(assignments: Vec<Assignment>) -> Self {
        Self { assignments }
    }

    /// A partition in which every object is noise.
    pub fn all_noise(n: usize) -> Self {
        Self {
            assignments: vec![Assignment::Noise; n],
        }
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// `true` when there are no objects.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Assignment of object `i`.
    pub fn assignment(&self, i: usize) -> Assignment {
        self.assignments[i]
    }

    /// All assignments.
    pub fn assignments(&self) -> &[Assignment] {
        &self.assignments
    }

    /// Cluster id of object `i`, or `None` for noise.
    pub fn cluster_of(&self, i: usize) -> Option<usize> {
        self.assignments[i].cluster()
    }

    /// `true` iff both objects are assigned to the same non-noise cluster.
    pub fn same_cluster(&self, i: usize, j: usize) -> bool {
        match (self.assignments[i], self.assignments[j]) {
            (Assignment::Cluster(a), Assignment::Cluster(b)) => a == b,
            _ => false,
        }
    }

    /// Number of distinct (non-noise) clusters.
    pub fn n_clusters(&self) -> usize {
        let mut ids: Vec<usize> = self
            .assignments
            .iter()
            .filter_map(|a| a.cluster())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Number of noise objects.
    pub fn n_noise(&self) -> usize {
        self.assignments.iter().filter(|a| a.is_noise()).count()
    }

    /// Members of every cluster, keyed by a dense re-indexing of cluster ids
    /// (sorted by original id).  Noise objects are not included.
    pub fn cluster_members(&self) -> Vec<Vec<usize>> {
        let mut ids: Vec<usize> = self
            .assignments
            .iter()
            .filter_map(|a| a.cluster())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        let index_of = |c: usize| ids.binary_search(&c).expect("cluster id present");
        let mut members = vec![Vec::new(); ids.len()];
        for (i, a) in self.assignments.iter().enumerate() {
            if let Some(c) = a.cluster() {
                members[index_of(c)].push(i);
            }
        }
        members
    }

    /// Re-labels clusters to dense ids `0..n_clusters` (noise unchanged).
    pub fn compact(&self) -> Partition {
        let mut ids: Vec<usize> = self
            .assignments
            .iter()
            .filter_map(|a| a.cluster())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        let assignments = self
            .assignments
            .iter()
            .map(|a| match a {
                Assignment::Cluster(c) => {
                    Assignment::Cluster(ids.binary_search(c).expect("present"))
                }
                Assignment::Noise => Assignment::Noise,
            })
            .collect();
        Partition { assignments }
    }

    /// Restricts the partition to a subset of objects, keeping cluster ids.
    pub fn restrict(&self, indices: &[usize]) -> Partition {
        Partition {
            assignments: indices.iter().map(|&i| self.assignments[i]).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_cluster_ids_has_no_noise() {
        let p = Partition::from_cluster_ids(&[0, 1, 1, 2]);
        assert_eq!(p.len(), 4);
        assert_eq!(p.n_noise(), 0);
        assert_eq!(p.n_clusters(), 3);
    }

    #[test]
    fn same_cluster_handles_noise() {
        let p = Partition::from_optional_ids(&[Some(0), Some(0), None, None]);
        assert!(p.same_cluster(0, 1));
        assert!(!p.same_cluster(0, 2));
        assert!(
            !p.same_cluster(2, 3),
            "two noise objects are not in the same cluster"
        );
    }

    #[test]
    fn cluster_members_covers_non_noise_objects() {
        let p = Partition::from_optional_ids(&[Some(5), Some(2), None, Some(5)]);
        let members = p.cluster_members();
        assert_eq!(members.len(), 2);
        // sorted by original id: cluster 2 first, then cluster 5
        assert_eq!(members[0], vec![1]);
        assert_eq!(members[1], vec![0, 3]);
    }

    #[test]
    fn compact_renumbers_clusters() {
        let p = Partition::from_optional_ids(&[Some(7), Some(3), None, Some(7)]);
        let c = p.compact();
        assert_eq!(c.cluster_of(0), Some(1));
        assert_eq!(c.cluster_of(1), Some(0));
        assert_eq!(c.cluster_of(2), None);
        assert_eq!(c.n_clusters(), 2);
    }

    #[test]
    fn restrict_keeps_assignments() {
        let p = Partition::from_optional_ids(&[Some(0), Some(1), None, Some(1)]);
        let r = p.restrict(&[3, 2]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.cluster_of(0), Some(1));
        assert!(r.assignment(1).is_noise());
    }

    #[test]
    fn all_noise_partition() {
        let p = Partition::all_noise(4);
        assert_eq!(p.n_clusters(), 0);
        assert_eq!(p.n_noise(), 4);
        assert!(!p.same_cluster(0, 1));
    }

    #[test]
    fn assignment_helpers() {
        assert_eq!(Assignment::Cluster(3).cluster(), Some(3));
        assert_eq!(Assignment::Noise.cluster(), None);
        assert!(Assignment::Noise.is_noise());
        assert!(!Assignment::Cluster(0).is_noise());
    }
}
