//! Seeded random number helpers.
//!
//! All experiments in the suite are reproducible from a single `u64` seed.
//! This module wraps `rand`'s `StdRng` with a few sampling utilities used
//! across the workspace (shuffling, sampling without replacement, Gaussian
//! draws via Box–Muller, stratified index sampling).

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random number generator seeded from a `u64`.
///
/// ```
/// use cvcp_data::rng::SeededRng;
///
/// let mut a = SeededRng::new(7);
/// let mut b = SeededRng::new(7);
/// assert_eq!(a.uniform(), b.uniform());
/// ```
#[derive(Debug, Clone)]
pub struct SeededRng {
    inner: StdRng,
}

impl SeededRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator.  Useful to give each trial of
    /// an experiment its own stream without coupling their sequences.
    pub fn fork(&mut self, salt: u64) -> Self {
        let s = self.inner.gen::<u64>() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Self::new(s)
    }

    /// A uniformly distributed `f64` in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// A uniformly distributed `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "invalid range [{lo}, {hi})");
        lo + (hi - lo) * self.uniform()
    }

    /// A uniformly distributed integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "cannot sample from empty range");
        self.inner.gen_range(0..bound)
    }

    /// A standard-normal draw (mean 0, variance 1) using Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        // Box–Muller transform; avoid u1 == 0.
        let u1: f64 = loop {
            let v = self.uniform();
            if v > f64::EPSILON {
                break v;
            }
        };
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// A normal draw with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        mean + std_dev * self.standard_normal()
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        if items.len() < 2 {
            return;
        }
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` (order is random).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct items from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx.truncate(k);
        idx
    }

    /// Samples `k` distinct elements from `items` (cloned, order random).
    pub fn sample<T: Clone>(&mut self, items: &[T], k: usize) -> Vec<T> {
        self.sample_indices(items.len(), k)
            .into_iter()
            .map(|i| items[i].clone())
            .collect()
    }

    /// Draws a Bernoulli outcome with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1], got {p}");
        self.uniform() < p
    }

    /// Stratified sampling of approximately `fraction` of the indices of each
    /// class.  Every class contributes at least `min_per_class` objects when
    /// it has that many.  Returns sorted indices.
    ///
    /// This mirrors the paper's "x% of labelled objects randomly selected"
    /// protocol while guaranteeing that tiny classes are not lost entirely.
    pub fn stratified_fraction(
        &mut self,
        labels: &[usize],
        fraction: f64,
        min_per_class: usize,
    ) -> Vec<usize> {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        let n_classes = labels.iter().copied().max().map_or(0, |m| m + 1);
        let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
        for (i, &c) in labels.iter().enumerate() {
            per_class[c].push(i);
        }
        let mut chosen = Vec::new();
        for members in per_class.iter_mut() {
            if members.is_empty() {
                continue;
            }
            self.shuffle(members);
            let want = ((members.len() as f64 * fraction).round() as usize)
                .max(min_per_class.min(members.len()))
                .min(members.len());
            chosen.extend_from_slice(&members[..want]);
        }
        chosen.sort_unstable();
        chosen
    }
}

impl RngCore for SeededRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_across_instances() {
        let mut a = SeededRng::new(123);
        let mut b = SeededRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn fork_streams_are_decoupled() {
        let mut root = SeededRng::new(9);
        let mut c1 = root.fork(0);
        let mut c2 = root.fork(1);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn uniform_in_bounds() {
        let mut r = SeededRng::new(5);
        for _ in 0..1000 {
            let v = r.uniform_in(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = SeededRng::new(77);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "variance {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SeededRng::new(3);
        let mut v: Vec<usize> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut r = SeededRng::new(11);
        let s = r.sample_indices(20, 10);
        assert_eq!(s.len(), 10);
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_indices_rejects_oversampling() {
        let mut r = SeededRng::new(11);
        let _ = r.sample_indices(3, 4);
    }

    #[test]
    fn bernoulli_respects_probability() {
        let mut r = SeededRng::new(8);
        let hits = (0..10_000).filter(|_| r.bernoulli(0.25)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn stratified_fraction_covers_all_classes() {
        let mut r = SeededRng::new(4);
        // class 0: 40 objects, class 1: 10, class 2: 2
        let labels: Vec<usize> = std::iter::repeat(0)
            .take(40)
            .chain(std::iter::repeat(1).take(10))
            .chain(std::iter::repeat(2).take(2))
            .collect();
        let chosen = r.stratified_fraction(&labels, 0.1, 1);
        let mut classes: Vec<usize> = chosen.iter().map(|&i| labels[i]).collect();
        classes.sort_unstable();
        classes.dedup();
        assert_eq!(classes, vec![0, 1, 2]);
        // ~10% of 40 = 4, 10% of 10 = 1, min 1 of class 2.
        assert!(chosen.len() >= 6 && chosen.len() <= 8, "len {}", chosen.len());
    }

    #[test]
    fn stratified_fraction_full_returns_everything() {
        let mut r = SeededRng::new(4);
        let labels = vec![0, 0, 1, 1, 1];
        let chosen = r.stratified_fraction(&labels, 1.0, 0);
        assert_eq!(chosen, vec![0, 1, 2, 3, 4]);
    }
}
