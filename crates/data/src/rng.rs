//! Seeded random number helpers.
//!
//! All experiments in the suite are reproducible from a single `u64` seed.
//! This module implements a self-contained xoshiro256** generator (seeded
//! through SplitMix64, the reference seeding procedure) with a few sampling
//! utilities used across the workspace (shuffling, sampling without
//! replacement, Gaussian draws via Box–Muller, stratified index sampling).
//! Keeping the generator in-tree avoids an external `rand` dependency and
//! guarantees the byte streams never change under us — the engine's
//! bit-reproducibility contract depends on that.

/// SplitMix64 step, used to expand a `u64` seed into generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic random number generator seeded from a `u64`.
///
/// ```
/// use cvcp_data::rng::SeededRng;
///
/// let mut a = SeededRng::new(7);
/// let mut b = SeededRng::new(7);
/// assert_eq!(a.uniform(), b.uniform());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeededRng {
    state: [u64; 4],
}

impl SeededRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next raw 64-bit output of the generator (xoshiro256**).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// The next raw 32-bit output (upper half of [`Self::next_u64`]).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Derives an independent child generator.  Useful to give each trial of
    /// an experiment its own stream without coupling their sequences.
    ///
    /// Forking the *same* parent state with different salts yields decoupled
    /// streams, which is how the execution engine hands every (parameter ×
    /// fold) job its own generator without threading one mutable RNG through
    /// an evaluation order.
    pub fn fork(&mut self, salt: u64) -> Self {
        let s = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Self::new(s)
    }

    /// Like [`Self::fork`] but without advancing the parent generator, so a
    /// whole family of jobs can be forked from one frozen parent state in any
    /// order.  `salt` must differ between siblings.
    pub fn fork_stream(&self, salt: u64) -> Self {
        let mut probe = self.clone();
        let base = probe.next_u64();
        Self::new(base ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// A uniformly distributed `f64` in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniformly distributed `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "invalid range [{lo}, {hi})");
        lo + (hi - lo) * self.uniform()
    }

    /// A uniformly distributed integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "cannot sample from empty range");
        // Lemire's multiply-shift: maps the 64-bit stream onto [0, bound)
        // with bias below 2^-64 for the bounds used in this workspace.
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as usize
    }

    /// A standard-normal draw (mean 0, variance 1) using Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        // Box–Muller transform; avoid u1 == 0.
        let u1: f64 = loop {
            let v = self.uniform();
            if v > f64::EPSILON {
                break v;
            }
        };
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// A normal draw with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        mean + std_dev * self.standard_normal()
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        if items.len() < 2 {
            return;
        }
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` (order is random).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct items from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx.truncate(k);
        idx
    }

    /// Samples `k` distinct elements from `items` (cloned, order random).
    pub fn sample<T: Clone>(&mut self, items: &[T], k: usize) -> Vec<T> {
        self.sample_indices(items.len(), k)
            .into_iter()
            .map(|i| items[i].clone())
            .collect()
    }

    /// Draws a Bernoulli outcome with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "probability must be in [0,1], got {p}"
        );
        self.uniform() < p
    }

    /// Stratified sampling of approximately `fraction` of the indices of each
    /// class.  Every class contributes at least `min_per_class` objects when
    /// it has that many.  Returns sorted indices.
    ///
    /// This mirrors the paper's "x% of labelled objects randomly selected"
    /// protocol while guaranteeing that tiny classes are not lost entirely.
    pub fn stratified_fraction(
        &mut self,
        labels: &[usize],
        fraction: f64,
        min_per_class: usize,
    ) -> Vec<usize> {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        let n_classes = labels.iter().copied().max().map_or(0, |m| m + 1);
        let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
        for (i, &c) in labels.iter().enumerate() {
            per_class[c].push(i);
        }
        let mut chosen = Vec::new();
        for members in per_class.iter_mut() {
            if members.is_empty() {
                continue;
            }
            self.shuffle(members);
            let want = ((members.len() as f64 * fraction).round() as usize)
                .max(min_per_class.min(members.len()))
                .min(members.len());
            chosen.extend_from_slice(&members[..want]);
        }
        chosen.sort_unstable();
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_across_instances() {
        let mut a = SeededRng::new(123);
        let mut b = SeededRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn fork_streams_are_decoupled() {
        let mut root = SeededRng::new(9);
        let mut c1 = root.fork(0);
        let mut c2 = root.fork(1);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn fork_stream_is_order_independent() {
        let root = SeededRng::new(41);
        let mut a1 = root.fork_stream(5);
        let mut b1 = root.fork_stream(9);
        // forking in the opposite order gives the same child streams
        let mut b2 = root.fork_stream(9);
        let mut a2 = root.fork_stream(5);
        assert_eq!(a1.next_u64(), a2.next_u64());
        assert_eq!(b1.next_u64(), b2.next_u64());
        assert_ne!(a1.next_u64(), b1.next_u64());
    }

    #[test]
    fn fill_bytes_is_deterministic_and_covers_tail() {
        let mut a = SeededRng::new(6);
        let mut b = SeededRng::new(6);
        let mut buf_a = [0u8; 13];
        let mut buf_b = [0u8; 13];
        a.fill_bytes(&mut buf_a);
        b.fill_bytes(&mut buf_b);
        assert_eq!(buf_a, buf_b);
        assert!(buf_a.iter().any(|&x| x != 0));
    }

    #[test]
    fn uniform_in_bounds() {
        let mut r = SeededRng::new(5);
        for _ in 0..1000 {
            let v = r.uniform_in(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = SeededRng::new(77);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "variance {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SeededRng::new(3);
        let mut v: Vec<usize> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut r = SeededRng::new(11);
        let s = r.sample_indices(20, 10);
        assert_eq!(s.len(), 10);
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_indices_rejects_oversampling() {
        let mut r = SeededRng::new(11);
        let _ = r.sample_indices(3, 4);
    }

    #[test]
    fn bernoulli_respects_probability() {
        let mut r = SeededRng::new(8);
        let hits = (0..10_000).filter(|_| r.bernoulli(0.25)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn stratified_fraction_covers_all_classes() {
        let mut r = SeededRng::new(4);
        // class 0: 40 objects, class 1: 10, class 2: 2
        let labels: Vec<usize> = std::iter::repeat_n(0, 40)
            .chain(std::iter::repeat_n(1, 10))
            .chain(std::iter::repeat_n(2, 2))
            .collect();
        let chosen = r.stratified_fraction(&labels, 0.1, 1);
        let mut classes: Vec<usize> = chosen.iter().map(|&i| labels[i]).collect();
        classes.sort_unstable();
        classes.dedup();
        assert_eq!(classes, vec![0, 1, 2]);
        // ~10% of 40 = 4, 10% of 10 = 1, min 1 of class 2.
        assert!(
            chosen.len() >= 6 && chosen.len() <= 8,
            "len {}",
            chosen.len()
        );
    }

    #[test]
    fn stratified_fraction_full_returns_everything() {
        let mut r = SeededRng::new(4);
        let labels = vec![0, 0, 1, 1, 1];
        let chosen = r.stratified_fraction(&labels, 1.0, 0);
        assert_eq!(chosen, vec![0, 1, 2, 3, 4]);
    }
}
