//! Dense, row-major data matrix used by every algorithm in the suite.
//!
//! The matrix is intentionally simple: a `Vec<f64>` with explicit row/column
//! counts.  Every clustering algorithm in this workspace accesses data
//! through row slices, which keeps cache behaviour predictable and avoids a
//! heavyweight linear-algebra dependency.

use std::fmt;

/// A dense, row-major matrix of `f64` values.
///
/// Rows are observations (objects), columns are features (attributes).
///
/// ```
/// use cvcp_data::DataMatrix;
///
/// let m = DataMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// assert_eq!(m.n_rows(), 2);
/// assert_eq!(m.n_cols(), 2);
/// assert_eq!(m.get(1, 0), 3.0);
/// assert_eq!(m.row(0), &[1.0, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DataMatrix {
    values: Vec<f64>,
    n_rows: usize,
    n_cols: usize,
}

impl DataMatrix {
    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != n_rows * n_cols`.
    pub fn from_flat(values: Vec<f64>, n_rows: usize, n_cols: usize) -> Self {
        assert_eq!(
            values.len(),
            n_rows * n_cols,
            "flat buffer length {} does not match {}x{}",
            values.len(),
            n_rows,
            n_cols
        );
        Self {
            values,
            n_rows,
            n_cols,
        }
    }

    /// Creates a matrix from a slice of equally sized rows.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows<R: AsRef<[f64]>>(rows: &[R]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let n_cols = rows[0].as_ref().len();
        let mut values = Vec::with_capacity(rows.len() * n_cols);
        for (i, row) in rows.iter().enumerate() {
            let row = row.as_ref();
            assert_eq!(
                row.len(),
                n_cols,
                "row {i} has length {} but expected {n_cols}",
                row.len()
            );
            values.extend_from_slice(row);
        }
        Self {
            values,
            n_rows: rows.len(),
            n_cols,
        }
    }

    /// Creates an `n_rows x n_cols` matrix filled with zeros.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        Self {
            values: vec![0.0; n_rows * n_cols],
            n_rows,
            n_cols,
        }
    }

    /// Number of rows (objects).
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns (features).
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// `true` when the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Returns the value at (`row`, `col`).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(
            row < self.n_rows && col < self.n_cols,
            "index out of bounds"
        );
        self.values[row * self.n_cols + col]
    }

    /// Sets the value at (`row`, `col`).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.n_rows && col < self.n_cols,
            "index out of bounds"
        );
        self.values[row * self.n_cols + col] = value;
    }

    /// Returns row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_rows`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(
            i < self.n_rows,
            "row index {i} out of bounds ({})",
            self.n_rows
        );
        &self.values[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// Returns a mutable slice for row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(
            i < self.n_rows,
            "row index {i} out of bounds ({})",
            self.n_rows
        );
        &mut self.values[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// Iterates over all rows in order.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> + '_ {
        self.values
            .chunks_exact(self.n_cols.max(1))
            .take(self.n_rows)
    }

    /// Returns column `j` as a freshly allocated vector.
    pub fn column(&self, j: usize) -> Vec<f64> {
        assert!(
            j < self.n_cols,
            "column index {j} out of bounds ({})",
            self.n_cols
        );
        (0..self.n_rows).map(|i| self.get(i, j)).collect()
    }

    /// The underlying flat row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Appends a row to the matrix.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match `n_cols` (unless the matrix is
    /// still empty, in which case the row defines the column count).
    pub fn push_row(&mut self, row: &[f64]) {
        if self.n_rows == 0 && self.n_cols == 0 {
            self.n_cols = row.len();
        }
        assert_eq!(row.len(), self.n_cols, "row length mismatch");
        self.values.extend_from_slice(row);
        self.n_rows += 1;
    }

    /// Builds a new matrix containing only the given rows (in the given order).
    pub fn select_rows(&self, indices: &[usize]) -> Self {
        let mut out = DataMatrix::zeros(indices.len(), self.n_cols);
        for (new_i, &old_i) in indices.iter().enumerate() {
            out.row_mut(new_i).copy_from_slice(self.row(old_i));
        }
        out
    }

    /// Column-wise mean of the matrix.  Returns an empty vector for an empty matrix.
    pub fn column_means(&self) -> Vec<f64> {
        if self.n_rows == 0 {
            return vec![0.0; self.n_cols];
        }
        let mut means = vec![0.0; self.n_cols];
        for row in self.rows() {
            for (m, v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= self.n_rows as f64;
        }
        means
    }

    /// Column-wise (population) variance of the matrix.
    pub fn column_variances(&self) -> Vec<f64> {
        if self.n_rows == 0 {
            return vec![0.0; self.n_cols];
        }
        let means = self.column_means();
        let mut vars = vec![0.0; self.n_cols];
        for row in self.rows() {
            for ((v, x), m) in vars.iter_mut().zip(row).zip(&means) {
                let d = x - m;
                *v += d * d;
            }
        }
        for v in &mut vars {
            *v /= self.n_rows as f64;
        }
        vars
    }

    /// Column-wise minimum and maximum, as `(mins, maxs)`.
    pub fn column_min_max(&self) -> (Vec<f64>, Vec<f64>) {
        let mut mins = vec![f64::INFINITY; self.n_cols];
        let mut maxs = vec![f64::NEG_INFINITY; self.n_cols];
        for row in self.rows() {
            for j in 0..self.n_cols {
                if row[j] < mins[j] {
                    mins[j] = row[j];
                }
                if row[j] > maxs[j] {
                    maxs[j] = row[j];
                }
            }
        }
        (mins, maxs)
    }

    /// Returns `true` if every entry is finite.
    pub fn all_finite(&self) -> bool {
        self.values.iter().all(|v| v.is_finite())
    }
}

impl fmt::Display for DataMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DataMatrix {}x{}", self.n_rows, self.n_cols)?;
        let show = self.n_rows.min(6);
        for i in 0..show {
            let row = self.row(i);
            let cols = row
                .iter()
                .take(8)
                .map(|v| format!("{v:.3}"))
                .collect::<Vec<_>>();
            writeln!(
                f,
                "  [{}{}]",
                cols.join(", "),
                if self.n_cols > 8 { ", …" } else { "" }
            )?;
        }
        if self.n_rows > show {
            writeln!(f, "  … ({} more rows)", self.n_rows - show)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_roundtrip() {
        let m = DataMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.n_cols(), 3);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.column(2), vec![3.0, 6.0]);
        assert_eq!(m.get(0, 1), 2.0);
    }

    #[test]
    fn from_flat_matches_from_rows() {
        let a = DataMatrix::from_flat(vec![1.0, 2.0, 3.0, 4.0], 2, 2);
        let b = DataMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "flat buffer length")]
    fn from_flat_checks_length() {
        let _ = DataMatrix::from_flat(vec![1.0, 2.0, 3.0], 2, 2);
    }

    #[test]
    #[should_panic(expected = "row 1 has length")]
    fn from_rows_checks_ragged() {
        let _ = DataMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]);
    }

    #[test]
    fn zeros_and_set() {
        let mut m = DataMatrix::zeros(3, 2);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
        m.set(2, 1, 7.5);
        assert_eq!(m.get(2, 1), 7.5);
    }

    #[test]
    fn push_row_grows_matrix() {
        let mut m = DataMatrix::zeros(0, 0);
        m.push_row(&[1.0, 2.0]);
        m.push_row(&[3.0, 4.0]);
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.n_cols(), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn select_rows_keeps_order() {
        let m = DataMatrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let s = m.select_rows(&[3, 1]);
        assert_eq!(s.n_rows(), 2);
        assert_eq!(s.row(0), &[3.0]);
        assert_eq!(s.row(1), &[1.0]);
    }

    #[test]
    fn column_statistics() {
        let m = DataMatrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 30.0]]);
        assert_eq!(m.column_means(), vec![2.0, 20.0]);
        assert_eq!(m.column_variances(), vec![1.0, 100.0]);
        let (mins, maxs) = m.column_min_max();
        assert_eq!(mins, vec![1.0, 10.0]);
        assert_eq!(maxs, vec![3.0, 30.0]);
    }

    #[test]
    fn rows_iterator_matches_row_accessor() {
        let m = DataMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let collected: Vec<&[f64]> = m.rows().collect();
        assert_eq!(collected.len(), 3);
        for (i, r) in collected.iter().enumerate() {
            assert_eq!(*r, m.row(i));
        }
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut m = DataMatrix::zeros(2, 2);
        assert!(m.all_finite());
        m.set(0, 0, f64::NAN);
        assert!(!m.all_finite());
    }

    #[test]
    fn display_does_not_panic() {
        let m = DataMatrix::from_rows(&vec![vec![1.0; 12]; 10]);
        let s = format!("{m}");
        assert!(s.contains("DataMatrix 10x12"));
    }
}
