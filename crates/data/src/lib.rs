//! # cvcp-data
//!
//! Data handling substrate for the CVCP suite: dense matrices, distance
//! metrics, feature normalisation, seeded random number helpers, synthetic
//! data generators and replicas of the data sets used in the CVCP paper
//! (Pourrajabi et al., EDBT 2014).
//!
//! The original experiments used the ALOI image collection, five UCI data
//! sets and the Zyeast gene-expression data, none of which can be downloaded
//! in this offline reproduction.  The [`replicas`] and [`aloi`] modules
//! provide synthetic stand-ins that preserve the structural characteristics
//! the paper's experiments depend on (object counts, dimensionality, number
//! and size of classes, degree of overlap).  See `DESIGN.md` §3 for the full
//! substitution rationale.
//!
//! ## Quick example
//!
//! ```
//! use cvcp_data::prelude::*;
//! use cvcp_data::distance::Distance;
//!
//! let ds = cvcp_data::replicas::iris_like(42);
//! assert_eq!(ds.len(), 150);
//! assert_eq!(ds.dims(), 4);
//! assert_eq!(ds.n_classes(), 3);
//! let d = Euclidean.distance(ds.matrix().row(0), ds.matrix().row(1));
//! assert!(d >= 0.0);
//! ```

#![warn(missing_docs)]

pub mod aloi;
pub mod dataset;
pub mod distance;
pub mod matrix;
pub mod normalize;
pub mod partition;
pub mod replicas;
pub mod rng;
pub mod synthetic;

pub use dataset::{ClassSummary, Dataset};
pub use distance::{
    Chebyshev, Cosine, DiagonalMahalanobis, Distance, Euclidean, Manhattan, Minkowski,
    SquaredEuclidean,
};
pub use matrix::DataMatrix;
pub use partition::{Assignment, Partition};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::dataset::Dataset;
    pub use crate::distance::{Distance, Euclidean, SquaredEuclidean};
    pub use crate::matrix::DataMatrix;
    pub use crate::normalize::{MinMaxScaler, Scaler, ZScoreScaler};
    pub use crate::partition::{Assignment, Partition};
    pub use crate::rng::SeededRng;
}
