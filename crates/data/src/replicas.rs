//! Synthetic replicas of the data sets used in the CVCP paper.
//!
//! The paper evaluates on the ALOI image collection (see [`crate::aloi`]),
//! five UCI data sets (Iris, Wine, Ionosphere, Ecoli) and the Zyeast
//! gene-expression data.  None of these files can be downloaded in this
//! offline reproduction, so each is replaced by a generator that matches the
//! original's *structural* characteristics: number of objects, feature
//! dimensionality, number of classes, class-size distribution, and roughly
//! the degree of class overlap / non-globular structure that drives the
//! paper's findings (density-based clustering outperforming MPCKMeans on most
//! sets, mixed correlation behaviour for MPCKMeans on the harder sets).
//!
//! See `DESIGN.md` §3 for the substitution table and rationale.

use crate::dataset::Dataset;
use crate::rng::SeededRng;
use crate::synthetic::{gaussian_mixture, rename, waveform_profiles, ClusterSpec};

/// Replica of the UCI *Iris* data set: 150 objects, 4 attributes, 3 classes
/// of 50.  One class is well separated; the other two overlap.
pub fn iris_like(seed: u64) -> Dataset {
    let mut rng = SeededRng::new(seed ^ 0x1815);
    let specs = vec![
        // setosa-like: compact and far from the others
        ClusterSpec {
            center: vec![5.0, 3.4, 1.5, 0.25],
            std_devs: vec![0.35, 0.38, 0.17, 0.10],
            size: 50,
            elongation: 0.0,
        },
        // versicolor-like
        ClusterSpec {
            center: vec![5.9, 2.8, 4.3, 1.3],
            std_devs: vec![0.51, 0.31, 0.47, 0.20],
            size: 50,
            elongation: 0.3,
        },
        // virginica-like: overlaps versicolor
        ClusterSpec {
            center: vec![6.6, 3.0, 5.5, 2.0],
            std_devs: vec![0.63, 0.32, 0.55, 0.27],
            size: 50,
            elongation: 0.3,
        },
    ];
    rename(gaussian_mixture(&specs, &mut rng), "iris_like")
}

/// Replica of the UCI *Wine* data set: 178 objects, 13 attributes, 3 classes
/// of sizes 59 / 71 / 48 with moderate overlap and widely differing feature
/// scales (the replica is usually z-scored before clustering, as the original
/// is in practice).
pub fn wine_like(seed: u64) -> Dataset {
    let mut rng = SeededRng::new(seed ^ 0x817E);
    let dims = 13;
    // Feature scales spanning orders of magnitude, like the original
    // (alcohol ~13, proline ~750, ...).
    let scales: Vec<f64> = (0..dims)
        .map(|j| match j % 5 {
            0 => 1.0,
            1 => 2.5,
            2 => 20.0,
            3 => 100.0,
            _ => 750.0,
        })
        .collect();
    let mut make_center = |shift: f64| -> Vec<f64> {
        (0..dims)
            .map(|j| (shift + rng.uniform_in(-0.4, 0.4)) * scales[j])
            .collect()
    };
    let c0 = make_center(1.0);
    let c1 = make_center(1.6);
    let c2 = make_center(2.3);
    let specs = vec![
        ClusterSpec {
            center: c0,
            std_devs: scales.iter().map(|s| 0.28 * s).collect(),
            size: 59,
            elongation: 0.0,
        },
        ClusterSpec {
            center: c1,
            std_devs: scales.iter().map(|s| 0.33 * s).collect(),
            size: 71,
            elongation: 0.0,
        },
        ClusterSpec {
            center: c2,
            std_devs: scales.iter().map(|s| 0.30 * s).collect(),
            size: 48,
            elongation: 0.0,
        },
    ];
    rename(gaussian_mixture(&specs, &mut rng), "wine_like")
}

/// Replica of the UCI *Ionosphere* data set: 351 objects, 34 attributes, two
/// imbalanced classes (225 "good" / 126 "bad").  The "bad" class is diffuse
/// and partly surrounds the "good" class, which makes the set noisy and only
/// partially separable — as in the original, absolute clustering quality
/// stays moderate.
pub fn ionosphere_like(seed: u64) -> Dataset {
    let mut rng = SeededRng::new(seed ^ 0x10_0F);
    let dims = 34;
    let good_center: Vec<f64> = (0..dims)
        .map(|j| if j % 2 == 0 { 0.8 } else { 0.1 })
        .collect();
    let bad_center: Vec<f64> = (0..dims)
        .map(|j| if j % 2 == 0 { 0.3 } else { -0.1 })
        .collect();
    let specs = vec![
        // "good": tighter core
        ClusterSpec {
            center: good_center,
            std_devs: vec![0.35; dims],
            size: 225,
            elongation: 0.4,
        },
        // "bad": broad, noisy, overlapping cloud
        ClusterSpec {
            center: bad_center,
            std_devs: vec![0.85; dims],
            size: 126,
            elongation: 1.2,
        },
    ];
    rename(gaussian_mixture(&specs, &mut rng), "ionosphere_like")
}

/// Replica of the UCI *Ecoli* data set: 336 objects, 7 attributes, 8 classes
/// with a highly skewed size distribution (143/77/52/35/20/5/2/2).  The tiny
/// classes overlap larger ones, which caps achievable clustering quality —
/// mirroring the moderate Overall F-measures the paper reports.
pub fn ecoli_like(seed: u64) -> Dataset {
    let mut rng = SeededRng::new(seed ^ 0x000E_C011);
    let dims = 7;
    let sizes = [143usize, 77, 52, 35, 20, 5, 2, 2];
    // Major classes get reasonably separated centres; minor classes are placed
    // close to (between) the majors so they are genuinely hard to recover.
    let base_centers: Vec<Vec<f64>> = vec![
        vec![0.35, 0.40, 0.48, 0.50, 0.45, 0.30, 0.35],
        vec![0.65, 0.55, 0.48, 0.50, 0.55, 0.70, 0.70],
        vec![0.45, 0.48, 0.50, 0.50, 0.60, 0.75, 0.40],
        vec![0.70, 0.70, 0.48, 0.50, 0.40, 0.35, 0.75],
        vec![0.55, 0.45, 0.52, 0.50, 0.70, 0.50, 0.55],
        vec![0.50, 0.52, 0.49, 0.50, 0.50, 0.55, 0.50],
        vec![0.42, 0.47, 0.50, 0.50, 0.52, 0.45, 0.45],
        vec![0.60, 0.58, 0.49, 0.50, 0.48, 0.60, 0.62],
    ];
    let specs: Vec<ClusterSpec> = sizes
        .iter()
        .zip(base_centers)
        .enumerate()
        .map(|(i, (&size, center))| ClusterSpec {
            center,
            std_devs: vec![if i < 4 { 0.07 } else { 0.10 }; dims],
            size,
            elongation: if i % 3 == 0 { 0.08 } else { 0.0 },
        })
        .collect();
    rename(gaussian_mixture(&specs, &mut rng), "ecoli_like")
}

/// Replica of the *Zyeast* gene-expression data: 205 objects (genes), 20
/// attributes (conditions), 4 classes.  Objects are noisy copies of smooth
/// phase-shifted waveforms, giving elongated, non-globular clusters on which
/// density-based clustering does very well and k-means does not — matching
/// the paper's strongly diverging results on this set.
pub fn zyeast_like(seed: u64) -> Dataset {
    let mut rng = SeededRng::new(seed ^ 0x0007_EA57);
    let ds = waveform_profiles(&[70, 58, 45, 32], 20, 0.38, &mut rng);
    rename(ds, "zyeast_like")
}

/// The standard evaluation corpus of the paper minus the ALOI collection:
/// Iris, Wine, Ionosphere, Ecoli and Zyeast replicas, in the order used in
/// the paper's tables.
pub fn uci_corpus(seed: u64) -> Vec<Dataset> {
    vec![
        iris_like(seed),
        wine_like(seed),
        ionosphere_like(seed),
        ecoli_like(seed),
        zyeast_like(seed),
    ]
}

/// The names resolvable by [`replica_by_name`], in the paper's table order
/// (the ALOI collection is addressed as `aloi` or `aloi:<index>`).
pub const REPLICA_NAMES: [&str; 6] = [
    "iris_like",
    "wine_like",
    "ionosphere_like",
    "ecoli_like",
    "zyeast_like",
    "aloi",
];

/// `true` when [`replica_by_name`] would resolve `name` — a cheap,
/// generation-free admission check (validating a network request must not
/// cost a full replica generation).
pub fn replica_name_is_known(name: &str) -> bool {
    REPLICA_NAMES.contains(&name)
        || name
            .strip_prefix("aloi:")
            .is_some_and(|idx| idx.parse::<usize>().is_ok())
}

/// Resolves a data-set replica by name — the registry behind network
/// requests that reference their data set as a string.
///
/// Accepted names are the five UCI-style replicas ([`REPLICA_NAMES`]),
/// `aloi` (the first data set of the ALOI k5 collection) and
/// `aloi:<index>` for a specific member of the collection.  Unknown names
/// (and malformed `aloi:` indices) return `None`.  Resolution is
/// deterministic in `(name, seed)`.
pub fn replica_by_name(name: &str, seed: u64) -> Option<Dataset> {
    match name {
        "iris_like" => Some(iris_like(seed)),
        "wine_like" => Some(wine_like(seed)),
        "ionosphere_like" => Some(ionosphere_like(seed)),
        "ecoli_like" => Some(ecoli_like(seed)),
        "zyeast_like" => Some(zyeast_like(seed)),
        "aloi" => Some(crate::aloi::aloi_k5_dataset(seed, 0)),
        _ => {
            let index: usize = name.strip_prefix("aloi:")?.parse().ok()?;
            Some(crate::aloi::aloi_k5_dataset(seed, index))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iris_like_shape() {
        let ds = iris_like(0);
        assert_eq!(ds.len(), 150);
        assert_eq!(ds.dims(), 4);
        assert_eq!(ds.class_counts(), vec![50, 50, 50]);
        assert!(ds.matrix().all_finite());
    }

    #[test]
    fn wine_like_shape() {
        let ds = wine_like(0);
        assert_eq!(ds.len(), 178);
        assert_eq!(ds.dims(), 13);
        let mut counts = ds.class_counts();
        counts.sort_unstable();
        assert_eq!(counts, vec![48, 59, 71]);
    }

    #[test]
    fn ionosphere_like_shape() {
        let ds = ionosphere_like(0);
        assert_eq!(ds.len(), 351);
        assert_eq!(ds.dims(), 34);
        let mut counts = ds.class_counts();
        counts.sort_unstable();
        assert_eq!(counts, vec![126, 225]);
    }

    #[test]
    fn ecoli_like_shape() {
        let ds = ecoli_like(0);
        assert_eq!(ds.len(), 336);
        assert_eq!(ds.dims(), 7);
        assert_eq!(ds.n_classes(), 8);
        let mut counts = ds.class_counts();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(counts, vec![143, 77, 52, 35, 20, 5, 2, 2]);
    }

    #[test]
    fn zyeast_like_shape() {
        let ds = zyeast_like(0);
        assert_eq!(ds.len(), 205);
        assert_eq!(ds.dims(), 20);
        assert_eq!(ds.n_classes(), 4);
    }

    #[test]
    fn replicas_are_deterministic_per_seed() {
        assert_eq!(iris_like(5), iris_like(5));
        assert_ne!(iris_like(5).matrix(), iris_like(6).matrix());
        assert_eq!(zyeast_like(9), zyeast_like(9));
    }

    #[test]
    fn uci_corpus_has_five_sets_in_paper_order() {
        let corpus = uci_corpus(1);
        let names: Vec<&str> = corpus.iter().map(|d| d.name()).collect();
        assert_eq!(
            names,
            vec![
                "iris_like",
                "wine_like",
                "ionosphere_like",
                "ecoli_like",
                "zyeast_like"
            ]
        );
    }

    #[test]
    fn replica_registry_resolves_every_published_name() {
        for name in REPLICA_NAMES {
            let ds = replica_by_name(name, 7).expect("published name resolves");
            assert!(!ds.is_empty(), "{name} is non-empty");
        }
        // by-name resolution matches the direct constructors bit-for-bit
        assert_eq!(replica_by_name("iris_like", 3).unwrap(), iris_like(3));
        assert_eq!(
            replica_by_name("aloi", 3).unwrap(),
            crate::aloi::aloi_k5_dataset(3, 0)
        );
        assert_eq!(
            replica_by_name("aloi:17", 3).unwrap(),
            crate::aloi::aloi_k5_dataset(3, 17)
        );
    }

    #[test]
    fn replica_registry_rejects_unknown_names() {
        for bad in [
            "",
            "iris",
            "Iris_like",
            "aloi:",
            "aloi:x",
            "aloi:-1",
            "aloi:1.5",
        ] {
            assert!(
                replica_by_name(bad, 1).is_none(),
                "{bad:?} must not resolve"
            );
            assert!(!replica_name_is_known(bad), "{bad:?} must not be known");
        }
    }

    #[test]
    fn name_check_agrees_with_resolution() {
        for name in REPLICA_NAMES.into_iter().chain(["aloi:42"]) {
            assert!(replica_name_is_known(name));
            assert!(replica_by_name(name, 1).is_some());
        }
    }

    #[test]
    fn wine_like_feature_scales_vary() {
        let ds = wine_like(0);
        let vars = ds.matrix().column_variances();
        let max = vars.iter().cloned().fold(f64::MIN, f64::max);
        let min = vars.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min > 100.0, "expected wide spread of feature scales");
    }

    #[test]
    fn iris_like_one_class_is_separable() {
        // Class 0 (setosa-like) should be far from classes 1 and 2 in feature
        // space: its centroid distance to others exceeds within-class spread.
        let ds = iris_like(3);
        let members = ds.class_members();
        let centroid = |idx: &Vec<usize>| -> Vec<f64> {
            let mut c = vec![0.0; ds.dims()];
            for &i in idx {
                for (j, v) in ds.matrix().row(i).iter().enumerate() {
                    c[j] += v;
                }
            }
            for v in &mut c {
                *v /= idx.len() as f64;
            }
            c
        };
        let c0 = centroid(&members[0]);
        let c1 = centroid(&members[1]);
        let dist: f64 = c0
            .iter()
            .zip(&c1)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(
            dist > 2.0,
            "setosa-like class should be well separated, dist={dist}"
        );
    }
}
