//! Labelled data sets: a [`DataMatrix`] plus ground-truth class labels.
//!
//! Ground truth is used (a) to *generate* side information (labelled subsets
//! or constraint pools) fed to the semi-supervised algorithms, and (b) for
//! the external "Overall F-Measure" evaluation.  It is never given to the
//! clustering algorithms directly.

use crate::matrix::DataMatrix;
use std::collections::BTreeMap;

/// Per-class summary of a data set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassSummary {
    /// Class identifier (0-based, contiguous).
    pub class: usize,
    /// Number of objects carrying that label.
    pub count: usize,
}

/// A data set: feature matrix, ground-truth class labels and a name.
///
/// Class labels are `usize` values in `0..n_classes` (contiguous).
///
/// ```
/// use cvcp_data::{DataMatrix, Dataset};
///
/// let m = DataMatrix::from_rows(&[vec![0.0], vec![0.1], vec![5.0]]);
/// let ds = Dataset::new("toy", m, vec![0, 0, 1]);
/// assert_eq!(ds.len(), 3);
/// assert_eq!(ds.n_classes(), 2);
/// assert_eq!(ds.class_counts(), vec![2, 1]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    name: String,
    matrix: DataMatrix,
    labels: Vec<usize>,
}

impl Dataset {
    /// Creates a data set from a matrix and labels.
    ///
    /// # Panics
    ///
    /// Panics if the number of labels differs from the number of rows, or if
    /// labels are not contiguous starting at zero (e.g. `[0, 2]` without a
    /// class `1`).
    pub fn new(name: impl Into<String>, matrix: DataMatrix, labels: Vec<usize>) -> Self {
        assert_eq!(
            matrix.n_rows(),
            labels.len(),
            "labels length must match matrix rows"
        );
        if !labels.is_empty() {
            let max = *labels.iter().max().expect("non-empty");
            let mut seen = vec![false; max + 1];
            for &l in &labels {
                seen[l] = true;
            }
            assert!(
                seen.iter().all(|&s| s),
                "class labels must be contiguous 0..n_classes"
            );
        }
        Self {
            name: name.into(),
            matrix,
            labels,
        }
    }

    /// Data set name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The feature matrix.
    pub fn matrix(&self) -> &DataMatrix {
        &self.matrix
    }

    /// Ground-truth class label of every object.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.matrix.n_rows()
    }

    /// `true` when the data set has no objects.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of feature dimensions.
    pub fn dims(&self) -> usize {
        self.matrix.n_cols()
    }

    /// Number of ground-truth classes.
    pub fn n_classes(&self) -> usize {
        self.labels.iter().copied().max().map_or(0, |m| m + 1)
    }

    /// Number of objects in each class, indexed by class id.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes()];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Per-class summaries sorted by class id.
    pub fn class_summaries(&self) -> Vec<ClassSummary> {
        self.class_counts()
            .into_iter()
            .enumerate()
            .map(|(class, count)| ClassSummary { class, count })
            .collect()
    }

    /// Indices of the objects belonging to each class.
    pub fn class_members(&self) -> Vec<Vec<usize>> {
        let mut members = vec![Vec::new(); self.n_classes()];
        for (i, &l) in self.labels.iter().enumerate() {
            members[l].push(i);
        }
        members
    }

    /// Returns a new data set with the same objects but features replaced by
    /// `matrix` (used by the scalers).
    ///
    /// # Panics
    ///
    /// Panics if the row count changes.
    pub fn with_matrix(&self, matrix: DataMatrix) -> Self {
        assert_eq!(matrix.n_rows(), self.len(), "row count must be preserved");
        Self {
            name: self.name.clone(),
            matrix,
            labels: self.labels.clone(),
        }
    }

    /// Returns a new data set restricted to the given object indices.
    /// Class labels are re-mapped to stay contiguous.
    pub fn subset(&self, indices: &[usize]) -> Self {
        let matrix = self.matrix.select_rows(indices);
        let raw: Vec<usize> = indices.iter().map(|&i| self.labels[i]).collect();
        let mut remap: BTreeMap<usize, usize> = BTreeMap::new();
        for &l in &raw {
            let next = remap.len();
            remap.entry(l).or_insert(next);
        }
        let labels = raw.into_iter().map(|l| remap[&l]).collect();
        Self {
            name: format!("{}[subset:{}]", self.name, indices.len()),
            matrix,
            labels,
        }
    }

    /// A human readable one-line description, e.g. `iris_like: 150 objects, 4 dims, 3 classes`.
    pub fn describe(&self) -> String {
        format!(
            "{}: {} objects, {} dims, {} classes {:?}",
            self.name,
            self.len(),
            self.dims(),
            self.n_classes(),
            self.class_counts()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let m = DataMatrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.1, 0.1],
            vec![5.0, 5.0],
            vec![5.1, 5.2],
            vec![9.0, 9.0],
        ]);
        Dataset::new("toy", m, vec![0, 0, 1, 1, 2])
    }

    #[test]
    fn basic_accessors() {
        let ds = toy();
        assert_eq!(ds.name(), "toy");
        assert_eq!(ds.len(), 5);
        assert_eq!(ds.dims(), 2);
        assert_eq!(ds.n_classes(), 3);
        assert_eq!(ds.class_counts(), vec![2, 2, 1]);
        assert!(!ds.is_empty());
    }

    #[test]
    fn class_members_partition_objects() {
        let ds = toy();
        let members = ds.class_members();
        let total: usize = members.iter().map(Vec::len).sum();
        assert_eq!(total, ds.len());
        assert_eq!(members[0], vec![0, 1]);
        assert_eq!(members[2], vec![4]);
    }

    #[test]
    fn class_summaries_match_counts() {
        let ds = toy();
        let summaries = ds.class_summaries();
        assert_eq!(summaries.len(), 3);
        assert_eq!(summaries[1], ClassSummary { class: 1, count: 2 });
    }

    #[test]
    #[should_panic(expected = "labels length")]
    fn rejects_label_length_mismatch() {
        let m = DataMatrix::from_rows(&[vec![0.0], vec![1.0]]);
        let _ = Dataset::new("bad", m, vec![0]);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn rejects_non_contiguous_labels() {
        let m = DataMatrix::from_rows(&[vec![0.0], vec![1.0]]);
        let _ = Dataset::new("bad", m, vec![0, 2]);
    }

    #[test]
    fn subset_remaps_labels() {
        let ds = toy();
        let sub = ds.subset(&[2, 3, 4]);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.n_classes(), 2);
        assert_eq!(sub.labels(), &[0, 0, 1]);
        assert_eq!(sub.matrix().row(2), &[9.0, 9.0]);
    }

    #[test]
    fn with_matrix_preserves_labels() {
        let ds = toy();
        let scaled = ds.with_matrix(DataMatrix::zeros(5, 7));
        assert_eq!(scaled.labels(), ds.labels());
        assert_eq!(scaled.dims(), 7);
    }

    #[test]
    fn describe_mentions_name_and_sizes() {
        let ds = toy();
        let d = ds.describe();
        assert!(d.contains("toy"));
        assert!(d.contains("5 objects"));
        assert!(d.contains("3 classes"));
    }

    #[test]
    fn empty_dataset_is_ok() {
        let ds = Dataset::new("empty", DataMatrix::zeros(0, 0), vec![]);
        assert!(ds.is_empty());
        assert_eq!(ds.n_classes(), 0);
        assert!(ds.class_counts().is_empty());
    }

    #[test]
    fn dataset_is_cloneable_and_sendable() {
        fn assert_send_sync_clone<T: Send + Sync + Clone>() {}
        assert_send_sync_clone::<Dataset>();
        assert_send_sync_clone::<ClassSummary>();
    }
}
