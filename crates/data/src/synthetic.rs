//! Synthetic data generators.
//!
//! These generators are the building blocks for the data-set replicas in
//! [`crate::replicas`] and [`crate::aloi`].  They produce labelled data with
//! controllable cluster shape, overlap and imbalance so that the experiments
//! of the CVCP paper can be reproduced without access to the original data.

use crate::dataset::Dataset;
use crate::matrix::DataMatrix;
use crate::rng::SeededRng;

/// Specification of a single Gaussian-like cluster.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Cluster centre.
    pub center: Vec<f64>,
    /// Per-dimension standard deviation (axis-aligned anisotropy).
    pub std_devs: Vec<f64>,
    /// Number of points to draw.
    pub size: usize,
    /// Optional linear "stretch": points are sheared along a random direction
    /// by this factor, producing elongated, non-globular clusters.
    pub elongation: f64,
}

impl ClusterSpec {
    /// A spherical cluster with uniform standard deviation.
    pub fn spherical(center: Vec<f64>, std_dev: f64, size: usize) -> Self {
        let dims = center.len();
        Self {
            center,
            std_devs: vec![std_dev; dims],
            size,
            elongation: 0.0,
        }
    }

    /// Number of dimensions of the cluster centre.
    pub fn dims(&self) -> usize {
        self.center.len()
    }
}

/// Draws a labelled mixture of Gaussian-like clusters.
///
/// Each [`ClusterSpec`] becomes one class; class ids follow the order of
/// `specs`.  Points are shuffled so that object index does not leak class
/// information.
///
/// # Panics
///
/// Panics if `specs` is empty or cluster dimensionalities differ.
pub fn gaussian_mixture(specs: &[ClusterSpec], rng: &mut SeededRng) -> Dataset {
    assert!(!specs.is_empty(), "at least one cluster spec required");
    let dims = specs[0].dims();
    assert!(
        specs
            .iter()
            .all(|s| s.dims() == dims && s.std_devs.len() == dims),
        "all clusters must share dimensionality"
    );

    let total: usize = specs.iter().map(|s| s.size).sum();
    let mut rows: Vec<(Vec<f64>, usize)> = Vec::with_capacity(total);

    for (class, spec) in specs.iter().enumerate() {
        // Random elongation direction for this cluster (fixed per cluster).
        let mut dir = vec![0.0; dims];
        if spec.elongation > 0.0 {
            for d in dir.iter_mut() {
                *d = rng.standard_normal();
            }
            let norm: f64 = dir.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-12);
            for d in dir.iter_mut() {
                *d /= norm;
            }
        }
        for _ in 0..spec.size {
            let mut p = Vec::with_capacity(dims);
            for j in 0..dims {
                p.push(rng.normal(spec.center[j], spec.std_devs[j]));
            }
            if spec.elongation > 0.0 {
                let t = rng.standard_normal() * spec.elongation;
                for j in 0..dims {
                    p[j] += t * dir[j];
                }
            }
            rows.push((p, class));
        }
    }

    rng.shuffle(&mut rows);
    let labels: Vec<usize> = rows.iter().map(|(_, c)| *c).collect();
    let matrix = DataMatrix::from_rows(&rows.iter().map(|(p, _)| p.clone()).collect::<Vec<_>>());
    Dataset::new("gaussian_mixture", matrix, normalise_labels(labels))
}

/// Generates `k` well separated spherical clusters of `per_cluster` points in
/// `dims` dimensions.  The separation factor controls centre spacing in units
/// of the cluster standard deviation; values above ~6 give essentially
/// perfectly separable data, which is useful for tests.
pub fn separated_blobs(
    k: usize,
    per_cluster: usize,
    dims: usize,
    separation: f64,
    rng: &mut SeededRng,
) -> Dataset {
    assert!(k >= 1 && per_cluster >= 1 && dims >= 1);
    // A random unit direction shared by all centres: centres are placed at
    // 0, separation, 2·separation, … along it (plus a small random offset),
    // which guarantees every pair of centres is at least `separation` apart
    // regardless of the dimensionality.
    let mut direction: Vec<f64> = (0..dims).map(|_| rng.standard_normal()).collect();
    let norm: f64 = direction
        .iter()
        .map(|v| v * v)
        .sum::<f64>()
        .sqrt()
        .max(1e-12);
    for d in direction.iter_mut() {
        *d /= norm;
    }
    let specs: Vec<ClusterSpec> = (0..k)
        .map(|c| {
            let offset: Vec<f64> = (0..dims).map(|_| rng.normal(0.0, 0.2)).collect();
            let center: Vec<f64> = direction
                .iter()
                .zip(&offset)
                .map(|(d, o)| d * separation * c as f64 + o)
                .collect();
            ClusterSpec::spherical(center, 1.0, per_cluster)
        })
        .collect();
    let mut ds = gaussian_mixture(&specs, rng);
    ds = rename(ds, format!("blobs_k{k}_d{dims}"));
    ds
}

/// Two interleaving half-moons in 2-D, a classic example of clusters that
/// k-means cannot recover but density-based methods can.  Extra dimensions
/// (if `dims > 2`) are filled with Gaussian noise of standard deviation
/// `noise`.
pub fn two_moons(per_class: usize, noise: f64, dims: usize, rng: &mut SeededRng) -> Dataset {
    assert!(dims >= 2, "two_moons needs at least 2 dimensions");
    let mut rows: Vec<(Vec<f64>, usize)> = Vec::with_capacity(per_class * 2);
    for i in 0..per_class {
        let t = std::f64::consts::PI * (i as f64 + 0.5) / per_class as f64;
        let mut p = vec![0.0; dims];
        p[0] = t.cos() + rng.normal(0.0, noise);
        p[1] = t.sin() + rng.normal(0.0, noise);
        for d in p.iter_mut().skip(2) {
            *d = rng.normal(0.0, noise);
        }
        rows.push((p, 0));

        let mut q = vec![0.0; dims];
        q[0] = 1.0 - t.cos() + rng.normal(0.0, noise);
        q[1] = 0.5 - t.sin() + rng.normal(0.0, noise);
        for d in q.iter_mut().skip(2) {
            *d = rng.normal(0.0, noise);
        }
        rows.push((q, 1));
    }
    rng.shuffle(&mut rows);
    let labels: Vec<usize> = rows.iter().map(|(_, c)| *c).collect();
    let matrix = DataMatrix::from_rows(&rows.iter().map(|(p, _)| p.clone()).collect::<Vec<_>>());
    Dataset::new("two_moons", matrix, normalise_labels(labels))
}

/// Concentric rings in 2-D (embedded in `dims` dimensions), another
/// density-friendly / centroid-hostile structure.
pub fn concentric_rings(
    per_ring: usize,
    radii: &[f64],
    noise: f64,
    dims: usize,
    rng: &mut SeededRng,
) -> Dataset {
    assert!(dims >= 2 && !radii.is_empty());
    let mut rows: Vec<(Vec<f64>, usize)> = Vec::new();
    for (class, &r) in radii.iter().enumerate() {
        for _ in 0..per_ring {
            let angle = rng.uniform_in(0.0, 2.0 * std::f64::consts::PI);
            let rr = r + rng.normal(0.0, noise);
            let mut p = vec![0.0; dims];
            p[0] = rr * angle.cos();
            p[1] = rr * angle.sin();
            for d in p.iter_mut().skip(2) {
                *d = rng.normal(0.0, noise);
            }
            rows.push((p, class));
        }
    }
    rng.shuffle(&mut rows);
    let labels: Vec<usize> = rows.iter().map(|(_, c)| *c).collect();
    let matrix = DataMatrix::from_rows(&rows.iter().map(|(p, _)| p.clone()).collect::<Vec<_>>());
    Dataset::new("concentric_rings", matrix, normalise_labels(labels))
}

/// Adds `n_noise` uniformly distributed noise objects to a data set.  The
/// noise objects receive a *new* class of their own (the last class id),
/// which keeps labels contiguous; callers that want unlabelled noise can drop
/// that class from the side information they generate.
pub fn with_uniform_noise(
    ds: &Dataset,
    n_noise: usize,
    margin: f64,
    rng: &mut SeededRng,
) -> Dataset {
    if n_noise == 0 {
        return ds.clone();
    }
    let (mins, maxs) = ds.matrix().column_min_max();
    let mut matrix = ds.matrix().clone();
    let mut labels = ds.labels().to_vec();
    let noise_class = ds.n_classes();
    for _ in 0..n_noise {
        let row: Vec<f64> = mins
            .iter()
            .zip(&maxs)
            .map(|(&lo, &hi)| {
                let span = (hi - lo).max(1e-9);
                rng.uniform_in(lo - margin * span, hi + margin * span)
            })
            .collect();
        matrix.push_row(&row);
        labels.push(noise_class);
    }
    Dataset::new(format!("{}+noise{}", ds.name(), n_noise), matrix, labels)
}

/// Generates smooth "expression profile" style data: each class has a
/// prototype waveform (random phase/frequency sinusoid plus trend) over
/// `dims` ordered conditions; objects are noisy copies of their class
/// prototype.  Used by the Zyeast replica.
pub fn waveform_profiles(
    class_sizes: &[usize],
    dims: usize,
    noise: f64,
    rng: &mut SeededRng,
) -> Dataset {
    assert!(!class_sizes.is_empty() && dims >= 2);
    let mut rows: Vec<(Vec<f64>, usize)> = Vec::new();
    for (class, &size) in class_sizes.iter().enumerate() {
        let amp = rng.uniform_in(0.8, 2.0);
        let freq = rng.uniform_in(0.5, 2.5);
        let phase = rng.uniform_in(0.0, 2.0 * std::f64::consts::PI);
        let slope = rng.uniform_in(-0.4, 0.4);
        let offset = rng.uniform_in(-1.0, 1.0);
        for _ in 0..size {
            let p: Vec<f64> = (0..dims)
                .map(|t| {
                    let x = t as f64 / dims as f64 * 2.0 * std::f64::consts::PI;
                    amp * (freq * x + phase).sin()
                        + slope * t as f64 / dims as f64
                        + offset
                        + rng.normal(0.0, noise)
                })
                .collect();
            rows.push((p, class));
        }
    }
    rng.shuffle(&mut rows);
    let labels: Vec<usize> = rows.iter().map(|(_, c)| *c).collect();
    let matrix = DataMatrix::from_rows(&rows.iter().map(|(p, _)| p.clone()).collect::<Vec<_>>());
    Dataset::new("waveform_profiles", matrix, normalise_labels(labels))
}

/// Renames a data set (generators return generic names; replicas give them
/// paper-specific names).
pub fn rename(ds: Dataset, name: impl Into<String>) -> Dataset {
    Dataset::new(name, ds.matrix().clone(), ds.labels().to_vec())
}

/// Ensures labels are contiguous starting at zero (generators may skip a
/// class if a size of zero was requested).
fn normalise_labels(labels: Vec<usize>) -> Vec<usize> {
    let mut present: Vec<usize> = labels.clone();
    present.sort_unstable();
    present.dedup();
    // BTreeMap, not HashMap: lookup-only, but rule D1 (cvcp-analysis)
    // keeps hash collections out of result-path crates entirely.
    let map: std::collections::BTreeMap<usize, usize> = present
        .into_iter()
        .enumerate()
        .map(|(new, old)| (old, new))
        .collect();
    labels.into_iter().map(|l| map[&l]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{Distance, Euclidean};

    #[test]
    fn gaussian_mixture_sizes_and_labels() {
        let mut rng = SeededRng::new(1);
        let specs = vec![
            ClusterSpec::spherical(vec![0.0, 0.0], 0.5, 30),
            ClusterSpec::spherical(vec![10.0, 10.0], 0.5, 20),
        ];
        let ds = gaussian_mixture(&specs, &mut rng);
        assert_eq!(ds.len(), 50);
        assert_eq!(ds.n_classes(), 2);
        let counts = ds.class_counts();
        assert_eq!(counts.iter().sum::<usize>(), 50);
        assert!(counts.contains(&30) && counts.contains(&20));
    }

    #[test]
    fn gaussian_mixture_is_reproducible() {
        let specs = vec![ClusterSpec::spherical(vec![0.0; 3], 1.0, 25)];
        let a = gaussian_mixture(&specs, &mut SeededRng::new(7));
        let b = gaussian_mixture(&specs, &mut SeededRng::new(7));
        assert_eq!(a.matrix(), b.matrix());
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn separated_blobs_are_actually_separated() {
        let mut rng = SeededRng::new(3);
        let ds = separated_blobs(3, 40, 4, 12.0, &mut rng);
        // For strongly separated blobs, intra-class distances should be much
        // smaller than inter-class distances on average.
        let mut intra = Vec::new();
        let mut inter = Vec::new();
        for i in 0..ds.len() {
            for j in (i + 1)..ds.len() {
                let d = Euclidean.distance(ds.matrix().row(i), ds.matrix().row(j));
                if ds.labels()[i] == ds.labels()[j] {
                    intra.push(d);
                } else {
                    inter.push(d);
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&inter) > 3.0 * mean(&intra));
    }

    #[test]
    fn two_moons_shape() {
        let mut rng = SeededRng::new(5);
        let ds = two_moons(60, 0.05, 2, &mut rng);
        assert_eq!(ds.len(), 120);
        assert_eq!(ds.n_classes(), 2);
        assert_eq!(ds.class_counts(), vec![60, 60]);
        assert!(ds.matrix().all_finite());
    }

    #[test]
    fn two_moons_extra_dims_are_noise() {
        let mut rng = SeededRng::new(5);
        let ds = two_moons(50, 0.05, 5, &mut rng);
        assert_eq!(ds.dims(), 5);
        let vars = ds.matrix().column_variances();
        // noise dimensions have much smaller variance than the signal dims
        assert!(vars[2] < vars[0]);
    }

    #[test]
    fn concentric_rings_counts() {
        let mut rng = SeededRng::new(9);
        let ds = concentric_rings(30, &[1.0, 3.0, 5.0], 0.05, 2, &mut rng);
        assert_eq!(ds.len(), 90);
        assert_eq!(ds.n_classes(), 3);
    }

    #[test]
    fn with_uniform_noise_adds_new_class() {
        let mut rng = SeededRng::new(2);
        let base = separated_blobs(2, 20, 3, 8.0, &mut rng);
        let noisy = with_uniform_noise(&base, 10, 0.1, &mut rng);
        assert_eq!(noisy.len(), 50);
        assert_eq!(noisy.n_classes(), 3);
        assert_eq!(noisy.class_counts()[2], 10);
    }

    #[test]
    fn with_zero_noise_is_identity() {
        let mut rng = SeededRng::new(2);
        let base = separated_blobs(2, 10, 2, 8.0, &mut rng);
        let same = with_uniform_noise(&base, 0, 0.1, &mut rng);
        assert_eq!(base, same);
    }

    #[test]
    fn waveform_profiles_sizes() {
        let mut rng = SeededRng::new(13);
        let ds = waveform_profiles(&[50, 30, 20], 20, 0.2, &mut rng);
        assert_eq!(ds.len(), 100);
        assert_eq!(ds.dims(), 20);
        assert_eq!(ds.n_classes(), 3);
        assert!(ds.matrix().all_finite());
    }

    #[test]
    fn elongated_clusters_have_larger_spread() {
        let mut rng = SeededRng::new(21);
        let spec_round = ClusterSpec::spherical(vec![0.0, 0.0], 1.0, 300);
        let mut spec_long = ClusterSpec::spherical(vec![0.0, 0.0], 1.0, 300);
        spec_long.elongation = 4.0;
        let round = gaussian_mixture(&[spec_round], &mut rng);
        let long = gaussian_mixture(&[spec_long], &mut rng);
        let spread = |ds: &Dataset| ds.matrix().column_variances().iter().sum::<f64>();
        assert!(spread(&long) > 2.0 * spread(&round));
    }

    #[test]
    fn rename_changes_only_name() {
        let mut rng = SeededRng::new(2);
        let base = separated_blobs(2, 5, 2, 8.0, &mut rng);
        let renamed = rename(base.clone(), "other");
        assert_eq!(renamed.name(), "other");
        assert_eq!(renamed.matrix(), base.matrix());
    }

    /// Regression pin for the D1 fix: `normalise_labels` used to hold its
    /// old-label -> new-label map in a `HashMap`.  The map is lookup-only,
    /// so the `BTreeMap` swap must be value-identical — this checks the
    /// production remapping against a `HashMap` reference on inputs with
    /// gaps, duplicates, and out-of-order first appearances.
    #[test]
    fn normalise_labels_matches_a_hash_map_reference() {
        use std::collections::HashMap;
        let cases: &[Vec<usize>] = &[
            vec![],
            vec![0, 0, 0],
            vec![5, 2, 2, 9, 5, 2],
            vec![9, 8, 7, 7, 8, 9, 0],
            vec![3, 100, 3, 50, 100, 0, 50],
        ];
        for labels in cases {
            let map: HashMap<usize, usize> = {
                let mut present = labels.clone();
                present.sort_unstable();
                present.dedup();
                present
                    .into_iter()
                    .enumerate()
                    .map(|(new, old)| (old, new))
                    .collect()
            };
            let reference: Vec<usize> = labels.iter().map(|l| map[l]).collect();
            assert_eq!(
                normalise_labels(labels.clone()),
                reference,
                "remap differs for {labels:?}"
            );
        }
    }
}
