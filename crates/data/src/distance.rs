//! Distance metrics used by the clustering substrates.
//!
//! All algorithms in the suite are generic over [`Distance`].  The CVCP paper
//! uses Euclidean distance for both FOSC-OPTICSDend and MPCKMeans, but
//! MPCKMeans additionally learns a per-cluster *diagonal Mahalanobis* metric,
//! which is provided here as [`DiagonalMahalanobis`].

use std::fmt::Debug;

/// A dissimilarity function between two feature vectors of equal length.
///
/// Implementations must be symmetric (`d(a, b) == d(b, a)`), non-negative and
/// satisfy `d(a, a) == 0` (up to floating point error).  The triangle
/// inequality is not required (e.g. [`SquaredEuclidean`] violates it), but
/// metrics that do satisfy it say so in their documentation.
pub trait Distance: Send + Sync + Debug {
    /// Computes the dissimilarity between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `a.len() != b.len()`.
    fn distance(&self, a: &[f64], b: &[f64]) -> f64;

    /// A short, human-readable name for reports.
    fn name(&self) -> &'static str {
        "distance"
    }
}

/// The ordinary Euclidean (L2) metric.  Satisfies the triangle inequality.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Euclidean;

impl Distance for Euclidean {
    #[inline]
    fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        SquaredEuclidean.distance(a, b).sqrt()
    }

    fn name(&self) -> &'static str {
        "euclidean"
    }
}

/// Squared Euclidean distance.  Cheaper than [`Euclidean`] (no square root)
/// and order-equivalent to it; used internally by k-means style algorithms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SquaredEuclidean;

impl Distance for SquaredEuclidean {
    #[inline]
    fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(
            a.len(),
            b.len(),
            "dimension mismatch: {} vs {}",
            a.len(),
            b.len()
        );
        let mut acc = 0.0;
        for (x, y) in a.iter().zip(b) {
            let d = x - y;
            acc += d * d;
        }
        acc
    }

    fn name(&self) -> &'static str {
        "squared_euclidean"
    }
}

/// Manhattan (L1, city block) distance.  Satisfies the triangle inequality.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Manhattan;

impl Distance for Manhattan {
    #[inline]
    fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "dimension mismatch");
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
    }

    fn name(&self) -> &'static str {
        "manhattan"
    }
}

/// Chebyshev (L∞) distance: the maximum absolute per-coordinate difference.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Chebyshev;

impl Distance for Chebyshev {
    #[inline]
    fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "dimension mismatch");
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    fn name(&self) -> &'static str {
        "chebyshev"
    }
}

/// General Minkowski (Lp) distance for `p >= 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Minkowski {
    /// The order of the norm; must be at least 1.
    pub p: f64,
}

impl Minkowski {
    /// Creates a Minkowski distance of order `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p < 1` or `p` is not finite.
    pub fn new(p: f64) -> Self {
        assert!(
            p.is_finite() && p >= 1.0,
            "Minkowski order must be >= 1, got {p}"
        );
        Self { p }
    }
}

impl Distance for Minkowski {
    #[inline]
    fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "dimension mismatch");
        let sum: f64 = a
            .iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs().powf(self.p))
            .sum();
        sum.powf(1.0 / self.p)
    }

    fn name(&self) -> &'static str {
        "minkowski"
    }
}

/// Cosine *distance*: `1 - cos(a, b)`.
///
/// When one of the vectors has zero norm the distance is defined as `1.0`
/// (maximally dissimilar) unless both are zero, in which case it is `0.0`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cosine;

impl Distance for Cosine {
    #[inline]
    fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "dimension mismatch");
        let mut dot = 0.0;
        let mut na = 0.0;
        let mut nb = 0.0;
        for (x, y) in a.iter().zip(b) {
            dot += x * y;
            na += x * x;
            nb += y * y;
        }
        if na == 0.0 && nb == 0.0 {
            return 0.0;
        }
        if na == 0.0 || nb == 0.0 {
            return 1.0;
        }
        let cos = (dot / (na.sqrt() * nb.sqrt())).clamp(-1.0, 1.0);
        1.0 - cos
    }

    fn name(&self) -> &'static str {
        "cosine"
    }
}

/// Mahalanobis distance with a diagonal weight matrix, i.e.
/// `sqrt(Σ_j w_j (a_j - b_j)^2)`.
///
/// This is the parameterised metric learned per cluster by MPCKMeans
/// (Bilenko et al. 2004).  Weights must be non-negative.
#[derive(Debug, Clone, PartialEq)]
pub struct DiagonalMahalanobis {
    weights: Vec<f64>,
}

impl DiagonalMahalanobis {
    /// Creates the metric from per-dimension weights.
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative or non-finite.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "diagonal metric weights must be finite and non-negative"
        );
        Self { weights }
    }

    /// An identity metric (all weights 1), equivalent to [`Euclidean`].
    pub fn identity(dims: usize) -> Self {
        Self {
            weights: vec![1.0; dims],
        }
    }

    /// The per-dimension weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Squared weighted distance (no square root), as used in the MPCKMeans
    /// objective.
    #[inline]
    pub fn squared(&self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "dimension mismatch");
        assert_eq!(a.len(), self.weights.len(), "weight dimension mismatch");
        let mut acc = 0.0;
        for ((x, y), w) in a.iter().zip(b).zip(&self.weights) {
            let d = x - y;
            acc += w * d * d;
        }
        acc
    }

    /// `log(det(A))` for the diagonal metric, i.e. the sum of the log weights.
    /// Weights of zero are clamped to a small positive value to keep the
    /// value finite (mirrors the clamping applied during metric learning).
    pub fn log_det(&self) -> f64 {
        self.weights.iter().map(|w| w.max(1e-12).ln()).sum()
    }
}

impl Distance for DiagonalMahalanobis {
    #[inline]
    fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        self.squared(a, b).sqrt()
    }

    fn name(&self) -> &'static str {
        "diagonal_mahalanobis"
    }
}

/// Computes the full pairwise distance matrix (condensed into a flat
/// lower-triangular-by-rows layout is not used; this is a plain `n x n`
/// symmetric matrix) for `n` rows of `data`.
///
/// Intended for small/medium data sets (the paper's largest set has 351
/// objects); density-based algorithms in this suite use it to avoid repeated
/// metric evaluations.
#[allow(clippy::needless_range_loop)] // symmetric fill over (i, j) index pairs
pub fn pairwise_matrix<D: Distance + ?Sized>(
    data: &crate::matrix::DataMatrix,
    metric: &D,
) -> Vec<Vec<f64>> {
    let n = data.n_rows();
    let mut out = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = metric.distance(data.row(i), data.row(j));
            out[i][j] = d;
            out[j][i] = d;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::DataMatrix;

    const A: [f64; 3] = [1.0, 2.0, 3.0];
    const B: [f64; 3] = [4.0, 6.0, 3.0];

    #[test]
    fn euclidean_basic() {
        assert!((Euclidean.distance(&A, &B) - 5.0).abs() < 1e-12);
        assert_eq!(Euclidean.distance(&A, &A), 0.0);
    }

    #[test]
    fn squared_euclidean_is_square_of_euclidean() {
        let d = Euclidean.distance(&A, &B);
        let d2 = SquaredEuclidean.distance(&A, &B);
        assert!((d * d - d2).abs() < 1e-9);
    }

    #[test]
    fn manhattan_basic() {
        assert_eq!(Manhattan.distance(&A, &B), 7.0);
    }

    #[test]
    fn chebyshev_basic() {
        assert_eq!(Chebyshev.distance(&A, &B), 4.0);
    }

    #[test]
    fn minkowski_p1_is_manhattan_p2_is_euclidean() {
        let m1 = Minkowski::new(1.0);
        let m2 = Minkowski::new(2.0);
        assert!((m1.distance(&A, &B) - Manhattan.distance(&A, &B)).abs() < 1e-9);
        assert!((m2.distance(&A, &B) - Euclidean.distance(&A, &B)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "Minkowski order")]
    fn minkowski_rejects_p_below_one() {
        let _ = Minkowski::new(0.5);
    }

    #[test]
    fn cosine_parallel_and_orthogonal() {
        assert!(Cosine.distance(&[1.0, 0.0], &[2.0, 0.0]).abs() < 1e-12);
        assert!((Cosine.distance(&[1.0, 0.0], &[0.0, 3.0]) - 1.0).abs() < 1e-12);
        assert!((Cosine.distance(&[1.0, 0.0], &[-1.0, 0.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_zero_vectors() {
        assert_eq!(Cosine.distance(&[0.0, 0.0], &[0.0, 0.0]), 0.0);
        assert_eq!(Cosine.distance(&[0.0, 0.0], &[1.0, 1.0]), 1.0);
    }

    #[test]
    fn diagonal_mahalanobis_identity_matches_euclidean() {
        let m = DiagonalMahalanobis::identity(3);
        assert!((m.distance(&A, &B) - Euclidean.distance(&A, &B)).abs() < 1e-12);
    }

    #[test]
    fn diagonal_mahalanobis_weights_scale_dimensions() {
        let m = DiagonalMahalanobis::new(vec![4.0, 0.0]);
        // only first dimension counts, scaled by 4 => distance = 2*|dx|
        assert!((m.distance(&[0.0, 5.0], &[3.0, 100.0]) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn diagonal_mahalanobis_log_det() {
        let m = DiagonalMahalanobis::new(vec![1.0, std::f64::consts::E]);
        assert!((m.log_det() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn diagonal_mahalanobis_rejects_negative_weights() {
        let _ = DiagonalMahalanobis::new(vec![1.0, -0.5]);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn pairwise_matrix_is_symmetric_with_zero_diagonal() {
        let data = DataMatrix::from_rows(&[vec![0.0, 0.0], vec![3.0, 4.0], vec![6.0, 8.0]]);
        let d = pairwise_matrix(&data, &Euclidean);
        assert_eq!(d.len(), 3);
        for i in 0..3 {
            assert_eq!(d[i][i], 0.0);
            for j in 0..3 {
                assert!((d[i][j] - d[j][i]).abs() < 1e-12);
            }
        }
        assert!((d[0][1] - 5.0).abs() < 1e-12);
        assert!((d[0][2] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn metric_names_are_stable() {
        assert_eq!(Euclidean.name(), "euclidean");
        assert_eq!(SquaredEuclidean.name(), "squared_euclidean");
        assert_eq!(Manhattan.name(), "manhattan");
        assert_eq!(Chebyshev.name(), "chebyshev");
        assert_eq!(Cosine.name(), "cosine");
        assert_eq!(
            DiagonalMahalanobis::identity(1).name(),
            "diagonal_mahalanobis"
        );
    }
}
