//! A minimal, dependency-free drop-in for the subset of the `proptest` API
//! used by this workspace's property tests.
//!
//! The container building this workspace has no network access to
//! crates.io, so the real `proptest` crate cannot be fetched.  This shim
//! keeps the property-test sources unchanged: strategies are plain
//! samplers over the workspace's own [`SeededRng`], the `proptest!` macro
//! runs a fixed number of random cases per test (default 48, override with
//! `PROPTEST_CASES`), `prop_assume!` rejects a case, and `prop_assert*!`
//! panic with the case's values Debug-printed by the caller.
//!
//! No shrinking is performed — on failure you get the raw failing case.

#![forbid(unsafe_code)]

use cvcp_data::rng::SeededRng;
use std::ops::Range;

/// Why a generated case did not count.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!`.
    Reject,
}

/// A value generator.  The shim's strategies sample directly — there is no
/// shrink tree.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut SeededRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from the strategy `f` builds from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn sample(&self, rng: &mut SeededRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut SeededRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn sample(&self, rng: &mut SeededRng) -> usize {
        assert!(self.start < self.end, "empty usize strategy range");
        self.start + rng.index(self.end - self.start)
    }
}

impl Strategy for Range<u64> {
    type Value = u64;

    fn sample(&self, rng: &mut SeededRng) -> u64 {
        assert!(self.start < self.end, "empty u64 strategy range");
        self.start + rng.index((self.end - self.start) as usize) as u64
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut SeededRng) -> f64 {
        rng.uniform_in(self.start, self.end)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn sample(&self, rng: &mut SeededRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn sample(&self, rng: &mut SeededRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{SeededRng, Strategy};
    use std::ops::Range;

    /// Accepted size specifications for [`vec()`].
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// A strategy producing `Vec`s of `element` with a size drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut SeededRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo;
            let len = self.size.lo + if span > 1 { rng.index(span) } else { 0 };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use super::{SeededRng, Strategy};

    /// A strategy producing `None` about 20% of the time and `Some` of the
    /// inner strategy otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut SeededRng) -> Option<S::Value> {
            if rng.uniform() < 0.2 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// Number of accepted cases to run per property test.
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(48)
}

/// Drives one property test: keeps sampling until `cases()` cases were
/// accepted (or too many were rejected).  Deterministic per test name.
pub fn run_prop_test<F>(name: &str, mut case: F)
where
    F: FnMut(&mut SeededRng) -> Result<(), TestCaseError>,
{
    let mut seed = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut rng = SeededRng::new(seed);
    let want = cases();
    let mut accepted = 0usize;
    let mut attempts = 0usize;
    let max_attempts = want.saturating_mul(20).max(200);
    while accepted < want {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "property test '{name}' rejected too many cases ({accepted}/{want} accepted after {attempts} attempts)"
        );
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {}
        }
    }
}

/// Declares property tests, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_prop_test(stringify!($name), |prop_rng| {
                    $(let $pat = $crate::Strategy::sample(&($strategy), prop_rng);)+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )+
    };
}

/// Rejects the current case, mirroring `proptest::prop_assume!`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Asserts within a property, mirroring `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// The usual `use proptest::prelude::*;` imports.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_strategy_respects_size(v in crate::collection::vec(0usize..5, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn combinators_compose((n, v) in (1usize..5).prop_flat_map(|n| {
            (crate::collection::vec(0usize..9, n)).prop_map(move |v| (n, v))
        })) {
            prop_assert_eq!(v.len(), n);
        }
    }
}
