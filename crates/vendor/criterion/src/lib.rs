//! A minimal, dependency-free drop-in for the subset of the `criterion`
//! benchmark API used by `cvcp-bench`.
//!
//! The container building this workspace has no network access to
//! crates.io, so the real `criterion` crate cannot be fetched.  This shim
//! keeps the benchmark sources unchanged: it measures wall-clock time with
//! `std::time::Instant`, prints one line per benchmark
//! (`name  mean ± stddev over N samples`), and supports the
//! `criterion_group!` / `criterion_main!` entry points.
//!
//! It intentionally performs far fewer samples than real criterion — the
//! goal is regression *visibility*, not statistical rigor.  Set the
//! `CRITERION_SHIM_SAMPLES` environment variable to override the per-bench
//! sample count.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterised benchmark, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A benchmark id with a function name and a parameter display value.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        Self {
            name: format!("{function_name}/{parameter}"),
        }
    }

    /// A benchmark id carrying only the parameter display value.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        Self {
            name: format!("{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    n_samples: usize,
}

impl Bencher {
    fn new(n_samples: usize) -> Self {
        Self {
            samples: Vec::with_capacity(n_samples),
            n_samples,
        }
    }

    /// Times `n_samples` calls of `routine` (plus one untimed warm-up call).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.n_samples {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<56} (no samples)");
        return;
    }
    let secs: Vec<f64> = samples.iter().map(|d| d.as_secs_f64()).collect();
    let mean = secs.iter().sum::<f64>() / secs.len() as f64;
    let var = secs.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / secs.len() as f64;
    println!(
        "{name:<56} {:>12} ± {:>10} ({} samples)",
        format_time(mean),
        format_time(var.sqrt()),
        secs.len()
    );
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn default_samples() -> usize {
    std::env::var("CRITERION_SHIM_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3)
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: default_samples(),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.effective_samples());
        f(&mut b);
        report(name, &b.samples);
        self
    }

    /// Runs a parameterised benchmark.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.effective_samples());
        f(&mut b, input);
        report(&id.to_string(), &b.samples);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    fn effective_samples(&self) -> usize {
        // An explicit CRITERION_SHIM_SAMPLES wins over in-source sample_size
        // so CI can force ultra-quick runs.
        std::env::var("CRITERION_SHIM_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(self.sample_size)
            .min(self.sample_size.max(1))
    }
}

/// A named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.effective_samples());
        f(&mut b);
        report(&format!("{}/{}", self.name, name), &b.samples);
        self
    }

    /// Runs a parameterised benchmark within the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.effective_samples());
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b.samples);
        self
    }

    /// Closes the group (a no-op in the shim; kept for API parity).
    pub fn finish(self) {}

    fn effective_samples(&self) -> usize {
        std::env::var("CRITERION_SHIM_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(self.sample_size)
            .min(self.sample_size.max(1))
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher::new(4);
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(b.samples.len(), 4);
        assert_eq!(calls, 5); // 4 timed + 1 warm-up
    }

    #[test]
    fn benchmark_ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn time_formatting_covers_magnitudes() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" µs"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }
}
