//! Benchmarks of the CVCP framework itself: evaluating a single parameter by
//! cross-validation and running the full model selection sweep for both
//! algorithm families.

use criterion::{criterion_group, criterion_main, Criterion};
use cvcp_bench::{aloi_dataset, labels_for, rng};
use cvcp_core::{evaluate_parameter, select_model, CvcpConfig, FoscMethod, MpckMethod};

fn bench_cvcp(c: &mut Criterion) {
    let ds = aloi_dataset();
    let side = labels_for(&ds);
    let cfg = CvcpConfig {
        n_folds: 5,
        stratified: true,
    };

    let mut group = c.benchmark_group("cvcp/aloi_125x144");
    group.sample_size(10);
    group.bench_function("evaluate_one_minpts", |b| {
        b.iter(|| {
            evaluate_parameter(
                &FoscMethod::default(),
                ds.matrix(),
                &side,
                6,
                &cfg,
                &mut rng(),
            )
        })
    });
    group.bench_function("evaluate_one_k", |b| {
        b.iter(|| {
            evaluate_parameter(
                &MpckMethod::default(),
                ds.matrix(),
                &side,
                5,
                &cfg,
                &mut rng(),
            )
        })
    });
    group.bench_function("select_minpts_full_range", |b| {
        b.iter(|| {
            select_model(
                &FoscMethod::default(),
                ds.matrix(),
                &side,
                &[3, 6, 9, 12, 15, 18, 21, 24],
                &cfg,
                &mut rng(),
            )
        })
    });
    group.bench_function("select_k_full_range", |b| {
        b.iter(|| {
            select_model(
                &MpckMethod::default(),
                ds.matrix(),
                &side,
                &[2, 3, 4, 5, 6, 7, 8, 9, 10],
                &cfg,
                &mut rng(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cvcp);
criterion_main!(benches);
