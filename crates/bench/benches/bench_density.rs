//! Benchmarks of the density substrate: OPTICS, the mutual-reachability MST,
//! the dendrogram + condensed tree, and the full FOSC-OPTICSDend pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cvcp_bench::{aloi_dataset, pool_for};
use cvcp_data::distance::Euclidean;
use cvcp_density::condensed::CondensedTree;
use cvcp_density::dendrogram::Dendrogram;
use cvcp_density::mst::mutual_reachability_mst;
use cvcp_density::optics::OpticsOrdering;
use cvcp_density::FoscOpticsDend;

fn bench_density_pipeline(c: &mut Criterion) {
    let ds = aloi_dataset();
    let pool = pool_for(&ds);

    let mut group = c.benchmark_group("density/aloi_125x144");
    group.sample_size(20);
    group.bench_function("optics_minpts5", |b| {
        b.iter(|| OpticsOrdering::run(ds.matrix(), &Euclidean, 5))
    });
    group.bench_function("mutual_reachability_mst_minpts5", |b| {
        b.iter(|| mutual_reachability_mst(ds.matrix(), &Euclidean, 5))
    });
    group.bench_function("dendrogram_plus_condensed_minpts5", |b| {
        let mst = mutual_reachability_mst(ds.matrix(), &Euclidean, 5);
        b.iter(|| {
            let dend = Dendrogram::from_mst(ds.len(), &mst);
            CondensedTree::build(&dend, 5)
        })
    });
    group.bench_function("fosc_optics_dend_unsupervised", |b| {
        b.iter(|| {
            FoscOpticsDend::new(5).fit(ds.matrix(), &cvcp_constraints::ConstraintSet::new(ds.len()))
        })
    });
    group.bench_function("fosc_optics_dend_constrained", |b| {
        b.iter(|| FoscOpticsDend::new(5).fit(ds.matrix(), &pool))
    });
    group.finish();

    let mut sweep = c.benchmark_group("density/minpts_sweep");
    sweep.sample_size(15);
    for min_pts in [3usize, 9, 24] {
        sweep.bench_with_input(BenchmarkId::from_parameter(min_pts), &min_pts, |b, &m| {
            b.iter(|| FoscOpticsDend::new(m).fit(ds.matrix(), &pool))
        });
    }
    sweep.finish();
}

criterion_group!(benches, bench_density_pipeline);
criterion_main!(benches);
