//! Engine benchmark: the CVCP (parameter × fold) evaluation grid, three
//! ways, on a synthetic ALOI-like replica:
//!
//! * **naive sequential** — the pre-engine code path: every grid cell
//!   recomputes its distance matrix and density hierarchy from scratch
//!   (`evaluate_parameter_on_folds` without a cache);
//! * **engine, 1 worker** — inline execution with the artifact cache: each
//!   per-`MinPts` hierarchy is built once and shared by all folds;
//! * **engine, 4 workers** — the same grid as a parallel job DAG.
//!
//! Explicit `engine/...` report lines print the wall-clock speedups and the
//! cache hit rate.  On a multi-core host the 4-worker line adds thread
//! parallelism on top of the cache win; on a single hardware thread it
//! degrades gracefully to the 1-worker figure.  Selections are asserted
//! bit-identical across engine thread counts on every measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use cvcp_bench::{aloi_dataset, bench_meta, labels_for, write_bench_json};
use cvcp_constraints::folds::label_scenario_folds;
use cvcp_constraints::SideInformation;
use cvcp_core::crossval::evaluate_parameter_on_folds;
use cvcp_core::experiment::{run_experiment_on, run_experiment_trialwise, ExperimentConfig};
use cvcp_core::json::{Json, ToJson};
use cvcp_core::{
    select_model_with, select_model_with_granularity, CvcpConfig, CvcpSelection, Engine,
    FoscMethod, Granularity, MpckMethod, SideInfoSpec,
};
use cvcp_data::rng::SeededRng;
use cvcp_data::Dataset;
use std::time::Instant;

/// Minimum cache hit rate the FOSC grid must sustain — a drop below this
/// means the hit/miss accounting or the artifact keying regressed (CI runs
/// this bench in smoke mode and fails on the assert).
const MIN_FOSC_HIT_RATE: f64 = 0.5;

/// Minimum cache hit rate for the MPCKMeans grid: the k-invariant seeding
/// artifacts must be shared across the parameter sweep (this was 0% before
/// MPCKMeans became cache-aware).
const MIN_MPCK_HIT_RATE: f64 = 0.3;

/// Minimum `speedup_4workers / speedup_1worker` ratio: 4 workers must not
/// be slower than 1 (the ISSUE 9 parallel-speedup gate).  The tolerance
/// below 1.0 absorbs shared-runner noise; on a single hardware thread the
/// 4-worker grid can at best tie the 1-worker grid, so the gate is really
/// "parallel lowering overhead stays within noise of inline execution".
const MIN_SPEEDUP_RATIO_4V1: f64 = 0.95;

const MINPTS_GRID: [usize; 8] = [3, 6, 9, 12, 15, 18, 21, 24];
const N_FOLDS: usize = 8;

fn fixture() -> (Dataset, SideInformation) {
    let ds = aloi_dataset();
    let side = labels_for(&ds);
    (ds, side)
}

/// The seed's sequential path: no artifact sharing of any kind.
fn naive_grid(ds: &Dataset, side: &SideInformation) -> Vec<f64> {
    let mut rng = SeededRng::new(1);
    let labeled = side.labels().expect("label scenario");
    let splits = label_scenario_folds(labeled, N_FOLDS, true, &mut rng);
    let method = FoscMethod::default();
    MINPTS_GRID
        .iter()
        .map(|&p| evaluate_parameter_on_folds(&method, ds.matrix(), &splits, p, &mut rng).score)
        .collect()
}

/// The engine path: cache-aware grid, inline (1 worker) or parallel DAG.
fn engine_grid(engine: &Engine, ds: &Dataset, side: &SideInformation) -> CvcpSelection {
    let cfg = CvcpConfig {
        n_folds: N_FOLDS,
        stratified: true,
    };
    select_model_with(
        engine,
        &FoscMethod::default(),
        ds.matrix(),
        &side.clone(),
        &MINPTS_GRID,
        &cfg,
        &mut SeededRng::new(1),
    )
}

/// The engine path with the grid-lowering granularity pinned, for the
/// fused-vs-per-fold comparison.
fn engine_grid_with(
    engine: &Engine,
    ds: &Dataset,
    side: &SideInformation,
    granularity: Granularity,
) -> CvcpSelection {
    let cfg = CvcpConfig {
        n_folds: N_FOLDS,
        stratified: true,
    };
    select_model_with_granularity(
        engine,
        &FoscMethod::default(),
        ds.matrix(),
        &side.clone(),
        &MINPTS_GRID,
        &cfg,
        &mut SeededRng::new(1),
        granularity,
    )
}

fn bench_engine(c: &mut Criterion) {
    let (ds, side) = fixture();

    let mut group = c.benchmark_group("engine/grid");
    group.sample_size(3);
    group.bench_function("fosc_grid_naive_sequential", |b| {
        b.iter(|| naive_grid(&ds, &side))
    });
    group.bench_function("fosc_grid_engine_1worker", |b| {
        b.iter(|| engine_grid(&Engine::new(1), &ds, &side))
    });
    group.bench_function("fosc_grid_engine_4workers", |b| {
        b.iter(|| engine_grid(&Engine::new(4), &ds, &side))
    });
    group.finish();

    // Explicit speedup / hit-rate report (best of 3 cold runs each).
    fn best_of(mut f: impl FnMut() -> f64) -> f64 {
        (0..3).map(|_| f()).fold(f64::INFINITY, f64::min)
    }
    let naive = best_of(|| {
        let start = Instant::now();
        let _ = naive_grid(&ds, &side);
        start.elapsed().as_secs_f64()
    });
    let reference = engine_grid(&Engine::new(1), &ds, &side);
    // Interleave the 1- and 4-worker measurements round-robin with
    // alternating order (plus one untimed warm-up pass each) so clock,
    // cache, and allocator drift on the host hits both configurations
    // equally instead of biasing the speedup ratio; best-of-6 cold runs
    // per configuration.
    const GRID_ROUNDS: usize = 6;
    let mut hit_rate = 0.0;
    let mut engine1 = f64::INFINITY;
    let mut engine4 = f64::INFINITY;
    let mut time_1worker = |secs: &mut f64| {
        let engine = Engine::new(1);
        let start = Instant::now();
        let sel = engine_grid(&engine, &ds, &side);
        *secs = secs.min(start.elapsed().as_secs_f64());
        assert_eq!(sel, reference, "1-worker run diverged");
        hit_rate = engine.cache().stats().hit_rate();
    };
    let time_4workers = |secs: &mut f64| {
        let engine = Engine::new(4);
        let start = Instant::now();
        let sel = engine_grid(&engine, &ds, &side);
        *secs = secs.min(start.elapsed().as_secs_f64());
        assert_eq!(sel, reference, "4-worker run diverged from sequential");
    };
    time_1worker(&mut engine1);
    time_4workers(&mut engine4);
    engine1 = f64::INFINITY;
    engine4 = f64::INFINITY;
    for round in 0..GRID_ROUNDS {
        if round % 2 == 0 {
            time_4workers(&mut engine4);
            time_1worker(&mut engine1);
        } else {
            time_1worker(&mut engine1);
            time_4workers(&mut engine4);
        }
    }
    let speedup_ratio_4v1 = (naive / engine4) / (naive / engine1);
    println!(
        "engine/fosc_grid: naive sequential {:.1} ms | engine 1 worker {:.1} ms ({:.2}x) | \
         engine 4 workers {:.1} ms ({:.2}x) | 4v1 ratio {:.2} | cache hit rate {:.1}%",
        naive * 1e3,
        engine1 * 1e3,
        naive / engine1,
        engine4 * 1e3,
        naive / engine4,
        speedup_ratio_4v1,
        hit_rate * 100.0
    );
    assert!(
        speedup_ratio_4v1 >= MIN_SPEEDUP_RATIO_4V1,
        "4 workers regressed vs 1 worker: speedup ratio {speedup_ratio_4v1:.3} < \
         {MIN_SPEEDUP_RATIO_4V1} (1 worker {:.1} ms, 4 workers {:.1} ms)",
        engine1 * 1e3,
        engine4 * 1e3,
    );

    // Fused vs per-fold lowering of the same grid on 4 workers: the fused
    // chunk jobs amortize per-job overhead (the Auto cost model picks the
    // winner at run time); results must be bit-identical.
    let per_fold_secs = best_of(|| {
        let engine = Engine::new(4);
        let start = Instant::now();
        let sel = engine_grid_with(&engine, &ds, &side, Granularity::PerFold);
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(sel, reference, "per-fold lowering diverged");
        secs
    });
    let fused_secs = best_of(|| {
        let engine = Engine::new(4);
        let start = Instant::now();
        let sel = engine_grid_with(&engine, &ds, &side, Granularity::Fused);
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(sel, reference, "fused lowering diverged");
        secs
    });
    println!(
        "engine/fosc_grid granularity (4 workers): per-fold {:.1} ms | fused {:.1} ms ({:.2}x)",
        per_fold_secs * 1e3,
        fused_secs * 1e3,
        per_fold_secs / fused_secs,
    );

    // Warm-cache behaviour: a second identical request on a live engine is
    // answered almost entirely from the cache.
    let engine = Engine::new(4);
    let cold = {
        let start = Instant::now();
        let sel = engine_grid(&engine, &ds, &side);
        (start.elapsed().as_secs_f64(), sel)
    };
    let warm = {
        let start = Instant::now();
        let sel = engine_grid(&engine, &ds, &side);
        (start.elapsed().as_secs_f64(), sel)
    };
    assert_eq!(cold.1, warm.1);
    println!(
        "engine/fosc_grid warm cache: cold {:.1} ms | warm {:.1} ms ({:.2}x) | hit rate {:.1}%",
        cold.0 * 1e3,
        warm.0 * 1e3,
        cold.0 / warm.0,
        engine.cache().stats().hit_rate() * 100.0
    );
    assert!(
        hit_rate >= MIN_FOSC_HIT_RATE,
        "FOSC cache hit rate regressed: {:.1}% < {:.1}%",
        hit_rate * 100.0,
        MIN_FOSC_HIT_RATE * 100.0
    );

    // MPCKMeans grid: the k-invariant seeding artifacts (transitive closure
    // + must-link neighbourhood centroids) are shared across the whole
    // parameter sweep of each fold — before MPCKMeans became cache-aware
    // this hit rate was exactly 0%.
    let mpck_engine = Engine::new(4);
    let cfg = CvcpConfig {
        n_folds: N_FOLDS,
        stratified: true,
    };
    let k_grid: Vec<usize> = (2..=10).collect();
    let start = Instant::now();
    let mpck_sel = select_model_with(
        &mpck_engine,
        &MpckMethod::default(),
        ds.matrix(),
        &side,
        &k_grid,
        &cfg,
        &mut SeededRng::new(1),
    );
    let mpck_secs = start.elapsed().as_secs_f64();
    let mpck_seq = select_model_with(
        &Engine::new(1),
        &MpckMethod::default(),
        ds.matrix(),
        &side,
        &k_grid,
        &cfg,
        &mut SeededRng::new(1),
    );
    assert_eq!(
        mpck_sel, mpck_seq,
        "MPCK engine run diverged from sequential"
    );
    let mpck_stats = mpck_engine.cache().stats();
    println!(
        "engine/mpck_grid: {:.1} ms | selected k={} | cache hit rate {:.1}% \
         ({} hits / {} misses, {} resident artifacts)",
        mpck_secs * 1e3,
        mpck_sel.best_param,
        mpck_stats.hit_rate() * 100.0,
        mpck_stats.hits,
        mpck_stats.misses,
        mpck_stats.resident_entries,
    );
    assert!(
        mpck_stats.hits > 0,
        "MPCKMeans must reuse cached seeding artifacts (hit rate was 0%)"
    );
    assert!(
        mpck_stats.hit_rate() >= MIN_MPCK_HIT_RATE,
        "MPCK cache hit rate regressed: {:.1}% < {:.1}%",
        mpck_stats.hit_rate() * 100.0,
        MIN_MPCK_HIT_RATE * 100.0
    );

    // Few-trial experiment: with fewer trials than workers, the old
    // trial-only lowering (one inline job per trial) leaves (parameter ×
    // fold) parallelism on the table; the unified plan fans the full
    // (trial × parameter × fold) grid into one graph.  Results must be
    // bit-identical; the wall-clock comparison is the point of the
    // refactor (on a single hardware thread both collapse to the same
    // inline work and the ratio approaches 1×).
    let exp_config = ExperimentConfig {
        n_trials: 2,
        cvcp: CvcpConfig {
            n_folds: N_FOLDS,
            stratified: true,
        },
        params: MINPTS_GRID.to_vec(),
        seed: 7,
        with_silhouette: false,
        n_threads: 4, // unused: engines are built explicitly below
    };
    let spec = SideInfoSpec::LabelFraction(0.2);
    // Interleave the two paths round-robin (rather than timing one in a
    // block and then the other) and alternate which goes first each round,
    // so slow clock / cache / allocator drift on the host hits both
    // equally; best-of-6 per path.
    const FEW_TRIAL_ROUNDS: usize = 6;
    let mut trialwise_outcomes = None;
    let mut unified_outcomes = None;
    let mut trialwise_secs = f64::INFINITY;
    let mut unified_secs = f64::INFINITY;
    let time_trialwise = |outcomes: &mut Option<Vec<_>>, secs: &mut f64| {
        let engine = Engine::new(4);
        let start = Instant::now();
        let run = run_experiment_trialwise(&engine, &FoscMethod::default(), &ds, spec, &exp_config);
        *secs = secs.min(start.elapsed().as_secs_f64());
        *outcomes = Some(run);
    };
    let time_unified = |outcomes: &mut Option<Vec<_>>, secs: &mut f64| {
        let engine = Engine::new(4);
        let start = Instant::now();
        let run = run_experiment_on(&engine, &FoscMethod::default(), &ds, spec, &exp_config);
        *secs = secs.min(start.elapsed().as_secs_f64());
        *outcomes = Some(run);
    };
    // One untimed pass of each path first: the very first execution runs
    // with cold i-cache and (on burst-clocked hosts) at a different
    // frequency than the steady state the rest of the loop sees.
    time_trialwise(&mut trialwise_outcomes, &mut trialwise_secs);
    time_unified(&mut unified_outcomes, &mut unified_secs);
    trialwise_secs = f64::INFINITY;
    unified_secs = f64::INFINITY;
    for round in 0..FEW_TRIAL_ROUNDS {
        if round % 2 == 0 {
            time_unified(&mut unified_outcomes, &mut unified_secs);
            time_trialwise(&mut trialwise_outcomes, &mut trialwise_secs);
        } else {
            time_trialwise(&mut trialwise_outcomes, &mut trialwise_secs);
            time_unified(&mut unified_outcomes, &mut unified_secs);
        }
    }
    assert_eq!(
        unified_outcomes, trialwise_outcomes,
        "the unified full-grid plan must reproduce the trial-only path bit-for-bit"
    );
    println!(
        "engine/few_trial_experiment (2 trials × {} params × {} folds, 4 workers): \
         trial-only {:.1} ms | unified full-grid plan {:.1} ms ({:.2}x)",
        MINPTS_GRID.len(),
        N_FOLDS,
        trialwise_secs * 1e3,
        unified_secs * 1e3,
        trialwise_secs / unified_secs,
    );

    // Sanity: the naive path and the engine agree on the internal scores
    // (FOSC is rng-free, so fold scores are comparable across paths).
    let naive_scores = naive_grid(&ds, &side);
    assert_eq!(naive_scores.len(), reference.scores().len());

    // Always-on metrics overhead: the same 4-worker FOSC grid on a normal
    // engine vs. one with the metrics sink compiled out of the hot path
    // (`Engine::with_metrics_disabled`).  Best-of-5 cold runs each; the
    // overhead budget is 2% of grid wall time — beyond that the always-on
    // counters are no longer "free" and the gate fails.
    const METRICS_OVERHEAD_RUNS: usize = 5;
    const MAX_METRICS_OVERHEAD: f64 = 0.02;
    fn best_of_n(n: usize, mut f: impl FnMut() -> f64) -> f64 {
        (0..n).map(|_| f()).fold(f64::INFINITY, f64::min)
    }
    let with_metrics = best_of_n(METRICS_OVERHEAD_RUNS, || {
        let engine = Engine::new(4);
        let start = Instant::now();
        let sel = engine_grid(&engine, &ds, &side);
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(sel, reference, "metered run diverged");
        secs
    });
    let without_metrics = best_of_n(METRICS_OVERHEAD_RUNS, || {
        let engine = Engine::with_metrics_disabled(4);
        let start = Instant::now();
        let sel = engine_grid(&engine, &ds, &side);
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(sel, reference, "metrics-disabled run diverged");
        secs
    });
    let metrics_overhead = with_metrics / without_metrics - 1.0;
    println!(
        "engine/metrics_overhead: enabled {:.2} ms | disabled {:.2} ms | overhead {:+.2}% \
         (gate {:.0}%)",
        with_metrics * 1e3,
        without_metrics * 1e3,
        metrics_overhead * 100.0,
        MAX_METRICS_OVERHEAD * 100.0,
    );
    assert!(
        metrics_overhead <= MAX_METRICS_OVERHEAD,
        "always-on metrics cost {:.2}% of fosc_grid wall time (budget {:.0}%)",
        metrics_overhead * 100.0,
        MAX_METRICS_OVERHEAD * 100.0,
    );

    // Machine-readable summary for the CI perf-trajectory artifact.
    write_bench_json(
        "bench_engine",
        &Json::obj([
            (
                "meta",
                bench_meta(&[
                    ("best_of_cold_runs", 3),
                    ("metrics_overhead_runs", METRICS_OVERHEAD_RUNS),
                ]),
            ),
            (
                "fosc_grid",
                Json::obj([
                    ("naive_sequential_ms", (naive * 1e3).to_json()),
                    ("engine_1worker_ms", (engine1 * 1e3).to_json()),
                    ("engine_4workers_ms", (engine4 * 1e3).to_json()),
                    ("speedup_1worker", (naive / engine1).to_json()),
                    ("speedup_4workers", (naive / engine4).to_json()),
                    ("speedup_ratio_4v1", speedup_ratio_4v1.to_json()),
                    ("min_speedup_ratio_gate", MIN_SPEEDUP_RATIO_4V1.to_json()),
                    ("cache_hit_rate", hit_rate.to_json()),
                    ("min_hit_rate_gate", MIN_FOSC_HIT_RATE.to_json()),
                ]),
            ),
            (
                "granularity",
                Json::obj([
                    ("per_fold_4workers_ms", (per_fold_secs * 1e3).to_json()),
                    ("fused_4workers_ms", (fused_secs * 1e3).to_json()),
                    ("fused_speedup", (per_fold_secs / fused_secs).to_json()),
                ]),
            ),
            (
                "warm_cache",
                Json::obj([
                    ("cold_ms", (cold.0 * 1e3).to_json()),
                    ("warm_ms", (warm.0 * 1e3).to_json()),
                    ("speedup", (cold.0 / warm.0).to_json()),
                ]),
            ),
            (
                "few_trial_experiment",
                Json::obj([
                    ("trialwise_ms", (trialwise_secs * 1e3).to_json()),
                    ("unified_plan_ms", (unified_secs * 1e3).to_json()),
                    ("speedup", (trialwise_secs / unified_secs).to_json()),
                    ("n_trials", 2usize.to_json()),
                    ("n_params", MINPTS_GRID.len().to_json()),
                    ("n_folds", N_FOLDS.to_json()),
                ]),
            ),
            (
                "metrics_overhead",
                Json::obj([
                    ("enabled_ms", (with_metrics * 1e3).to_json()),
                    ("disabled_ms", (without_metrics * 1e3).to_json()),
                    ("overhead_ratio", metrics_overhead.to_json()),
                    ("max_overhead_gate", MAX_METRICS_OVERHEAD.to_json()),
                ]),
            ),
            (
                "mpck_grid",
                Json::obj([
                    ("engine_ms", (mpck_secs * 1e3).to_json()),
                    ("selected_k", mpck_sel.best_param.to_json()),
                    ("cache_hit_rate", mpck_stats.hit_rate().to_json()),
                    ("cache_hits", mpck_stats.hits.to_json()),
                    ("cache_misses", mpck_stats.misses.to_json()),
                    ("resident_artifacts", mpck_stats.resident_entries.to_json()),
                    ("min_hit_rate_gate", MIN_MPCK_HIT_RATE.to_json()),
                ]),
            ),
        ]),
    );
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
