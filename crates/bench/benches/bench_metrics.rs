//! Benchmarks of the evaluation measures: the internal constraint
//! F-measure, the external Overall F-Measure, ARI and the Silhouette
//! coefficient.

use criterion::{criterion_group, criterion_main, Criterion};
use cvcp_bench::{blob_dataset, pool_for};
use cvcp_data::distance::Euclidean;
use cvcp_data::Partition;
use cvcp_metrics::{
    adjusted_rand_index, constraint_fmeasure, overall_fmeasure, silhouette_coefficient,
};

fn bench_metrics(c: &mut Criterion) {
    let ds = blob_dataset(50);
    let pool = pool_for(&ds);
    let partition = Partition::from_cluster_ids(ds.labels());

    let mut group = c.benchmark_group("metrics");
    group.bench_function("constraint_fmeasure", |b| {
        b.iter(|| constraint_fmeasure(&partition, &pool))
    });
    group.bench_function("overall_fmeasure", |b| {
        b.iter(|| overall_fmeasure(&partition, ds.labels()))
    });
    group.bench_function("adjusted_rand_index", |b| {
        b.iter(|| adjusted_rand_index(&partition, ds.labels()))
    });
    group.bench_function("silhouette_200_objects", |b| {
        b.iter(|| silhouette_coefficient(ds.matrix(), &partition, &Euclidean))
    });
    group.finish();
}

criterion_group!(benches, bench_metrics);
criterion_main!(benches);
