//! Ablation benchmarks for the design decisions called out in `DESIGN.md`:
//!
//! * closure-aware (Scenario II) vs. naive constraint fold splitting;
//! * stratified vs. random fold assignment (Scenario I);
//! * MPCKMeans with vs. without metric learning (PCKMeans) and with hard
//!   constraints (COP-KMeans);
//! * FOSC extraction with the semi-supervised vs. the stability objective.
//!
//! Besides timing, these pairs are the ones compared for *quality* in the
//! test-suite; the benchmark keeps their relative cost visible.

use criterion::{criterion_group, criterion_main, Criterion};
use cvcp_bench::{aloi_dataset, pool_for, rng, BENCH_SEED};
use cvcp_constraints::folds::label_scenario_folds;
use cvcp_constraints::folds::{constraint_scenario_folds, naive_constraint_folds};
use cvcp_constraints::generate::sample_labeled_subset;
use cvcp_data::rng::SeededRng;
use cvcp_density::fosc::{extract_clusters, ExtractionObjective};
use cvcp_density::mst::mutual_reachability_mst;
use cvcp_density::{CondensedTree, Dendrogram};
use cvcp_kmeans::{CopKMeans, MpckMeans};

fn bench_fold_ablation(c: &mut Criterion) {
    let ds = aloi_dataset();
    let pool = pool_for(&ds);
    let mut group = c.benchmark_group("ablations/fold_splitting");
    group.bench_function("closure_aware_scenario2", |b| {
        b.iter(|| constraint_scenario_folds(&pool, 5, &mut rng()))
    });
    group.bench_function("naive_constraint_split", |b| {
        b.iter(|| naive_constraint_folds(&pool, 5, &mut rng()))
    });

    let mut srng = SeededRng::new(BENCH_SEED);
    let labeled = sample_labeled_subset(ds.labels(), 0.2, 2, &mut srng);
    group.bench_function("stratified_label_folds", |b| {
        b.iter(|| label_scenario_folds(&labeled, 5, true, &mut rng()))
    });
    group.bench_function("random_label_folds", |b| {
        b.iter(|| label_scenario_folds(&labeled, 5, false, &mut rng()))
    });
    group.finish();
}

fn bench_kmeans_ablation(c: &mut Criterion) {
    let ds = aloi_dataset();
    let pool = pool_for(&ds);
    let mut group = c.benchmark_group("ablations/kmeans_variants");
    group.sample_size(15);
    group.bench_function("mpck_with_metric_learning", |b| {
        b.iter(|| MpckMeans::new(5).fit(ds.matrix(), &pool, &mut rng()))
    });
    group.bench_function("mpck_without_metric_learning", |b| {
        b.iter(|| {
            MpckMeans::new(5)
                .with_metric_learning(false)
                .fit(ds.matrix(), &pool, &mut rng())
        })
    });
    group.bench_function("cop_kmeans_hard_constraints", |b| {
        b.iter(|| CopKMeans::new(5).fit(ds.matrix(), &pool, &mut rng()))
    });
    group.finish();
}

fn bench_fosc_objective_ablation(c: &mut Criterion) {
    let ds = aloi_dataset();
    let pool = pool_for(&ds);
    let mst = mutual_reachability_mst(ds.matrix(), &cvcp_data::distance::Euclidean, 5);
    let dend = Dendrogram::from_mst(ds.len(), &mst);
    let tree = CondensedTree::build(&dend, 5);

    let mut group = c.benchmark_group("ablations/fosc_objective");
    group.bench_function("stability_objective", |b| {
        b.iter(|| extract_clusters(&tree, &ExtractionObjective::Stability))
    });
    group.bench_function("constraint_objective", |b| {
        let objective = ExtractionObjective::ConstraintSatisfaction {
            constraints: pool.clone(),
            stability_tiebreak: true,
        };
        b.iter(|| extract_clusters(&tree, &objective))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fold_ablation,
    bench_kmeans_ablation,
    bench_fosc_objective_ablation
);
criterion_main!(benches);
