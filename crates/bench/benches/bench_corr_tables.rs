//! Experiment-family benchmark: the cost of one cell of the correlation
//! tables (Tables 1–4) — a small repeated-trial experiment on one data set
//! whose per-trial correlations are averaged.

use criterion::{criterion_group, criterion_main, Criterion};
use cvcp_bench::blob_dataset;
use cvcp_core::experiment::{run_experiment, ExperimentConfig, SideInfoSpec};
use cvcp_core::{CvcpConfig, FoscMethod, MpckMethod};
use cvcp_metrics::stats::mean;

fn config(params: Vec<usize>) -> ExperimentConfig {
    ExperimentConfig {
        n_trials: 2,
        cvcp: CvcpConfig {
            n_folds: 3,
            stratified: true,
        },
        params,
        seed: 2,
        with_silhouette: false,
        n_threads: 1,
    }
}

fn bench_corr_tables(c: &mut Criterion) {
    let ds = blob_dataset(25);
    let mut group = c.benchmark_group("experiments/corr_tables");
    group.sample_size(10);

    group.bench_function("table1_cell_fosc_label10", |b| {
        let cfg = config(vec![3, 9, 15, 24]);
        b.iter(|| {
            let outcomes = run_experiment(
                &FoscMethod::default(),
                &ds,
                SideInfoSpec::LabelFraction(0.10),
                &cfg,
            );
            mean(&outcomes.iter().map(|o| o.correlation).collect::<Vec<_>>())
        })
    });
    group.bench_function("table2_cell_mpck_label10", |b| {
        let cfg = config(vec![2, 4, 6, 8]);
        b.iter(|| {
            let outcomes = run_experiment(
                &MpckMethod::default(),
                &ds,
                SideInfoSpec::LabelFraction(0.10),
                &cfg,
            );
            mean(&outcomes.iter().map(|o| o.correlation).collect::<Vec<_>>())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_corr_tables);
criterion_main!(benches);
