//! Experiment-family benchmark: the cost of generating one parameter-vs-
//! quality curve (Figures 5–8) — a single CVCP trial including the internal
//! cross-validation sweep and the external per-parameter evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use cvcp_bench::aloi_dataset;
use cvcp_core::experiment::{run_trial, ExperimentConfig, SideInfoSpec};
use cvcp_core::{CvcpConfig, FoscMethod, MpckMethod};

fn config(params: Vec<usize>) -> ExperimentConfig {
    ExperimentConfig {
        n_trials: 1,
        cvcp: CvcpConfig {
            n_folds: 3,
            stratified: true,
        },
        params,
        seed: 1,
        with_silhouette: false,
        n_threads: 1,
    }
}

fn bench_fig_curves(c: &mut Criterion) {
    let ds = aloi_dataset();
    let mut group = c.benchmark_group("experiments/fig_curves");
    group.sample_size(10);

    group.bench_function("fig05_fosc_label_curve_trial", |b| {
        let cfg = config(vec![3, 9, 15, 24]);
        b.iter(|| {
            run_trial(
                &FoscMethod::default(),
                &ds,
                SideInfoSpec::LabelFraction(0.10),
                &cfg,
                &cfg.params,
                0,
            )
        })
    });
    group.bench_function("fig06_mpck_label_curve_trial", |b| {
        let cfg = config(vec![2, 4, 6, 8]);
        b.iter(|| {
            run_trial(
                &MpckMethod::default(),
                &ds,
                SideInfoSpec::LabelFraction(0.10),
                &cfg,
                &cfg.params,
                0,
            )
        })
    });
    group.bench_function("fig07_fosc_constraint_curve_trial", |b| {
        let cfg = config(vec![3, 9, 15, 24]);
        b.iter(|| {
            run_trial(
                &FoscMethod::default(),
                &ds,
                SideInfoSpec::ConstraintSample {
                    pool_fraction: 0.10,
                    sample_fraction: 0.10,
                },
                &cfg,
                &cfg.params,
                0,
            )
        })
    });
    group.bench_function("fig08_mpck_constraint_curve_trial", |b| {
        let cfg = config(vec![2, 4, 6, 8]);
        b.iter(|| {
            run_trial(
                &MpckMethod::default(),
                &ds,
                SideInfoSpec::ConstraintSample {
                    pool_fraction: 0.10,
                    sample_fraction: 0.10,
                },
                &cfg,
                &cfg.params,
                0,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig_curves);
criterion_main!(benches);
