//! Benchmarks of the constraint substrate: transitive closure, constraint
//! generation from labels, and fold splitting for both scenarios.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cvcp_bench::{blob_dataset, pool_for, BENCH_SEED};
use cvcp_constraints::closure::transitive_closure;
use cvcp_constraints::folds::{constraint_scenario_folds, label_scenario_folds};
use cvcp_constraints::generate::{constraint_pool, sample_labeled_subset};
use cvcp_data::rng::SeededRng;

fn bench_transitive_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("constraints/transitive_closure");
    for &per_class in &[25usize, 50, 100] {
        let ds = blob_dataset(per_class);
        let pool = pool_for(&ds);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}_constraints", pool.len())),
            &pool,
            |b, pool| b.iter(|| transitive_closure(pool)),
        );
    }
    group.finish();
}

fn bench_constraint_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("constraints/generation");
    let ds = blob_dataset(50);
    group.bench_function("constraint_pool_10pct", |b| {
        b.iter(|| {
            let mut rng = SeededRng::new(BENCH_SEED);
            constraint_pool(ds.labels(), 0.10, 2, &mut rng)
        })
    });
    group.bench_function("labels_to_constraints_20pct", |b| {
        b.iter(|| {
            let mut rng = SeededRng::new(BENCH_SEED);
            sample_labeled_subset(ds.labels(), 0.20, 2, &mut rng).to_constraints()
        })
    });
    group.finish();
}

fn bench_fold_splitting(c: &mut Criterion) {
    let mut group = c.benchmark_group("constraints/folds");
    let ds = blob_dataset(50);
    let pool = pool_for(&ds);
    let mut rng = SeededRng::new(BENCH_SEED);
    let labeled = sample_labeled_subset(ds.labels(), 0.20, 2, &mut rng);
    group.bench_function("label_scenario_10fold", |b| {
        b.iter(|| {
            let mut rng = SeededRng::new(BENCH_SEED);
            label_scenario_folds(&labeled, 10, true, &mut rng)
        })
    });
    group.bench_function("constraint_scenario_10fold", |b| {
        b.iter(|| {
            let mut rng = SeededRng::new(BENCH_SEED);
            constraint_scenario_folds(&pool, 10, &mut rng)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_transitive_closure,
    bench_constraint_generation,
    bench_fold_splitting
);
criterion_main!(benches);
