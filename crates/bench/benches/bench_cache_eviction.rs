//! Cache-eviction benchmark: a full `run_experiment_on` grid (FOSC +
//! MPCKMeans over one ALOI-like replica) under three cache regimes:
//!
//! * **unbounded** — the baseline; also measures the full working set in
//!   resident artifact bytes;
//! * **bounded** — `max_bytes` set *below* the working set, so LRU eviction
//!   is under constant pressure;
//! * **entry-bounded** — `max_entries` small enough to force eviction by
//!   count;
//! * **sharded** — the same under-budget config split over 8 shards (one
//!   lock and one budget slice each), plus a cost-benefit-policy run: the
//!   sharded-contention section asserting that neither sharding nor the
//!   eviction policy can change selection results.
//!
//! Every measured run asserts the acceptance contract of the bounded cache:
//! results are **bit-identical** to the unbounded run, the peak resident
//! bytes never exceed the budget, the accounting never drifts from the live
//! map, and eviction actually happened (the budget was real).  CI runs this
//! bench in smoke mode so an accounting or eviction regression fails the
//! build.

use criterion::{criterion_group, criterion_main, Criterion};
use cvcp_bench::{aloi_dataset, bench_meta, write_bench_json};
use cvcp_core::experiment::{run_experiment_on, ExperimentConfig, SideInfoSpec, TrialOutcome};
use cvcp_core::json::{Json, ToJson};
use cvcp_core::{CvcpConfig, Engine, FoscMethod, MpckMethod};
use cvcp_engine::{AdmissionPolicy, CacheConfig, EvictionPolicy};
use std::time::Instant;

fn experiment_config() -> ExperimentConfig {
    ExperimentConfig {
        n_trials: 3,
        cvcp: CvcpConfig {
            n_folds: 4,
            stratified: true,
        },
        params: Vec::new(), // default ranges: MinPts 3..=24, k 2..=10
        seed: 0xE71C,
        with_silhouette: true,
        n_threads: 2, // unused by run_experiment_on (the engine decides)
    }
}

/// One full grid: both methods, both scenarios, multiplexed on `engine`.
fn run_grid(engine: &Engine) -> (Vec<TrialOutcome>, Vec<TrialOutcome>) {
    let ds = aloi_dataset();
    let cfg = experiment_config();
    let mpck = run_experiment_on(
        engine,
        &MpckMethod::default(),
        &ds,
        SideInfoSpec::LabelFraction(0.2),
        &cfg,
    );
    let fosc = run_experiment_on(
        engine,
        &FoscMethod::default(),
        &ds,
        SideInfoSpec::ConstraintSample {
            pool_fraction: 0.2,
            sample_fraction: 0.5,
        },
        &cfg,
    );
    (mpck, fosc)
}

fn bench_cache_eviction(c: &mut Criterion) {
    // Reference: unbounded cache — measures the working set.
    let unbounded = Engine::new(2);
    let start = Instant::now();
    let reference = run_grid(&unbounded);
    let unbounded_secs = start.elapsed().as_secs_f64();
    let full = unbounded.cache().stats();
    assert!(full.resident_bytes > 0, "grid must populate the cache");
    assert_eq!(full.evictions, 0, "unbounded cache must not evict");
    unbounded.cache().assert_accounting_consistent();

    // Bounded: a byte budget well below the working set.
    let budget = (full.resident_bytes / 4).max(1);
    let bounded = Engine::with_cache_config(2, CacheConfig::default().with_max_bytes(budget));
    let start = Instant::now();
    let bounded_results = run_grid(&bounded);
    let bounded_secs = start.elapsed().as_secs_f64();
    assert_eq!(
        reference, bounded_results,
        "bounded cache changed the selection results"
    );
    let stats = bounded.cache().stats();
    assert!(
        stats.peak_resident_bytes <= budget,
        "resident bytes peaked at {} over the {budget}-byte budget",
        stats.peak_resident_bytes
    );
    assert!(
        stats.evictions > 0,
        "a budget below the working set must force evictions"
    );
    bounded.cache().assert_accounting_consistent();

    // Entry-bounded: at most 4 resident artifacts at any time.
    let entry_bounded = Engine::with_cache_config(2, CacheConfig::default().with_max_entries(4));
    let entry_results = run_grid(&entry_bounded);
    assert_eq!(
        reference, entry_results,
        "entry-bounded cache changed the selection results"
    );
    let entry_stats = entry_bounded.cache().stats();
    assert!(entry_stats.resident_entries <= 4);
    assert!(entry_stats.evictions > 0);
    entry_bounded.cache().assert_accounting_consistent();

    // Sharded contention: the same under-budget byte config split over 8
    // shards.  Sharding only repartitions the store — selection results
    // must be bit-identical to the unsharded reference, every shard stays
    // within its (adaptively rebalanced) budget slice, and the live
    // aggregate stays within the global budget at every instant.
    let sharded = Engine::with_cache_config(
        2,
        CacheConfig::default().with_max_bytes(budget).with_shards(8),
    );
    let start = Instant::now();
    let sharded_results = run_grid(&sharded);
    let sharded_secs = start.elapsed().as_secs_f64();
    assert_eq!(
        reference, sharded_results,
        "sharded cache changed the selection results"
    );
    let sharded_stats = sharded.cache_stats();
    assert_eq!(sharded_stats.shards, 8);
    // Summed per-shard peaks are reached at different instants under
    // different slice assignments, so the budget bound that holds at every
    // instant is on the live resident total (and on the slice sum, checked
    // by `assert_accounting_consistent`), not on the peak sum.
    assert!(
        sharded_stats.resident_bytes <= budget,
        "sharded residents summed to {} over the {budget}-byte budget",
        sharded_stats.resident_bytes
    );
    sharded.cache().assert_accounting_consistent();
    let per_shard = sharded.cache_shard_stats();
    assert_eq!(per_shard.len(), 8);
    let touched_shards = per_shard.iter().filter(|s| s.hits + s.misses > 0).count();
    assert!(
        touched_shards >= 2,
        "the grid's keys must spread over several shards, touched {touched_shards}"
    );
    assert_eq!(
        per_shard.iter().map(|s| s.misses).sum::<u64>(),
        sharded_stats.misses,
        "aggregate stats must equal the per-shard sum"
    );
    // The adaptive rebalancer (on by default) must close the static-slice
    // starvation gap: the 8-shard bounded hit rate stays within 0.05 of
    // the unsharded bounded hit rate.  This is the regression this bench
    // exists to pin — with fixed even slices it collapsed to 0.37 vs 0.84.
    assert!(
        sharded_stats.rebalances > 0,
        "the default config must rebalance under this grid's cache traffic"
    );
    let hit_rate_ratio = sharded_stats.hit_rate() / stats.hit_rate().max(f64::EPSILON);
    assert!(
        sharded_stats.hit_rate() + 0.05 >= stats.hit_rate(),
        "sharded hit rate {:.3} fell more than 0.05 below bounded {:.3}",
        sharded_stats.hit_rate(),
        stats.hit_rate()
    );

    // Cost admission: artifacts cheaper to recompute than to store stay
    // out of the cache.  Residency choices change, results cannot.
    let admission = Engine::with_cache_config(
        2,
        CacheConfig::default()
            .with_max_bytes(budget)
            .with_shards(8)
            .with_admission(AdmissionPolicy::Cost),
    );
    assert_eq!(
        reference,
        run_grid(&admission),
        "cost admission changed the selection results"
    );
    let admission_stats = admission.cache_stats();
    admission.cache().assert_accounting_consistent();

    // Cost-benefit policy: victim choice may differ, values never do.
    let cost_engine = Engine::with_cache_config(
        2,
        CacheConfig::default()
            .with_max_bytes(budget)
            .with_policy(EvictionPolicy::CostBenefit),
    );
    assert_eq!(
        reference,
        run_grid(&cost_engine),
        "cost-benefit eviction changed the selection results"
    );
    cost_engine.cache().assert_accounting_consistent();

    println!(
        "engine/cache_eviction: working set {:.2} MiB | budget {:.2} MiB | \
         unbounded {:.1} ms (hit rate {:.1}%) | bounded {:.1} ms (hit rate {:.1}%, \
         {} evictions, {:.2} MiB released, peak {:.2} MiB) | sharded×8 {:.1} ms \
         (hit rate {:.1}%, {} evictions, {} shards touched)",
        full.resident_bytes as f64 / (1024.0 * 1024.0),
        budget as f64 / (1024.0 * 1024.0),
        unbounded_secs * 1e3,
        full.hit_rate() * 100.0,
        bounded_secs * 1e3,
        stats.hit_rate() * 100.0,
        stats.evictions,
        stats.evicted_bytes as f64 / (1024.0 * 1024.0),
        stats.peak_resident_bytes as f64 / (1024.0 * 1024.0),
        sharded_secs * 1e3,
        sharded_stats.hit_rate() * 100.0,
        sharded_stats.evictions,
        touched_shards,
    );
    println!(
        "engine/cache_eviction: sharded/bounded hit-rate ratio {:.3} \
         ({} rebalance(s)) | cost admission hit rate {:.1}% \
         ({} rejection(s))",
        hit_rate_ratio,
        sharded_stats.rebalances,
        admission_stats.hit_rate() * 100.0,
        admission_stats.admission_rejections,
    );

    // Machine-readable summary for the CI perf-trajectory artifact.
    write_bench_json(
        "bench_cache_eviction",
        &Json::obj([
            (
                "meta",
                bench_meta(&[
                    ("n_trials", experiment_config().n_trials),
                    ("n_folds", experiment_config().cvcp.n_folds),
                ]),
            ),
            ("working_set_bytes", full.resident_bytes.to_json()),
            ("budget_bytes", budget.to_json()),
            ("unbounded_ms", (unbounded_secs * 1e3).to_json()),
            ("unbounded_hit_rate", full.hit_rate().to_json()),
            ("bounded_ms", (bounded_secs * 1e3).to_json()),
            ("bounded_hit_rate", stats.hit_rate().to_json()),
            ("bounded_evictions", stats.evictions.to_json()),
            ("bounded_evicted_bytes", stats.evicted_bytes.to_json()),
            ("bounded_peak_bytes", stats.peak_resident_bytes.to_json()),
            ("entry_bounded_evictions", entry_stats.evictions.to_json()),
            ("sharded_shards", sharded_stats.shards.to_json()),
            ("sharded_ms", (sharded_secs * 1e3).to_json()),
            ("sharded_hit_rate", sharded_stats.hit_rate().to_json()),
            ("sharded_evictions", sharded_stats.evictions.to_json()),
            (
                "sharded_peak_bytes",
                sharded_stats.peak_resident_bytes.to_json(),
            ),
            ("sharded_touched_shards", touched_shards.to_json()),
            ("sharded_rebalances", sharded_stats.rebalances.to_json()),
            (
                "hit_rate_ratio_sharded_vs_bounded",
                hit_rate_ratio.to_json(),
            ),
            ("admission_hit_rate", admission_stats.hit_rate().to_json()),
            (
                "admission_rejections",
                admission_stats.admission_rejections.to_json(),
            ),
            ("results_bit_identical_under_budget", true.to_json()),
            ("results_bit_identical_under_sharding", true.to_json()),
            ("results_bit_identical_under_cost_policy", true.to_json()),
            ("results_bit_identical_under_admission", true.to_json()),
        ]),
    );

    let mut group = c.benchmark_group("engine/cache_eviction");
    group.sample_size(2);
    group.bench_function("grid_unbounded", |b| b.iter(|| run_grid(&Engine::new(2))));
    group.bench_function("grid_bounded_quarter", |b| {
        b.iter(|| {
            run_grid(&Engine::with_cache_config(
                2,
                CacheConfig::default().with_max_bytes(budget),
            ))
        })
    });
    group.bench_function("grid_bounded_quarter_8shards", |b| {
        b.iter(|| {
            run_grid(&Engine::with_cache_config(
                2,
                CacheConfig::default().with_max_bytes(budget).with_shards(8),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cache_eviction);
criterion_main!(benches);
