//! Experiment-family benchmark: the cost of one cell of the performance
//! tables (Tables 5–16) — a repeated-trial experiment plus summary with
//! significance testing.

use criterion::{criterion_group, criterion_main, Criterion};
use cvcp_bench::blob_dataset;
use cvcp_core::experiment::{run_experiment, summarize, ExperimentConfig, SideInfoSpec};
use cvcp_core::{CvcpConfig, FoscMethod, MpckMethod};

fn config(params: Vec<usize>, with_silhouette: bool) -> ExperimentConfig {
    ExperimentConfig {
        n_trials: 2,
        cvcp: CvcpConfig {
            n_folds: 3,
            stratified: true,
        },
        params,
        seed: 3,
        with_silhouette,
        n_threads: 1,
    }
}

fn bench_perf_tables(c: &mut Criterion) {
    let ds = blob_dataset(25);
    let mut group = c.benchmark_group("experiments/perf_tables");
    group.sample_size(10);

    group.bench_function("table5_cell_fosc_label5", |b| {
        let cfg = config(vec![3, 9, 15, 24], false);
        let spec = SideInfoSpec::LabelFraction(0.05);
        b.iter(|| {
            let outcomes = run_experiment(&FoscMethod::default(), &ds, spec, &cfg);
            summarize(ds.name(), "FOSC-OPTICSDend", spec, &outcomes)
        })
    });
    group.bench_function("table8_cell_mpck_label5_with_silhouette", |b| {
        let cfg = config(vec![2, 4, 6, 8], true);
        let spec = SideInfoSpec::LabelFraction(0.05);
        b.iter(|| {
            let outcomes = run_experiment(&MpckMethod::default(), &ds, spec, &cfg);
            summarize(ds.name(), "MPCKMeans", spec, &outcomes)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_perf_tables);
criterion_main!(benches);
