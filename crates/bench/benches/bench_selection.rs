//! Experiment-family benchmark: the selection runs behind the ALOI-collection
//! box plots (Figures 9–12) — CVCP selection plus the Silhouette baseline on
//! one ALOI-like data set.

use criterion::{criterion_group, criterion_main, Criterion};
use cvcp_bench::{aloi_dataset, labels_for, rng};
use cvcp_core::{select_model, silhouette_selection, CvcpConfig, FoscMethod, MpckMethod};

fn bench_selection(c: &mut Criterion) {
    let ds = aloi_dataset();
    let side = labels_for(&ds);
    let cfg = CvcpConfig {
        n_folds: 3,
        stratified: true,
    };

    let mut group = c.benchmark_group("experiments/selection");
    group.sample_size(10);
    group.bench_function("cvcp_select_minpts_fig9", |b| {
        b.iter(|| {
            select_model(
                &FoscMethod::default(),
                ds.matrix(),
                &side,
                &[3, 9, 15, 24],
                &cfg,
                &mut rng(),
            )
        })
    });
    group.bench_function("cvcp_select_k_fig10", |b| {
        b.iter(|| {
            select_model(
                &MpckMethod::default(),
                ds.matrix(),
                &side,
                &[2, 4, 6, 8, 10],
                &cfg,
                &mut rng(),
            )
        })
    });
    group.bench_function("silhouette_select_k_fig10", |b| {
        b.iter(|| {
            silhouette_selection(
                &MpckMethod::default(),
                ds.matrix(),
                &side,
                &[2, 4, 6, 8, 10],
                &mut rng(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
