//! Benchmarks of the k-means family: plain Lloyd, PCKMeans and MPCKMeans on
//! the ALOI-like fixture (125 × 144, 5 classes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cvcp_bench::{aloi_dataset, pool_for, rng};
use cvcp_kmeans::{KMeans, MpckMeans, PckMeans};

fn bench_kmeans_family(c: &mut Criterion) {
    let ds = aloi_dataset();
    let pool = pool_for(&ds);

    let mut group = c.benchmark_group("kmeans/aloi_125x144");
    group.sample_size(20);
    group.bench_function("lloyd_k5", |b| {
        b.iter(|| KMeans::new(5).with_n_init(1).fit(ds.matrix(), &mut rng()))
    });
    group.bench_function("pck_k5", |b| {
        b.iter(|| PckMeans::new(5).fit(ds.matrix(), &pool, &mut rng()))
    });
    group.bench_function("mpck_k5", |b| {
        b.iter(|| MpckMeans::new(5).fit(ds.matrix(), &pool, &mut rng()))
    });
    group.finish();

    let mut sweep = c.benchmark_group("kmeans/mpck_k_sweep");
    sweep.sample_size(15);
    for k in [2usize, 5, 10] {
        sweep.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| MpckMeans::new(k).fit(ds.matrix(), &pool, &mut rng()))
        });
    }
    sweep.finish();
}

criterion_group!(benches, bench_kmeans_family);
criterion_main!(benches);
