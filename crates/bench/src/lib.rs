//! Shared fixtures for the Criterion benchmarks of the CVCP suite.
//!
//! Benchmarks cover two layers:
//!
//! * micro/meso benchmarks of the substrates (transitive closure, OPTICS,
//!   dendrogram + FOSC, MPCKMeans, evaluation metrics, the CVCP selection
//!   loop itself);
//! * one benchmark group per reproduced experiment family (curve figures,
//!   correlation tables, performance tables, box-plot selection runs) at a
//!   reduced scale, so that regressions in end-to-end experiment cost are
//!   visible;
//! * ablation benches for the design decisions called out in `DESIGN.md`
//!   (closure-aware vs. naive folds, metric learning on/off, semi-supervised
//!   vs. stability extraction, stratified vs. random folds).

use cvcp_constraints::generate::{constraint_pool, sample_labeled_subset};
use cvcp_constraints::{ConstraintSet, SideInformation};
use cvcp_data::rng::SeededRng;
use cvcp_data::Dataset;

/// Deterministic seed used by all benchmark fixtures.
pub const BENCH_SEED: u64 = 0xBE_AC4;

/// A small ALOI-like data set (125 × 144, 5 classes).
pub fn aloi_dataset() -> Dataset {
    cvcp_data::aloi::aloi_k5_dataset(BENCH_SEED, 0)
}

/// A medium synthetic data set (smaller dimensionality, more objects).
pub fn blob_dataset(n_per_class: usize) -> Dataset {
    let mut rng = SeededRng::new(BENCH_SEED);
    cvcp_data::synthetic::separated_blobs(4, n_per_class, 8, 10.0, &mut rng)
}

/// A constraint pool over a data set (all pairs among 10% of each class).
pub fn pool_for(dataset: &Dataset) -> ConstraintSet {
    let mut rng = SeededRng::new(BENCH_SEED + 1);
    constraint_pool(dataset.labels(), 0.10, 2, &mut rng)
}

/// Label-based side information over 10% of the objects.
pub fn labels_for(dataset: &Dataset) -> SideInformation {
    let mut rng = SeededRng::new(BENCH_SEED + 2);
    SideInformation::Labels(sample_labeled_subset(dataset.labels(), 0.10, 2, &mut rng))
}

/// A fresh RNG for a benchmark iteration.
pub fn rng() -> SeededRng {
    SeededRng::new(BENCH_SEED + 3)
}

/// The host's hardware thread count, read from `/proc/cpuinfo` where
/// available.  `std::thread::available_parallelism` answers a different
/// question — the parallelism *this process* may use — and reports 1
/// inside affinity masks / cgroup cpu quotas even on multi-core hosts,
/// which made bench artifacts from CI runners uninterpretable (a
/// "4-worker regression" on a 1-thread budget is expected, on a 16-core
/// host it is a bug).  Falls back to `available_parallelism` on
/// platforms without `/proc`.
fn host_threads() -> usize {
    let from_cpuinfo = std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .map(|info| {
            info.lines()
                .filter(|l| {
                    l.strip_prefix("processor")
                        .is_some_and(|rest| rest.trim_start().starts_with(':'))
                })
                .count()
        })
        .filter(|&n| n > 0);
    from_cpuinfo.unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// A `meta` block for bench JSON artifacts: the commit the numbers were
/// measured at (from `GITHUB_SHA` in CI, `git rev-parse HEAD` locally,
/// `"unknown"` without either), the host's hardware thread count
/// (`host_threads`) next to the parallelism actually available to the
/// bench process (`available_threads` — smaller under affinity masks or
/// cpu quotas), and the per-section iteration counts the bench used —
/// enough to interpret a perf-trajectory artifact without the CI log
/// that produced it.
pub fn bench_meta(iterations: &[(&str, usize)]) -> cvcp_core::json::Json {
    use cvcp_core::json::{Json, ToJson};
    // cvcp: allow(D3, reason = "CI-provided commit id for bench provenance, not a CVCP knob")
    let commit = std::env::var("GITHUB_SHA")
        .ok()
        .filter(|sha| !sha.trim().is_empty())
        .or_else(|| {
            std::process::Command::new("git")
                .args(["rev-parse", "HEAD"])
                .current_dir(env!("CARGO_MANIFEST_DIR"))
                .output()
                .ok()
                .filter(|out| out.status.success())
                .map(|out| String::from_utf8_lossy(&out.stdout).trim().to_string())
        })
        .filter(|sha| !sha.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    let available = std::thread::available_parallelism().map_or(1, |n| n.get());
    Json::obj([
        ("commit", commit.to_json()),
        ("host_threads", host_threads().to_json()),
        ("available_threads", available.to_json()),
        (
            "iterations",
            Json::Obj(
                iterations
                    .iter()
                    .map(|&(name, n)| (name.to_string(), n.to_json()))
                    .collect(),
            ),
        ),
    ])
}

/// Writes a benchmark's headline numbers as pretty JSON under the
/// workspace's `target/bench/`, so CI can upload the perf trajectory as a
/// per-commit artifact.  The path is anchored on this crate's manifest
/// directory, making it independent of the invoking working directory.
pub fn write_bench_json(name: &str, value: &cvcp_core::json::Json) {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("target")
        .join("bench");
    std::fs::create_dir_all(&dir).expect("create target/bench");
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, value.pretty()).expect("write bench json");
    println!("[bench json written to {}]", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_threads_counts_cpuinfo_processors() {
        let n = host_threads();
        assert!(n >= 1);
        if let Ok(info) = std::fs::read_to_string("/proc/cpuinfo") {
            let processors = info
                .lines()
                .filter(|l| {
                    l.strip_prefix("processor")
                        .is_some_and(|rest| rest.trim_start().starts_with(':'))
                })
                .count();
            if processors > 0 {
                assert_eq!(n, processors);
            }
        }
    }

    #[test]
    fn fixtures_have_expected_shapes() {
        assert_eq!(aloi_dataset().len(), 125);
        assert_eq!(blob_dataset(20).len(), 80);
        let ds = blob_dataset(20);
        assert!(!pool_for(&ds).is_empty());
        assert!(!labels_for(&ds).is_empty());
    }
}
