//! Minimum spanning tree of the mutual-reachability graph.
//!
//! The single-linkage hierarchy over mutual-reachability distances — the
//! density hierarchy behind OPTICSDend/HDBSCAN — is fully determined by the
//! MST of the complete mutual-reachability graph.  Prim's algorithm on the
//! dense matrix is `O(n²)`, which is appropriate for the data sizes of the
//! paper (≤ 351 objects per set).

/// An edge of the spanning tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// One endpoint.
    pub a: usize,
    /// The other endpoint.
    pub b: usize,
    /// Edge weight (mutual reachability distance).
    pub weight: f64,
}

/// Computes a minimum spanning tree of the complete graph given by the dense
/// symmetric weight matrix, using Prim's algorithm.  Returns `n − 1` edges
/// (an empty vector for `n ≤ 1`).
pub fn minimum_spanning_tree(weights: &[Vec<f64>]) -> Vec<Edge> {
    let n = weights.len();
    if n <= 1 {
        return Vec::new();
    }
    let mut in_tree = vec![false; n];
    let mut best_dist = vec![f64::INFINITY; n];
    let mut best_from = vec![0usize; n];
    let mut edges = Vec::with_capacity(n - 1);

    in_tree[0] = true;
    for j in 1..n {
        best_dist[j] = weights[0][j];
        best_from[j] = 0;
    }

    for _ in 1..n {
        // pick the closest vertex outside the tree
        let mut v = usize::MAX;
        let mut v_dist = f64::INFINITY;
        for j in 0..n {
            if !in_tree[j] && best_dist[j] < v_dist {
                v_dist = best_dist[j];
                v = j;
            }
        }
        // If the graph were disconnected (cannot happen for a distance
        // matrix), fall back to any remaining vertex.
        if v == usize::MAX {
            v = (0..n).find(|&j| !in_tree[j]).expect("vertex remains");
            v_dist = weights[best_from[v]][v];
        }
        in_tree[v] = true;
        edges.push(Edge {
            a: best_from[v],
            b: v,
            weight: v_dist,
        });
        for j in 0..n {
            if !in_tree[j] && weights[v][j] < best_dist[j] {
                best_dist[j] = weights[v][j];
                best_from[j] = v;
            }
        }
    }
    edges
}

/// Convenience: the MST of the mutual-reachability graph of `data`.
pub fn mutual_reachability_mst<D: cvcp_data::distance::Distance + ?Sized>(
    data: &cvcp_data::DataMatrix,
    metric: &D,
    min_pts: usize,
) -> Vec<Edge> {
    let mrd = crate::core_distance::mutual_reachability_matrix(data, metric, min_pts);
    minimum_spanning_tree(&mrd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvcp_data::distance::{pairwise_matrix, Euclidean};
    use cvcp_data::DataMatrix;

    #[test]
    fn mst_of_line_graph() {
        // 0 -1- 1 -1- 2 -8- 3 : MST total = 10
        let data = DataMatrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![10.0]]);
        let dist = pairwise_matrix(&data, &Euclidean);
        let mst = minimum_spanning_tree(&dist);
        assert_eq!(mst.len(), 3);
        let total: f64 = mst.iter().map(|e| e.weight).sum();
        assert!((total - 10.0).abs() < 1e-12);
    }

    #[test]
    fn mst_is_spanning_and_acyclic() {
        let data = DataMatrix::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![5.0, 5.0],
            vec![5.0, 6.0],
            vec![6.0, 5.0],
        ]);
        let dist = pairwise_matrix(&data, &Euclidean);
        let mst = minimum_spanning_tree(&dist);
        assert_eq!(mst.len(), 5);
        // spanning: union-find over edges connects all vertices
        let mut uf = cvcp_constraints::UnionFind::new(6);
        for e in &mst {
            assert!(uf.union(e.a, e.b), "MST must not contain a cycle");
        }
        assert_eq!(uf.n_components(), 1);
    }

    #[test]
    fn mst_weight_is_minimal_versus_star() {
        // For 3 equidistant-ish points the MST weight must not exceed any
        // spanning star.
        let data = DataMatrix::from_rows(&[vec![0.0, 0.0], vec![3.0, 0.0], vec![0.0, 4.0]]);
        let dist = pairwise_matrix(&data, &Euclidean);
        let mst = minimum_spanning_tree(&dist);
        let mst_total: f64 = mst.iter().map(|e| e.weight).sum();
        // possible spanning trees: {3,4}=7, {3,5}=8, {4,5}=9
        assert!((mst_total - 7.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_sizes() {
        assert!(minimum_spanning_tree(&[]).is_empty());
        assert!(minimum_spanning_tree(&[vec![0.0]]).is_empty());
        let two = vec![vec![0.0, 2.5], vec![2.5, 0.0]];
        let mst = minimum_spanning_tree(&two);
        assert_eq!(mst.len(), 1);
        assert_eq!(mst[0].weight, 2.5);
    }

    #[test]
    fn mutual_reachability_mst_uses_core_distances() {
        // With a large MinPts the core distances dominate, so every edge
        // weight is at least the largest pairwise-neighbour distance.
        let data = DataMatrix::from_rows(&[vec![0.0], vec![0.1], vec![0.2], vec![10.0]]);
        let mst = mutual_reachability_mst(&data, &Euclidean, 4);
        for e in &mst {
            assert!(e.weight >= 9.8);
        }
    }
}
