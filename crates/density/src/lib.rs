//! # cvcp-density
//!
//! The density-based clustering substrate of the CVCP suite, culminating in
//! **FOSC-OPTICSDend** — the semi-supervised, density-based algorithm
//! evaluated by the CVCP paper (Campello, Moulavi, Zimek & Sander 2013,
//! reference \[10\] of the paper).
//!
//! Pipeline (all built from scratch):
//!
//! 1. [`core_distance`]: k-nearest-neighbour core distances for a given
//!    `MinPts`, and mutual-reachability distances;
//! 2. [`optics`]: the OPTICS algorithm (reachability plot with ε = ∞);
//! 3. [`mst`]: a minimum spanning tree of the mutual-reachability graph
//!    (equivalent information, used to build the hierarchy);
//! 4. [`dendrogram`]: the single-linkage dendrogram over mutual-reachability
//!    distances — the "OPTICSDend" hierarchy;
//! 5. [`condensed`]: the condensed cluster tree for a minimum cluster size,
//!    with per-cluster stability;
//! 6. [`fosc`]: the Framework for Optimal Selection of Clusters — extraction
//!    of the optimal non-overlapping set of clusters from the tree, either by
//!    unsupervised stability or by the semi-supervised constraint
//!    satisfaction objective;
//! 7. [`fosc_optics_dend`]: the end-to-end `FoscOpticsDend` algorithm whose
//!    free parameter is `MinPts` — exactly what CVCP selects in the paper;
//! 8. [`dbscan`]: DBSCAN, as an unsupervised density baseline for ablations.

#![warn(missing_docs)]

pub mod condensed;
pub mod core_distance;
pub mod dbscan;
pub mod dendrogram;
pub mod fosc;
pub mod fosc_optics_dend;
pub mod mst;
pub mod optics;

pub use condensed::{CondensedNode, CondensedTree};
pub use core_distance::{core_distances, mutual_reachability_matrix, KnnTable};
pub use dbscan::Dbscan;
pub use dendrogram::{Dendrogram, Merge};
pub use fosc::{extract_clusters, ExtractionObjective, FoscSelection};
pub use fosc_optics_dend::{FoscOpticsDend, FoscOpticsDendResult};
pub use mst::{mutual_reachability_mst, Edge};
pub use optics::{OpticsOrdering, OpticsPoint};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::dbscan::Dbscan;
    pub use crate::fosc::ExtractionObjective;
    pub use crate::fosc_optics_dend::FoscOpticsDend;
    pub use crate::optics::OpticsOrdering;
}
