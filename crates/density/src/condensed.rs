//! The condensed cluster tree.
//!
//! The raw dendrogram contains one merge per object; most of those merges are
//! "spurious" — a large cluster absorbing one or two points.  The condensed
//! tree keeps only the splits in which *both* sides reach a minimum cluster
//! size; points on smaller sides simply "fall out" of their cluster at the
//! corresponding density level.  Every node of the condensed tree is a
//! candidate cluster for FOSC, annotated with its member objects, its birth /
//! death density levels (λ = 1/height) and its HDBSCAN-style stability.

use crate::dendrogram::Dendrogram;

/// One candidate cluster of the condensed tree.
#[derive(Debug, Clone, PartialEq)]
pub struct CondensedNode {
    /// Node id within the tree (0 is the root).
    pub id: usize,
    /// Parent cluster id (`None` for the root).
    pub parent: Option<usize>,
    /// Child cluster ids (empty for tree leaves).
    pub children: Vec<usize>,
    /// Density level at which the cluster appears (λ = 1 / merge height of
    /// the dendrogram edge that created it; 0 for the root).
    pub birth_lambda: f64,
    /// Density level at which the cluster disappears (splits into child
    /// clusters or dissolves completely).
    pub death_lambda: f64,
    /// All objects contained in the cluster (the leaves of the dendrogram
    /// subtree rooted at the cluster's birth node).
    pub members: Vec<usize>,
    /// HDBSCAN stability: Σ_p (λ_p − λ_birth) over the members, where λ_p is
    /// the level at which object p leaves the cluster.
    pub stability: f64,
}

impl CondensedNode {
    /// Number of member objects.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// `true` when this node has no child clusters.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// The condensed cluster tree extracted from a dendrogram for a given
/// minimum cluster size.
#[derive(Debug, Clone, PartialEq)]
pub struct CondensedTree {
    nodes: Vec<CondensedNode>,
    min_cluster_size: usize,
    n_objects: usize,
}

impl CondensedTree {
    /// Builds the condensed tree from `dendrogram` with the given minimum
    /// cluster size (clusters smaller than this are never candidates).
    ///
    /// # Panics
    ///
    /// Panics if `min_cluster_size < 2` or the dendrogram is empty.
    pub fn build(dendrogram: &Dendrogram, min_cluster_size: usize) -> Self {
        assert!(
            min_cluster_size >= 2,
            "minimum cluster size must be at least 2"
        );
        assert!(dendrogram.n_leaves() > 0, "empty dendrogram");
        let n = dendrogram.n_leaves();

        let mut nodes: Vec<CondensedNode> = Vec::new();
        // root cluster contains everything; birth at λ = 0
        nodes.push(CondensedNode {
            id: 0,
            parent: None,
            children: Vec::new(),
            birth_lambda: 0.0,
            death_lambda: f64::INFINITY,
            members: dendrogram.leaves_of(dendrogram.root()),
            stability: 0.0,
        });

        // Stack of (dendrogram node, condensed cluster id currently owning it).
        let mut stack: Vec<(usize, usize)> = vec![(dendrogram.root(), 0)];
        // λ at which each member leaves its owning cluster (for stability).
        let mut leave_lambda: Vec<Vec<(usize, f64)>> = vec![Vec::new()];

        while let Some((dnode, cluster)) = stack.pop() {
            let Some((left, right)) = dendrogram.children(dnode) else {
                // A single leaf reached without ever splitting: it leaves the
                // cluster at λ = ∞ conceptually; cap at the cluster's own
                // birth so stability stays finite.  (Only happens for tiny
                // data sets.)
                continue;
            };
            let height = dendrogram.height_of(dnode);
            let lambda = if height > 0.0 { 1.0 / height } else { f64::MAX };
            let size_left = dendrogram.size_of(left);
            let size_right = dendrogram.size_of(right);
            let big_left = size_left >= min_cluster_size;
            let big_right = size_right >= min_cluster_size;

            if big_left && big_right {
                // True split: two new candidate clusters are born.
                for child in [left, right] {
                    let id = nodes.len();
                    nodes.push(CondensedNode {
                        id,
                        parent: Some(cluster),
                        children: Vec::new(),
                        birth_lambda: lambda,
                        death_lambda: f64::INFINITY,
                        members: dendrogram.leaves_of(child),
                        stability: 0.0,
                    });
                    leave_lambda.push(Vec::new());
                    nodes[cluster].children.push(id);
                    stack.push((child, id));
                }
                // Members of the parent all leave it at this λ.
                if nodes[cluster].death_lambda.is_infinite() {
                    nodes[cluster].death_lambda = lambda;
                }
                for &m in &nodes[cluster].members {
                    leave_lambda[cluster].push((m, lambda));
                }
            } else if big_left || big_right {
                // The big side keeps the cluster identity; the small side
                // falls out at this λ.
                let (keep, fall) = if big_left {
                    (left, right)
                } else {
                    (right, left)
                };
                for m in dendrogram.leaves_of(fall) {
                    leave_lambda[cluster].push((m, lambda));
                }
                stack.push((keep, cluster));
            } else {
                // Both sides are too small: the whole cluster dissolves here.
                if nodes[cluster].death_lambda.is_infinite() {
                    nodes[cluster].death_lambda = lambda;
                }
                for m in dendrogram.leaves_of(dnode) {
                    leave_lambda[cluster].push((m, lambda));
                }
            }
        }

        // Finalise stability and death levels.
        for (id, node) in nodes.iter_mut().enumerate() {
            if node.death_lambda.is_infinite() {
                // Never split nor dissolved explicitly (e.g. a leaf cluster
                // whose members all left via fall-out): use the maximum
                // leave λ, or the birth λ when nothing was recorded.
                node.death_lambda = leave_lambda[id]
                    .iter()
                    .map(|&(_, l)| l)
                    .fold(node.birth_lambda, f64::max);
            }
            // BTreeMap, not HashMap: this map is lookup-only today, but a
            // hash map in a result path is one refactor away from an
            // iteration-order dependency (cvcp-analysis rule D1 forbids it
            // in this crate).
            let mut leave_of: std::collections::BTreeMap<usize, f64> =
                std::collections::BTreeMap::new();
            for &(m, l) in &leave_lambda[id] {
                let entry = leave_of.entry(m).or_insert(l);
                if l < *entry {
                    *entry = l;
                }
            }
            let birth = node.birth_lambda;
            node.stability = node
                .members
                .iter()
                .map(|m| {
                    let lp = leave_of.get(m).copied().unwrap_or(node.death_lambda);
                    let lp = if lp.is_finite() {
                        lp
                    } else {
                        node.death_lambda
                    };
                    (lp - birth).max(0.0)
                })
                .sum();
        }

        Self {
            nodes,
            min_cluster_size,
            n_objects: n,
        }
    }

    /// All nodes, indexed by id (node 0 is the root).
    pub fn nodes(&self) -> &[CondensedNode] {
        &self.nodes
    }

    /// The root node.
    pub fn root(&self) -> &CondensedNode {
        &self.nodes[0]
    }

    /// A node by id.
    pub fn node(&self, id: usize) -> &CondensedNode {
        &self.nodes[id]
    }

    /// Number of candidate clusters excluding the root.
    pub fn n_candidates(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }

    /// The minimum cluster size used to build the tree.
    pub fn min_cluster_size(&self) -> usize {
        self.min_cluster_size
    }

    /// Number of objects in the underlying data set.
    pub fn n_objects(&self) -> usize {
        self.n_objects
    }
}

impl cvcp_engine::ArtifactSize for CondensedTree {
    fn artifact_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .nodes
                .iter()
                .map(|node| {
                    std::mem::size_of::<CondensedNode>()
                        + (node.children.len() + node.members.len()) * std::mem::size_of::<usize>()
                })
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mst::mutual_reachability_mst;
    use cvcp_data::distance::Euclidean;
    use cvcp_data::rng::SeededRng;
    use cvcp_data::synthetic::separated_blobs;

    fn tree_for_blobs(
        k: usize,
        per: usize,
        sep: f64,
        min_pts: usize,
        seed: u64,
    ) -> (CondensedTree, cvcp_data::Dataset) {
        let mut rng = SeededRng::new(seed);
        let ds = separated_blobs(k, per, 2, sep, &mut rng);
        let mst = mutual_reachability_mst(ds.matrix(), &Euclidean, min_pts);
        let dend = Dendrogram::from_mst(ds.len(), &mst);
        (CondensedTree::build(&dend, min_pts), ds)
    }

    #[test]
    fn root_contains_all_objects() {
        let (tree, ds) = tree_for_blobs(3, 20, 15.0, 5, 1);
        assert_eq!(tree.root().members.len(), ds.len());
        assert_eq!(tree.root().birth_lambda, 0.0);
        assert_eq!(tree.n_objects(), ds.len());
    }

    #[test]
    fn three_blobs_produce_at_least_three_leaf_clusters() {
        let (tree, ds) = tree_for_blobs(3, 20, 15.0, 5, 3);
        let leaves: Vec<&CondensedNode> = tree
            .nodes()
            .iter()
            .filter(|n| n.is_leaf() && n.id != 0)
            .collect();
        assert!(leaves.len() >= 3, "got {} leaf clusters", leaves.len());
        // the three largest leaf clusters should correspond to the blobs
        let mut sizes: Vec<usize> = leaves.iter().map(|n| n.size()).collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        assert!(sizes[2] >= 15, "blob clusters too small: {sizes:?}");
        // and each is class-pure
        for leaf in leaves.iter().filter(|n| n.size() >= 15) {
            let classes: std::collections::BTreeSet<usize> =
                leaf.members.iter().map(|&m| ds.labels()[m]).collect();
            assert_eq!(classes.len(), 1, "leaf cluster mixes classes");
        }
    }

    #[test]
    fn children_are_subsets_of_parents() {
        let (tree, _) = tree_for_blobs(4, 15, 12.0, 4, 3);
        for node in tree.nodes() {
            for &c in &node.children {
                let child = tree.node(c);
                assert_eq!(child.parent, Some(node.id));
                let parent_set: std::collections::BTreeSet<usize> =
                    node.members.iter().copied().collect();
                assert!(child.members.iter().all(|m| parent_set.contains(m)));
                assert!(child.birth_lambda >= node.birth_lambda);
            }
        }
    }

    #[test]
    fn sibling_clusters_are_disjoint() {
        let (tree, _) = tree_for_blobs(3, 20, 15.0, 5, 4);
        for node in tree.nodes() {
            if node.children.len() == 2 {
                let a: std::collections::BTreeSet<usize> = tree
                    .node(node.children[0])
                    .members
                    .iter()
                    .copied()
                    .collect();
                let b: std::collections::BTreeSet<usize> = tree
                    .node(node.children[1])
                    .members
                    .iter()
                    .copied()
                    .collect();
                assert!(a.is_disjoint(&b));
            }
        }
    }

    #[test]
    fn candidate_clusters_respect_min_size() {
        let (tree, _) = tree_for_blobs(3, 20, 15.0, 6, 5);
        for node in tree.nodes().iter().skip(1) {
            assert!(
                node.size() >= tree.min_cluster_size(),
                "cluster {} has only {} members",
                node.id,
                node.size()
            );
        }
    }

    #[test]
    fn stability_is_non_negative_and_finite() {
        let (tree, _) = tree_for_blobs(3, 20, 10.0, 5, 6);
        for node in tree.nodes() {
            assert!(node.stability.is_finite(), "stability must be finite");
            assert!(node.stability >= 0.0);
            assert!(node.death_lambda >= node.birth_lambda);
        }
    }

    #[test]
    fn blob_clusters_are_more_stable_than_the_root() {
        let (tree, _) = tree_for_blobs(3, 25, 20.0, 5, 7);
        let root_stability = tree.root().stability;
        let best_child = tree
            .nodes()
            .iter()
            .skip(1)
            .map(|n| n.stability)
            .fold(0.0f64, f64::max);
        assert!(
            best_child > root_stability,
            "blob cluster stability {best_child} should exceed root {root_stability}"
        );
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn min_cluster_size_one_rejected() {
        let (_, ds) = tree_for_blobs(2, 10, 10.0, 3, 8);
        let mst = mutual_reachability_mst(ds.matrix(), &Euclidean, 3);
        let dend = Dendrogram::from_mst(ds.len(), &mst);
        let _ = CondensedTree::build(&dend, 1);
    }

    /// Regression pin for the D1 fix: `CondensedTree::build` used to hold
    /// its per-node `leave_of` map in a `HashMap`.  The map is lookup-only,
    /// so swapping it for a `BTreeMap` must be bit-identical — this pins the
    /// exact stability bits for a fixed input so any future change that
    /// makes stabilities depend on map iteration order fails loudly.
    #[test]
    fn stability_bits_are_pinned_for_a_fixed_input() {
        let (tree, _) = tree_for_blobs(3, 20, 15.0, 5, 7);
        assert_eq!(tree.nodes().len(), 5);
        let checksum = tree
            .nodes()
            .iter()
            .fold(0u64, |acc, n| acc.rotate_left(7) ^ n.stability.to_bits());
        assert_eq!(
            checksum, 0x278f74928187085e,
            "stability bits drifted — result-path determinism regression"
        );
    }
}
