//! FOSC — the Framework for Optimal Selection of Clusters from hierarchies
//! (Campello, Moulavi, Zimek & Sander, DMKD 2013; reference \[10\] of the CVCP
//! paper).
//!
//! Given the condensed cluster tree, FOSC selects the non-overlapping set of
//! clusters (an antichain of the tree, excluding the root) that maximises the
//! sum of a per-cluster quality measure, by a single bottom-up dynamic
//! programming pass:
//!
//! ```text
//! V(C) = max( q(C), Σ_{child} V(child) )
//! ```
//!
//! Two quality measures are provided:
//!
//! * **Unsupervised**: the HDBSCAN cluster stability (excess of mass).
//! * **Semi-supervised**: the constraint-satisfaction credit of the cluster —
//!   each object `x ∈ C` that appears in a constraint `(x, y)` contributes
//!   ½ if the constraint is satisfied assuming `C` is selected (must-link
//!   satisfied iff `y ∈ C`; cannot-link satisfied iff `y ∉ C`).  Objects left
//!   as noise contribute nothing.  This is exactly the decomposable objective
//!   of Campello et al. that makes the DP optimal.
//!
//! The semi-supervised objective can optionally use stability as a
//! tie-breaker (scaled so it never overrides a constraint-credit difference),
//! which resolves the selection in subtrees not touched by any constraint —
//! the behaviour used by FOSC-OPTICSDend in this suite.

use crate::condensed::CondensedTree;
use cvcp_constraints::{ConstraintKind, ConstraintSet};
use cvcp_data::Partition;

/// The per-cluster quality measure optimised by FOSC.
#[derive(Debug, Clone, PartialEq)]
pub enum ExtractionObjective {
    /// Unsupervised extraction by cluster stability (HDBSCAN*).
    Stability,
    /// Semi-supervised extraction by constraint satisfaction.
    ConstraintSatisfaction {
        /// Constraints guiding the extraction.
        constraints: ConstraintSet,
        /// When `true`, cluster stability (normalised to be strictly smaller
        /// than any ½-credit difference) breaks ties between selections with
        /// equal constraint credit.
        stability_tiebreak: bool,
    },
}

/// The result of a FOSC extraction.
#[derive(Debug, Clone, PartialEq)]
pub struct FoscSelection {
    /// Ids (into the condensed tree) of the selected clusters.
    pub selected: Vec<usize>,
    /// The resulting flat partition (unselected objects are noise).
    pub partition: Partition,
    /// Total objective value of the selection.
    pub total_value: f64,
}

/// Runs the FOSC dynamic program on `tree` and returns the optimal selection.
///
/// The root (the all-data cluster) is never selected unless it has no child
/// clusters at all (degenerate trees), in which case selecting it is the only
/// non-trivial answer.
pub fn extract_clusters(tree: &CondensedTree, objective: &ExtractionObjective) -> FoscSelection {
    let n_nodes = tree.nodes().len();
    let qualities: Vec<f64> = (0..n_nodes)
        .map(|id| node_quality(tree, id, objective))
        .collect();

    // Bottom-up DP.  Nodes are indexed so that parents have smaller ids than
    // children (the builder pushes children after parents), so iterating in
    // reverse id order visits children before parents.
    let mut value = vec![0.0f64; n_nodes];
    let mut keep = vec![false; n_nodes]; // true = select this node, false = defer to children
    for id in (0..n_nodes).rev() {
        let node = tree.node(id);
        let children_value: f64 = node.children.iter().map(|&c| value[c]).sum();
        let own = qualities[id];
        if node.id == 0 {
            // the root is not selectable (unless childless, handled below)
            value[id] = children_value;
            keep[id] = false;
        } else if node.is_leaf() || own >= children_value {
            value[id] = own;
            keep[id] = true;
        } else {
            value[id] = children_value;
            keep[id] = false;
        }
    }

    // Walk down from the root collecting the highest kept nodes.
    let mut selected = Vec::new();
    let mut stack: Vec<usize> = tree.root().children.clone();
    while let Some(id) = stack.pop() {
        if keep[id] {
            selected.push(id);
        } else {
            stack.extend(tree.node(id).children.iter().copied());
        }
    }
    selected.sort_unstable();

    // Degenerate case: no candidate clusters below the root at all.
    if selected.is_empty() && tree.root().children.is_empty() {
        selected.push(0);
    }

    // Materialise the flat partition.
    let mut assignment: Vec<Option<usize>> = vec![None; tree.n_objects()];
    for (cluster_idx, &id) in selected.iter().enumerate() {
        for &m in &tree.node(id).members {
            assignment[m] = Some(cluster_idx);
        }
    }
    let total_value = selected.iter().map(|&id| qualities[id]).sum();

    FoscSelection {
        partition: Partition::from_optional_ids(&assignment),
        selected,
        total_value,
    }
}

/// Quality of a single candidate cluster under the chosen objective.
fn node_quality(tree: &CondensedTree, id: usize, objective: &ExtractionObjective) -> f64 {
    match objective {
        ExtractionObjective::Stability => tree.node(id).stability,
        ExtractionObjective::ConstraintSatisfaction {
            constraints,
            stability_tiebreak,
        } => {
            let credit = constraint_credit(tree, id, constraints);
            if *stability_tiebreak {
                // Normalise stability into [0, ε) with ε strictly below the
                // smallest possible credit difference (½), so it only breaks
                // exact ties in constraint credit.
                let max_stab: f64 = tree
                    .nodes()
                    .iter()
                    .map(|n| n.stability)
                    .fold(0.0, f64::max)
                    .max(1e-12);
                credit + 0.2499 * (tree.node(id).stability / max_stab)
            } else {
                credit
            }
        }
    }
}

/// The constraint-satisfaction credit of cluster `id`: ½ per constraint
/// endpoint inside the cluster whose constraint is satisfied when the cluster
/// is part of the solution.
fn constraint_credit(tree: &CondensedTree, id: usize, constraints: &ConstraintSet) -> f64 {
    if constraints.is_empty() {
        return 0.0;
    }
    // BTreeSet, not HashSet: membership tests only, but rule D1 keeps hash
    // collections out of result-path crates entirely.
    let members: std::collections::BTreeSet<usize> =
        tree.node(id).members.iter().copied().collect();
    let mut credit = 0.0;
    for c in constraints.iter() {
        let a_in = members.contains(&c.a);
        let b_in = members.contains(&c.b);
        match c.kind {
            ConstraintKind::MustLink => {
                // satisfied only when both endpoints are in the cluster
                if a_in && b_in {
                    credit += 1.0;
                }
            }
            ConstraintKind::CannotLink => {
                // each endpoint inside the cluster earns ½ when its partner
                // is outside
                if a_in && !b_in {
                    credit += 0.5;
                }
                if b_in && !a_in {
                    credit += 0.5;
                }
            }
        }
    }
    credit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dendrogram::Dendrogram;
    use crate::mst::mutual_reachability_mst;
    use cvcp_data::distance::Euclidean;
    use cvcp_data::rng::SeededRng;
    use cvcp_data::synthetic::separated_blobs;
    use cvcp_data::Dataset;
    use cvcp_metrics::adjusted_rand_index;

    fn tree_for(ds: &Dataset, min_pts: usize) -> CondensedTree {
        let mst = mutual_reachability_mst(ds.matrix(), &Euclidean, min_pts);
        let dend = Dendrogram::from_mst(ds.len(), &mst);
        CondensedTree::build(&dend, min_pts)
    }

    #[test]
    fn stability_extraction_recovers_blobs() {
        let mut rng = SeededRng::new(1);
        let ds = separated_blobs(3, 25, 2, 15.0, &mut rng);
        let tree = tree_for(&ds, 5);
        let sel = extract_clusters(&tree, &ExtractionObjective::Stability);
        assert_eq!(sel.selected.len(), 3, "selected {:?}", sel.selected);
        let ari = adjusted_rand_index(&sel.partition, ds.labels());
        assert!(ari > 0.9, "ARI = {ari}");
    }

    #[test]
    fn selection_is_an_antichain() {
        let mut rng = SeededRng::new(2);
        let ds = separated_blobs(4, 20, 3, 10.0, &mut rng);
        let tree = tree_for(&ds, 4);
        let sel = extract_clusters(&tree, &ExtractionObjective::Stability);
        // no selected cluster is an ancestor of another
        for &a in &sel.selected {
            for &b in &sel.selected {
                if a == b {
                    continue;
                }
                let mut cur = tree.node(b).parent;
                while let Some(p) = cur {
                    assert_ne!(p, a, "cluster {a} is an ancestor of {b}");
                    cur = tree.node(p).parent;
                }
            }
        }
    }

    #[test]
    fn dp_value_is_at_least_any_single_cluster() {
        let mut rng = SeededRng::new(3);
        let ds = separated_blobs(3, 20, 2, 12.0, &mut rng);
        let tree = tree_for(&ds, 5);
        let sel = extract_clusters(&tree, &ExtractionObjective::Stability);
        for node in tree.nodes().iter().skip(1) {
            assert!(
                sel.total_value >= node.stability - 1e-9,
                "DP value {} below single-cluster stability {}",
                sel.total_value,
                node.stability
            );
        }
    }

    #[test]
    fn constraints_can_force_coarser_clustering() {
        // Two tight sub-blobs close together plus one far blob.  Unsupervised
        // stability tends to split the two close sub-blobs; must-link
        // constraints between them should force FOSC to keep them merged.
        let mut rng = SeededRng::new(4);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            let _ = i;
            rows.push(vec![rng.normal(0.0, 0.3), rng.normal(0.0, 0.3)]);
            labels.push(0usize);
        }
        for _ in 0..20 {
            rows.push(vec![rng.normal(3.0, 0.3), rng.normal(0.0, 0.3)]);
            labels.push(0usize);
        }
        for _ in 0..20 {
            rows.push(vec![rng.normal(30.0, 0.3), rng.normal(0.0, 0.3)]);
            labels.push(1usize);
        }
        let ds = Dataset::new(
            "two_sub_blobs",
            cvcp_data::DataMatrix::from_rows(&rows),
            labels,
        );
        let tree = tree_for(&ds, 4);

        // Constraints from the ground truth: the two sub-blobs must link.
        let mut constraints = ConstraintSet::new(ds.len());
        for i in 0..6 {
            constraints.add_must_link(i, 20 + i); // across the two sub-blobs
            constraints.add_cannot_link(i, 40 + i);
        }
        let ss = extract_clusters(
            &tree,
            &ExtractionObjective::ConstraintSatisfaction {
                constraints: constraints.clone(),
                stability_tiebreak: true,
            },
        );
        let ari_ss = adjusted_rand_index(&ss.partition, ds.labels());
        assert!(ari_ss > 0.9, "semi-supervised ARI = {ari_ss}");
        // every must-link is satisfied
        for c in constraints.iter() {
            if c.kind == ConstraintKind::MustLink {
                assert!(ss.partition.same_cluster(c.a, c.b));
            } else {
                assert!(!ss.partition.same_cluster(c.a, c.b));
            }
        }
    }

    #[test]
    fn empty_constraints_with_tiebreak_behave_like_stability() {
        let mut rng = SeededRng::new(5);
        let ds = separated_blobs(3, 20, 2, 15.0, &mut rng);
        let tree = tree_for(&ds, 5);
        let stab = extract_clusters(&tree, &ExtractionObjective::Stability);
        let ss = extract_clusters(
            &tree,
            &ExtractionObjective::ConstraintSatisfaction {
                constraints: ConstraintSet::new(ds.len()),
                stability_tiebreak: true,
            },
        );
        assert_eq!(stab.selected, ss.selected);
    }

    #[test]
    fn root_is_not_selected_when_children_exist() {
        let mut rng = SeededRng::new(6);
        let ds = separated_blobs(2, 20, 2, 12.0, &mut rng);
        let tree = tree_for(&ds, 4);
        let sel = extract_clusters(&tree, &ExtractionObjective::Stability);
        assert!(!sel.selected.contains(&0));
    }

    #[test]
    fn noise_objects_are_unassigned() {
        let mut rng = SeededRng::new(13);
        let base = separated_blobs(2, 25, 2, 20.0, &mut rng);
        let ds = cvcp_data::synthetic::with_uniform_noise(&base, 6, 0.4, &mut rng);
        let tree = tree_for(&ds, 5);
        let sel = extract_clusters(&tree, &ExtractionObjective::Stability);
        assert!(sel.partition.n_noise() > 0, "expected some noise objects");
        assert!(sel.partition.n_clusters() >= 2);
    }

    #[test]
    fn constraint_credit_counts_half_per_endpoint() {
        let mut rng = SeededRng::new(8);
        let ds = separated_blobs(2, 10, 2, 15.0, &mut rng);
        let tree = tree_for(&ds, 3);
        // pick one leaf cluster and craft constraints around it
        let leaf = tree
            .nodes()
            .iter()
            .find(|n| n.id != 0 && n.is_leaf())
            .expect("leaf cluster");
        let inside = leaf.members[0];
        let inside2 = leaf.members[1];
        let outside = (0..ds.len())
            .find(|i| !leaf.members.contains(i))
            .expect("outside object");
        let mut cs = ConstraintSet::new(ds.len());
        cs.add_must_link(inside, inside2); // satisfied -> 1.0
        cs.add_cannot_link(inside, outside); // half credit -> 0.5
        let q = super::constraint_credit(&tree, leaf.id, &cs);
        assert!((q - 1.5).abs() < 1e-12, "credit = {q}");
    }

    /// Regression pin for the D1 fix: `constraint_credit` used to collect
    /// cluster members into a `HashSet`.  Membership tests are order-free,
    /// so the `BTreeSet` swap must be bit-identical — this checks the
    /// production credit against an order-insensitive `HashSet` reference
    /// for every candidate cluster, requiring exact `f64` bit equality.
    #[test]
    fn constraint_credit_matches_a_hash_set_reference_bit_for_bit() {
        use std::collections::HashSet;
        let mut rng = SeededRng::new(9);
        let ds = separated_blobs(3, 15, 2, 12.0, &mut rng);
        let tree = tree_for(&ds, 4);
        let mut cs = ConstraintSet::new(ds.len());
        for i in 0..ds.len() {
            let j = (i * 7 + 3) % ds.len();
            if i == j {
                continue;
            }
            if ds.labels()[i] == ds.labels()[j] {
                cs.add_must_link(i, j);
            } else {
                cs.add_cannot_link(i, j);
            }
        }
        let reference = |id: usize| -> f64 {
            let members: HashSet<usize> = tree.node(id).members.iter().copied().collect();
            let mut credit = 0.0;
            for c in cs.iter() {
                let (a_in, b_in) = (members.contains(&c.a), members.contains(&c.b));
                match c.kind {
                    ConstraintKind::MustLink => {
                        if a_in && b_in {
                            credit += 1.0;
                        }
                    }
                    ConstraintKind::CannotLink => {
                        if a_in && !b_in {
                            credit += 0.5;
                        }
                        if b_in && !a_in {
                            credit += 0.5;
                        }
                    }
                }
            }
            credit
        };
        for node in tree.nodes() {
            let got = super::constraint_credit(&tree, node.id, &cs);
            assert_eq!(
                got.to_bits(),
                reference(node.id).to_bits(),
                "credit bits differ for cluster {}",
                node.id
            );
        }
    }
}
