//! Core distances and mutual-reachability distances.
//!
//! For a smoothing parameter `MinPts`, the *core distance* of an object is
//! the distance to its `MinPts`-th nearest neighbour, where the object itself
//! counts as its own first neighbour (the convention of OPTICS/HDBSCAN with
//! `m_pts`).  The *mutual reachability distance* between two objects is
//! `max(core(a), core(b), d(a, b))`.

use cvcp_data::distance::{pairwise_matrix, Distance};
use cvcp_data::DataMatrix;

/// Precomputed k-nearest-neighbour distances for every object.
#[derive(Debug, Clone)]
pub struct KnnTable {
    /// Sorted distances from each object to every other object
    /// (`sorted[i][0]` is the nearest *other* object).
    sorted: Vec<Vec<f64>>,
}

impl KnnTable {
    /// Builds the table from a full pairwise distance matrix.
    #[allow(clippy::needless_range_loop)] // row extraction excludes the diagonal by index
    pub fn from_pairwise(dist: &[Vec<f64>]) -> Self {
        let n = dist.len();
        let mut sorted = Vec::with_capacity(n);
        for i in 0..n {
            let mut row: Vec<f64> = (0..n).filter(|&j| j != i).map(|j| dist[i][j]).collect();
            row.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
            sorted.push(row);
        }
        Self { sorted }
    }

    /// The distance from object `i` to its `k`-th nearest *other* neighbour
    /// (1-based `k`).  Returns the largest available distance when `k`
    /// exceeds `n − 1`.
    pub fn kth_neighbor_distance(&self, i: usize, k: usize) -> f64 {
        let row = &self.sorted[i];
        if row.is_empty() {
            return 0.0;
        }
        let idx = k.saturating_sub(1).min(row.len() - 1);
        row[idx]
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
}

/// Computes the core distance of every object for the given `min_pts`.
///
/// With `min_pts = 1` every core distance is zero (each object is its own
/// neighbourhood); with `min_pts = m` the core distance is the distance to
/// the `(m − 1)`-th nearest *other* object.
///
/// # Panics
///
/// Panics if `min_pts == 0`.
pub fn core_distances(dist: &[Vec<f64>], min_pts: usize) -> Vec<f64> {
    assert!(min_pts >= 1, "MinPts must be at least 1");
    let knn = KnnTable::from_pairwise(dist);
    (0..dist.len())
        .map(|i| {
            if min_pts == 1 {
                0.0
            } else {
                knn.kth_neighbor_distance(i, min_pts - 1)
            }
        })
        .collect()
}

/// Computes the full mutual-reachability distance matrix for `data` under
/// `metric` and `min_pts`.
pub fn mutual_reachability_matrix<D: Distance + ?Sized>(
    data: &DataMatrix,
    metric: &D,
    min_pts: usize,
) -> Vec<Vec<f64>> {
    let dist = pairwise_matrix(data, metric);
    mutual_reachability_from_pairwise(&dist, min_pts)
}

/// Computes the mutual-reachability matrix from a precomputed pairwise
/// distance matrix.
pub fn mutual_reachability_from_pairwise(dist: &[Vec<f64>], min_pts: usize) -> Vec<Vec<f64>> {
    let n = dist.len();
    let core = core_distances(dist, min_pts);
    let mut out = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = dist[i][j].max(core[i]).max(core[j]);
            out[i][j] = d;
            out[j][i] = d;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvcp_data::distance::Euclidean;

    fn line_data() -> DataMatrix {
        // points at x = 0, 1, 2, 10
        DataMatrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![10.0]])
    }

    #[test]
    fn knn_table_orders_distances() {
        let dist = pairwise_matrix(&line_data(), &Euclidean);
        let knn = KnnTable::from_pairwise(&dist);
        assert_eq!(knn.len(), 4);
        assert_eq!(knn.kth_neighbor_distance(0, 1), 1.0);
        assert_eq!(knn.kth_neighbor_distance(0, 2), 2.0);
        assert_eq!(knn.kth_neighbor_distance(0, 3), 10.0);
        // k beyond n-1 saturates
        assert_eq!(knn.kth_neighbor_distance(0, 99), 10.0);
    }

    #[test]
    fn core_distances_for_various_min_pts() {
        let dist = pairwise_matrix(&line_data(), &Euclidean);
        assert_eq!(core_distances(&dist, 1), vec![0.0; 4]);
        // MinPts = 2 -> distance to 1st other neighbour
        assert_eq!(core_distances(&dist, 2), vec![1.0, 1.0, 1.0, 8.0]);
        // MinPts = 3 -> distance to 2nd other neighbour
        assert_eq!(core_distances(&dist, 3), vec![2.0, 1.0, 2.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "MinPts")]
    fn zero_min_pts_panics() {
        let dist = pairwise_matrix(&line_data(), &Euclidean);
        let _ = core_distances(&dist, 0);
    }

    #[test]
    fn mutual_reachability_dominates_distance_and_cores() {
        let data = line_data();
        let dist = pairwise_matrix(&data, &Euclidean);
        let min_pts = 3;
        let core = core_distances(&dist, min_pts);
        let mrd = mutual_reachability_matrix(&data, &Euclidean, min_pts);
        for i in 0..4 {
            assert_eq!(mrd[i][i], 0.0);
            for j in 0..4 {
                if i != j {
                    assert!(mrd[i][j] >= dist[i][j] - 1e-12);
                    assert!(mrd[i][j] >= core[i] - 1e-12);
                    assert!(mrd[i][j] >= core[j] - 1e-12);
                    assert!((mrd[i][j] - mrd[j][i]).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn mutual_reachability_equals_distance_for_min_pts_one() {
        let data = line_data();
        let dist = pairwise_matrix(&data, &Euclidean);
        let mrd = mutual_reachability_matrix(&data, &Euclidean, 1);
        for i in 0..4 {
            for j in 0..4 {
                assert!((mrd[i][j] - dist[i][j]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn empty_and_single_object() {
        let empty: Vec<Vec<f64>> = Vec::new();
        assert!(core_distances(&empty, 3).is_empty());
        let single = vec![vec![0.0]];
        assert_eq!(core_distances(&single, 5), vec![0.0]);
    }
}
