//! The OPTICS algorithm (Ankerst, Breunig, Kriegel & Sander 1999) with
//! ε = ∞, producing the reachability plot that underlies the OPTICSDend
//! hierarchy.
//!
//! The implementation operates on a dense pairwise distance matrix
//! (`O(n²)`), which matches the data sizes used in the CVCP paper.

use cvcp_data::distance::{pairwise_matrix, Distance};
use cvcp_data::DataMatrix;

/// One entry of the OPTICS ordering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpticsPoint {
    /// Object index.
    pub index: usize,
    /// Reachability distance at which the object was reached
    /// (`f64::INFINITY` for the first object of each connected expansion).
    pub reachability: f64,
    /// Core distance of the object for the configured `MinPts`.
    pub core_distance: f64,
}

/// The OPTICS output: an ordering of all objects with reachability and core
/// distances.
#[derive(Debug, Clone, PartialEq)]
pub struct OpticsOrdering {
    /// `MinPts` used.
    pub min_pts: usize,
    /// The ordered points.
    pub points: Vec<OpticsPoint>,
}

impl OpticsOrdering {
    /// Runs OPTICS (ε = ∞) on `data` with the given metric and `MinPts`.
    ///
    /// # Panics
    ///
    /// Panics if `min_pts == 0`.
    pub fn run<D: Distance + ?Sized>(data: &DataMatrix, metric: &D, min_pts: usize) -> Self {
        let dist = pairwise_matrix(data, metric);
        Self::run_on_distances(&dist, min_pts)
    }

    /// Runs OPTICS on a precomputed pairwise distance matrix.
    pub fn run_on_distances(dist: &[Vec<f64>], min_pts: usize) -> Self {
        assert!(min_pts >= 1, "MinPts must be at least 1");
        let n = dist.len();
        let core = crate::core_distance::core_distances(dist, min_pts);

        let mut processed = vec![false; n];
        let mut reach = vec![f64::INFINITY; n];
        let mut points = Vec::with_capacity(n);

        for start in 0..n {
            if processed[start] {
                continue;
            }
            // Begin a new expansion from `start`.
            processed[start] = true;
            points.push(OpticsPoint {
                index: start,
                reachability: f64::INFINITY,
                core_distance: core[start],
            });
            // Seeds are tracked implicitly via the `reach` array: the next
            // point is the unprocessed one with the smallest reachability.
            update_reachability(dist, &core, start, &processed, &mut reach);

            loop {
                let mut next = usize::MAX;
                let mut next_reach = f64::INFINITY;
                for j in 0..n {
                    if !processed[j] && reach[j] < next_reach {
                        next_reach = reach[j];
                        next = j;
                    }
                }
                if next == usize::MAX {
                    break;
                }
                processed[next] = true;
                points.push(OpticsPoint {
                    index: next,
                    reachability: next_reach,
                    core_distance: core[next],
                });
                update_reachability(dist, &core, next, &processed, &mut reach);
            }
        }

        Self { min_pts, points }
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the ordering is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The sequence of object indices in OPTICS order.
    pub fn order(&self) -> Vec<usize> {
        self.points.iter().map(|p| p.index).collect()
    }

    /// The reachability values in OPTICS order (the "reachability plot").
    pub fn reachability_plot(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.reachability).collect()
    }

    /// A simple ε-cut of the reachability plot: objects whose reachability
    /// exceeds `eps` start a new cluster (or are noise if they are not core
    /// at `eps`).  This mirrors the classic `ExtractDBSCAN` procedure and is
    /// used in tests to sanity-check the ordering.
    pub fn extract_dbscan(&self, eps: f64) -> cvcp_data::Partition {
        let n = self.points.len();
        let mut assignment: Vec<Option<usize>> = vec![None; n];
        let mut current: Option<usize> = None;
        let mut next_cluster = 0usize;
        for p in &self.points {
            if p.reachability > eps {
                if p.core_distance <= eps {
                    // start of a new cluster
                    current = Some(next_cluster);
                    next_cluster += 1;
                    assignment[p.index] = current;
                } else {
                    assignment[p.index] = None;
                    current = None;
                }
            } else {
                assignment[p.index] = current;
                if assignment[p.index].is_none() {
                    // reachable but no open cluster (can happen right after noise)
                    current = Some(next_cluster);
                    next_cluster += 1;
                    assignment[p.index] = current;
                }
            }
        }
        cvcp_data::Partition::from_optional_ids(&assignment)
    }
}

/// Updates the reachability of all unprocessed points from `p`.
fn update_reachability(
    dist: &[Vec<f64>],
    core: &[f64],
    p: usize,
    processed: &[bool],
    reach: &mut [f64],
) {
    let n = dist.len();
    for o in 0..n {
        if processed[o] {
            continue;
        }
        let new_reach = core[p].max(dist[p][o]);
        if new_reach < reach[o] {
            reach[o] = new_reach;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvcp_data::distance::Euclidean;
    use cvcp_data::rng::SeededRng;
    use cvcp_data::synthetic::separated_blobs;

    #[test]
    fn ordering_is_a_permutation() {
        let mut rng = SeededRng::new(1);
        let ds = separated_blobs(3, 20, 2, 8.0, &mut rng);
        let optics = OpticsOrdering::run(ds.matrix(), &Euclidean, 5);
        assert_eq!(optics.len(), ds.len());
        let mut order = optics.order();
        order.sort_unstable();
        assert_eq!(order, (0..ds.len()).collect::<Vec<_>>());
    }

    #[test]
    fn first_point_has_infinite_reachability() {
        let mut rng = SeededRng::new(2);
        let ds = separated_blobs(2, 10, 2, 8.0, &mut rng);
        let optics = OpticsOrdering::run(ds.matrix(), &Euclidean, 3);
        assert!(optics.points[0].reachability.is_infinite());
        // all others are finite (the data is one connected distance graph)
        assert!(optics.points[1..]
            .iter()
            .all(|p| p.reachability.is_finite()));
    }

    #[test]
    fn blob_structure_appears_in_reachability_plot() {
        // Two well separated blobs: exactly one interior reachability value
        // should be large (the jump between blobs).
        let mut rng = SeededRng::new(3);
        let ds = separated_blobs(2, 25, 2, 20.0, &mut rng);
        let optics = OpticsOrdering::run(ds.matrix(), &Euclidean, 4);
        let plot = optics.reachability_plot();
        let finite: Vec<f64> = plot.iter().copied().filter(|v| v.is_finite()).collect();
        let big = finite.iter().filter(|&&v| v > 10.0).count();
        assert_eq!(
            big, 1,
            "expected exactly one inter-blob jump, plot: {finite:?}"
        );
    }

    #[test]
    fn consecutive_blob_members_stay_together() {
        // Within the ordering, each blob's members should appear as one
        // contiguous run (classic OPTICS behaviour for well separated blobs).
        let mut rng = SeededRng::new(4);
        let ds = separated_blobs(2, 20, 2, 20.0, &mut rng);
        let optics = OpticsOrdering::run(ds.matrix(), &Euclidean, 4);
        let labels: Vec<usize> = optics.order().iter().map(|&i| ds.labels()[i]).collect();
        let switches = labels.windows(2).filter(|w| w[0] != w[1]).count();
        assert_eq!(switches, 1, "labels along the ordering: {labels:?}");
    }

    #[test]
    fn extract_dbscan_recovers_blobs() {
        let mut rng = SeededRng::new(5);
        let ds = separated_blobs(3, 20, 2, 20.0, &mut rng);
        let optics = OpticsOrdering::run(ds.matrix(), &Euclidean, 4);
        let partition = optics.extract_dbscan(3.0);
        assert_eq!(partition.n_clusters(), 3);
        let ari = cvcp_metrics::adjusted_rand_index(&partition, ds.labels());
        assert!(ari > 0.95, "ARI = {ari}");
    }

    #[test]
    fn deterministic() {
        let mut rng = SeededRng::new(6);
        let ds = separated_blobs(2, 15, 3, 10.0, &mut rng);
        let a = OpticsOrdering::run(ds.matrix(), &Euclidean, 5);
        let b = OpticsOrdering::run(ds.matrix(), &Euclidean, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn single_object() {
        let data = DataMatrix::from_rows(&[vec![1.0, 2.0]]);
        let optics = OpticsOrdering::run(&data, &Euclidean, 3);
        assert_eq!(optics.len(), 1);
        assert!(optics.points[0].reachability.is_infinite());
    }
}
