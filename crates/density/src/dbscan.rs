//! DBSCAN (Ester, Kriegel, Sander & Xu 1996).
//!
//! Included as an unsupervised density baseline for the suite's ablation
//! experiments (it has two parameters, `eps` and `MinPts`, and no mechanism
//! to use constraints — which is precisely the gap the semi-supervised
//! methods address).

use cvcp_data::distance::{pairwise_matrix, Distance};
use cvcp_data::{DataMatrix, Partition};

/// DBSCAN configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dbscan {
    /// Neighbourhood radius.
    pub eps: f64,
    /// Minimum number of objects (including the point itself) in an
    /// ε-neighbourhood for a point to be a core point.
    pub min_pts: usize,
}

impl Dbscan {
    /// Creates a DBSCAN configuration.
    ///
    /// # Panics
    ///
    /// Panics if `eps` is not positive or `min_pts` is zero.
    pub fn new(eps: f64, min_pts: usize) -> Self {
        assert!(eps > 0.0, "eps must be positive");
        assert!(min_pts >= 1, "MinPts must be at least 1");
        Self { eps, min_pts }
    }

    /// Runs DBSCAN on `data` with the given metric.
    pub fn fit<D: Distance + ?Sized>(&self, data: &DataMatrix, metric: &D) -> Partition {
        let dist = pairwise_matrix(data, metric);
        self.fit_on_distances(&dist)
    }

    /// Runs DBSCAN on a precomputed distance matrix.
    pub fn fit_on_distances(&self, dist: &[Vec<f64>]) -> Partition {
        let n = dist.len();
        // neighbourhoods (including the point itself)
        let neighbors: Vec<Vec<usize>> = (0..n)
            .map(|i| (0..n).filter(|&j| dist[i][j] <= self.eps).collect())
            .collect();
        let is_core: Vec<bool> = neighbors
            .iter()
            .map(|nb| nb.len() >= self.min_pts)
            .collect();

        let mut assignment: Vec<Option<usize>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut next_cluster = 0usize;

        for start in 0..n {
            if visited[start] || !is_core[start] {
                continue;
            }
            // expand a new cluster from this core point
            let cluster = next_cluster;
            next_cluster += 1;
            let mut queue = vec![start];
            visited[start] = true;
            assignment[start] = Some(cluster);
            while let Some(p) = queue.pop() {
                if !is_core[p] {
                    continue;
                }
                for &q in &neighbors[p] {
                    if assignment[q].is_none() {
                        assignment[q] = Some(cluster);
                    }
                    if !visited[q] {
                        visited[q] = true;
                        queue.push(q);
                    }
                }
            }
        }
        Partition::from_optional_ids(&assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvcp_data::distance::Euclidean;
    use cvcp_data::rng::SeededRng;
    use cvcp_data::synthetic::{separated_blobs, two_moons, with_uniform_noise};
    use cvcp_metrics::adjusted_rand_index;

    #[test]
    fn recovers_separated_blobs() {
        let mut rng = SeededRng::new(1);
        let ds = separated_blobs(3, 25, 2, 15.0, &mut rng);
        let p = Dbscan::new(1.5, 4).fit(ds.matrix(), &Euclidean);
        assert_eq!(p.n_clusters(), 3);
        let ari = adjusted_rand_index(&p, ds.labels());
        assert!(ari > 0.9, "ARI = {ari}");
    }

    #[test]
    fn recovers_moons_where_kmeans_would_fail() {
        let mut rng = SeededRng::new(2);
        let ds = two_moons(80, 0.04, 2, &mut rng);
        let p = Dbscan::new(0.25, 4).fit(ds.matrix(), &Euclidean);
        let ari = adjusted_rand_index(&p, ds.labels());
        assert!(ari > 0.9, "ARI = {ari}");
    }

    #[test]
    fn marks_far_outliers_as_noise() {
        let mut rng = SeededRng::new(3);
        let base = separated_blobs(2, 30, 2, 20.0, &mut rng);
        let ds = with_uniform_noise(&base, 5, 0.5, &mut rng);
        let p = Dbscan::new(1.0, 5).fit(ds.matrix(), &Euclidean);
        assert!(p.n_noise() >= 3, "noise = {}", p.n_noise());
    }

    #[test]
    fn tiny_eps_makes_everything_noise() {
        let mut rng = SeededRng::new(4);
        let ds = separated_blobs(2, 15, 2, 10.0, &mut rng);
        let p = Dbscan::new(1e-6, 3).fit(ds.matrix(), &Euclidean);
        assert_eq!(p.n_clusters(), 0);
        assert_eq!(p.n_noise(), ds.len());
    }

    #[test]
    fn huge_eps_puts_everything_in_one_cluster() {
        let mut rng = SeededRng::new(5);
        let ds = separated_blobs(3, 10, 2, 10.0, &mut rng);
        let p = Dbscan::new(1e6, 3).fit(ds.matrix(), &Euclidean);
        assert_eq!(p.n_clusters(), 1);
        assert_eq!(p.n_noise(), 0);
    }

    #[test]
    #[should_panic(expected = "eps")]
    fn invalid_eps_panics() {
        let _ = Dbscan::new(0.0, 3);
    }
}
