//! The density dendrogram ("OPTICSDend").
//!
//! The dendrogram is the single-linkage hierarchy over mutual-reachability
//! distances.  It can be built in two equivalent ways:
//!
//! * from the MST of the mutual-reachability graph, by merging components in
//!   order of increasing edge weight ([`Dendrogram::from_mst`]);
//! * from an OPTICS reachability plot, by merging the blocks separated by
//!   each reachability value in increasing order
//!   ([`Dendrogram::from_optics`]).
//!
//! Both constructions produce the same merge heights; the test-suite checks
//! this equivalence, which is the sense in which the hierarchy is "the
//! dendrogram of OPTICS" (Campello et al. 2013, Sander et al. 2003).

use crate::mst::Edge;
use crate::optics::OpticsOrdering;
use cvcp_constraints::UnionFind;
use cvcp_data::Partition;

/// One agglomerative merge.  Node ids `0..n` are leaves (objects); the merge
/// with index `i` creates node `n + i`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Merge {
    /// Left child node id.
    pub left: usize,
    /// Right child node id.
    pub right: usize,
    /// Height (mutual-reachability distance) of the merge.
    pub height: f64,
    /// Number of leaves under the new node.
    pub size: usize,
}

/// A single-linkage dendrogram over `n_leaves` objects.
#[derive(Debug, Clone, PartialEq)]
pub struct Dendrogram {
    n_leaves: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Builds the dendrogram from MST edges (weights = mutual-reachability
    /// distances).  The edges need not be sorted.
    pub fn from_mst(n_leaves: usize, edges: &[Edge]) -> Self {
        let mut sorted: Vec<Edge> = edges.to_vec();
        sorted.sort_by(|a, b| a.weight.partial_cmp(&b.weight).expect("finite weights"));

        let mut uf = UnionFind::new(n_leaves);
        // For each union-find root, remember the dendrogram node currently
        // representing that component.
        let mut node_of_root: Vec<usize> = (0..n_leaves).collect();
        let mut size_of_node: Vec<usize> = vec![1; n_leaves];
        let mut merges = Vec::with_capacity(edges.len());

        for e in sorted {
            let ra = uf.find(e.a);
            let rb = uf.find(e.b);
            if ra == rb {
                continue; // parallel edge (cannot happen for a true MST)
            }
            let left = node_of_root[ra];
            let right = node_of_root[rb];
            let new_id = n_leaves + merges.len();
            let size = size_of_node[left] + size_of_node[right];
            merges.push(Merge {
                left,
                right,
                height: e.weight,
                size,
            });
            size_of_node.push(size);
            uf.union(ra, rb);
            let new_root = uf.find(ra);
            if node_of_root.len() <= new_root {
                node_of_root.resize(new_root + 1, 0);
            }
            node_of_root[new_root] = new_id;
        }

        Self { n_leaves, merges }
    }

    /// Builds the dendrogram from an OPTICS reachability plot: positions
    /// `1..n` of the plot are merged in order of increasing reachability,
    /// each merge joining the component left of the position with the
    /// component containing the position.
    pub fn from_optics(optics: &OpticsOrdering) -> Self {
        let order = optics.order();
        let plot = optics.reachability_plot();
        let n = order.len();
        if n == 0 {
            return Self {
                n_leaves: 0,
                merges: Vec::new(),
            };
        }
        // Build pseudo-MST edges: position i (> 0) connects order[i-1] and
        // order[i] at height = reachability[i].  For an OPTICS run with
        // ε = ∞ this produces the same single-linkage hierarchy as the
        // mutual-reachability MST (reachability values are the MST edge
        // weights in Prim order).
        let mut edges = Vec::with_capacity(n.saturating_sub(1));
        for i in 1..n {
            let w = if plot[i].is_finite() {
                plot[i]
            } else {
                f64::MAX
            };
            edges.push(Edge {
                a: order[i - 1],
                b: order[i],
                weight: w,
            });
        }
        Self::from_mst(n, &edges)
    }

    /// Number of leaf objects.
    pub fn n_leaves(&self) -> usize {
        self.n_leaves
    }

    /// The merges in order of creation (non-decreasing height).
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Total number of nodes (leaves + internal).
    pub fn n_nodes(&self) -> usize {
        self.n_leaves + self.merges.len()
    }

    /// The root node id (the last merge), or the single leaf for `n = 1`.
    ///
    /// # Panics
    ///
    /// Panics for an empty dendrogram.
    pub fn root(&self) -> usize {
        assert!(self.n_leaves > 0, "empty dendrogram has no root");
        if self.merges.is_empty() {
            0
        } else {
            self.n_leaves + self.merges.len() - 1
        }
    }

    /// Children of an internal node (`None` for leaves).
    pub fn children(&self, node: usize) -> Option<(usize, usize)> {
        if node < self.n_leaves {
            None
        } else {
            let m = &self.merges[node - self.n_leaves];
            Some((m.left, m.right))
        }
    }

    /// The height at which `node` was created (0 for leaves).
    pub fn height_of(&self, node: usize) -> f64 {
        if node < self.n_leaves {
            0.0
        } else {
            self.merges[node - self.n_leaves].height
        }
    }

    /// Number of leaves under `node`.
    pub fn size_of(&self, node: usize) -> usize {
        if node < self.n_leaves {
            1
        } else {
            self.merges[node - self.n_leaves].size
        }
    }

    /// All leaf objects under `node`.
    pub fn leaves_of(&self, node: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![node];
        while let Some(x) = stack.pop() {
            if x < self.n_leaves {
                out.push(x);
            } else {
                let m = &self.merges[x - self.n_leaves];
                stack.push(m.left);
                stack.push(m.right);
            }
        }
        out.sort_unstable();
        out
    }

    /// Cuts the dendrogram at `height`: merges with height strictly greater
    /// than `height` are undone, and each remaining connected component with
    /// at least `min_size` objects becomes a cluster (smaller components are
    /// noise).
    pub fn cut(&self, height: f64, min_size: usize) -> Partition {
        let mut uf = UnionFind::new(self.n_leaves);
        // replay merges up to the height
        let mut stack_sizes: Vec<usize> = Vec::new();
        let _ = &mut stack_sizes;
        for m in &self.merges {
            if m.height <= height {
                // merge the representative leaves of both children
                let la = self.any_leaf_of(m.left);
                let lb = self.any_leaf_of(m.right);
                uf.union(la, lb);
            }
        }
        let labels = uf.component_labels();
        // count component sizes
        let n_comp = labels.iter().copied().max().map_or(0, |m| m + 1);
        let mut sizes = vec![0usize; n_comp];
        for &l in &labels {
            sizes[l] += 1;
        }
        let assignment: Vec<Option<usize>> = labels
            .iter()
            .map(|&l| (sizes[l] >= min_size.max(1)).then_some(l))
            .collect();
        Partition::from_optional_ids(&assignment).compact()
    }

    /// Any single leaf under `node` (used to address union-find components).
    fn any_leaf_of(&self, node: usize) -> usize {
        let mut x = node;
        while x >= self.n_leaves {
            x = self.merges[x - self.n_leaves].left;
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mst::mutual_reachability_mst;
    use cvcp_data::distance::Euclidean;
    use cvcp_data::rng::SeededRng;
    use cvcp_data::synthetic::separated_blobs;
    use cvcp_data::DataMatrix;

    fn line() -> DataMatrix {
        DataMatrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![10.0]])
    }

    #[test]
    fn merge_heights_are_monotone() {
        let data = line();
        let mst = mutual_reachability_mst(&data, &Euclidean, 2);
        let dend = Dendrogram::from_mst(4, &mst);
        assert_eq!(dend.merges().len(), 3);
        for w in dend.merges().windows(2) {
            assert!(w[0].height <= w[1].height + 1e-12);
        }
        assert_eq!(dend.size_of(dend.root()), 4);
    }

    #[test]
    fn leaves_of_root_is_everything() {
        let data = line();
        let mst = mutual_reachability_mst(&data, &Euclidean, 2);
        let dend = Dendrogram::from_mst(4, &mst);
        assert_eq!(dend.leaves_of(dend.root()), vec![0, 1, 2, 3]);
        assert_eq!(dend.leaves_of(2), vec![2]);
    }

    #[test]
    fn cut_separates_blobs() {
        let mut rng = SeededRng::new(1);
        let ds = separated_blobs(3, 20, 2, 20.0, &mut rng);
        let mst = mutual_reachability_mst(ds.matrix(), &Euclidean, 4);
        let dend = Dendrogram::from_mst(ds.len(), &mst);
        let partition = dend.cut(5.0, 4);
        assert_eq!(partition.n_clusters(), 3);
        let ari = cvcp_metrics::adjusted_rand_index(&partition, ds.labels());
        assert!(ari > 0.95, "ARI = {ari}");
    }

    #[test]
    fn cut_at_zero_makes_everything_noise_for_min_size_two() {
        let data = line();
        let mst = mutual_reachability_mst(&data, &Euclidean, 1);
        let dend = Dendrogram::from_mst(4, &mst);
        let p = dend.cut(0.0, 2);
        assert_eq!(p.n_clusters(), 0);
        assert_eq!(p.n_noise(), 4);
    }

    #[test]
    fn cut_above_max_height_is_single_cluster() {
        let data = line();
        let mst = mutual_reachability_mst(&data, &Euclidean, 2);
        let dend = Dendrogram::from_mst(4, &mst);
        let p = dend.cut(f64::MAX, 1);
        assert_eq!(p.n_clusters(), 1);
        assert_eq!(p.n_noise(), 0);
    }

    #[test]
    fn optics_and_mst_dendrograms_cut_to_the_same_clusters() {
        // The OPTICS reachability plot uses the asymmetric reachability
        // max(core(p), d(p, o)) while the mutual-reachability MST uses the
        // symmetric max(core(p), core(o), d(p, o)); the hierarchies are not
        // bit-identical but cut to the same clusters on separable data.
        let mut rng = SeededRng::new(2);
        let ds = separated_blobs(3, 15, 3, 12.0, &mut rng);
        let min_pts = 4;
        let mst = mutual_reachability_mst(ds.matrix(), &Euclidean, min_pts);
        let from_mst = Dendrogram::from_mst(ds.len(), &mst);
        let optics = OpticsOrdering::run(ds.matrix(), &Euclidean, min_pts);
        let from_optics = Dendrogram::from_optics(&optics);
        let p1 = from_mst.cut(5.0, min_pts);
        let p2 = from_optics.cut(5.0, min_pts);
        assert_eq!(p1.n_clusters(), 3);
        assert_eq!(p2.n_clusters(), 3);
        let agreement = cvcp_metrics::adjusted_rand_index(&p1, ds.labels())
            .min(cvcp_metrics::adjusted_rand_index(&p2, ds.labels()));
        assert!(agreement > 0.95, "agreement = {agreement}");
    }

    #[test]
    fn children_and_heights_consistent() {
        let data = line();
        let mst = mutual_reachability_mst(&data, &Euclidean, 1);
        let dend = Dendrogram::from_mst(4, &mst);
        let root = dend.root();
        let (l, r) = dend.children(root).unwrap();
        assert!(dend.height_of(l) <= dend.height_of(root));
        assert!(dend.height_of(r) <= dend.height_of(root));
        assert_eq!(dend.size_of(l) + dend.size_of(r), 4);
        assert!(dend.children(0).is_none());
    }

    #[test]
    fn single_and_empty_input() {
        let dend = Dendrogram::from_mst(1, &[]);
        assert_eq!(dend.root(), 0);
        assert_eq!(dend.leaves_of(0), vec![0]);
        let p = dend.cut(1.0, 1);
        assert_eq!(p.n_clusters(), 1);
    }
}
