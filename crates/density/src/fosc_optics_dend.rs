//! FOSC-OPTICSDend: the end-to-end semi-supervised, density-based clustering
//! algorithm evaluated by the CVCP paper.
//!
//! Given a data set, a set of instance-level constraints (possibly derived
//! from labelled objects) and the single free parameter `MinPts`, the
//! algorithm
//!
//! 1. computes the density hierarchy (OPTICSDend — the single-linkage
//!    dendrogram over mutual-reachability distances for `MinPts`),
//! 2. condenses it into a cluster tree with minimum cluster size `MinPts`,
//! 3. extracts the optimal non-overlapping set of clusters with FOSC using
//!    the semi-supervised constraint-satisfaction objective (falling back to
//!    unsupervised stability when no constraints are given).
//!
//! Objects not covered by any selected cluster are reported as noise, exactly
//! as in the original framework.

use crate::condensed::CondensedTree;
use crate::core_distance::mutual_reachability_from_pairwise;
use crate::dendrogram::Dendrogram;
use crate::fosc::{extract_clusters, ExtractionObjective, FoscSelection};
use crate::mst::{minimum_spanning_tree, mutual_reachability_mst};
use cvcp_constraints::ConstraintSet;
use cvcp_data::distance::{Distance, Euclidean};
use cvcp_data::{DataMatrix, Partition};

/// Configuration of FOSC-OPTICSDend.
#[derive(Debug, Clone)]
pub struct FoscOpticsDend {
    /// The density smoothing parameter (`MinPts`) — also used as the minimum
    /// cluster size of the condensed tree.  This is the parameter CVCP
    /// selects in the paper's experiments (range 3…24).
    pub min_pts: usize,
    /// Optional distinct minimum cluster size; when `None` (the default) the
    /// minimum cluster size equals `min_pts`, following the paper's setup.
    pub min_cluster_size: Option<usize>,
    /// Whether cluster stability is used to break ties between selections
    /// with equal constraint credit (also used for subtrees untouched by
    /// constraints).  Enabled by default.
    pub stability_tiebreak: bool,
}

/// Full result of a FOSC-OPTICSDend run.
#[derive(Debug, Clone)]
pub struct FoscOpticsDendResult {
    /// The flat partition (noise objects possible).
    pub partition: Partition,
    /// Ids of the selected condensed-tree clusters.
    pub selected_clusters: Vec<usize>,
    /// The condensed cluster tree (useful for inspection / plotting).
    pub tree: CondensedTree,
    /// Objective value of the selection.
    pub objective_value: f64,
}

impl FoscOpticsDend {
    /// Creates a configuration for the given `MinPts`.
    ///
    /// # Panics
    ///
    /// Panics if `min_pts < 2`.
    pub fn new(min_pts: usize) -> Self {
        assert!(min_pts >= 2, "MinPts must be at least 2");
        Self {
            min_pts,
            min_cluster_size: None,
            stability_tiebreak: true,
        }
    }

    /// Overrides the minimum cluster size of the condensed tree.
    pub fn with_min_cluster_size(mut self, size: usize) -> Self {
        self.min_cluster_size = Some(size);
        self
    }

    /// Enables or disables the stability tie-break.
    pub fn with_stability_tiebreak(mut self, enabled: bool) -> Self {
        self.stability_tiebreak = enabled;
        self
    }

    /// Runs the algorithm with the Euclidean metric.
    pub fn fit(&self, data: &DataMatrix, constraints: &ConstraintSet) -> FoscOpticsDendResult {
        self.fit_with_metric(data, constraints, &Euclidean)
    }

    /// Runs the algorithm with an arbitrary metric.
    pub fn fit_with_metric<D: Distance + ?Sized>(
        &self,
        data: &DataMatrix,
        constraints: &ConstraintSet,
        metric: &D,
    ) -> FoscOpticsDendResult {
        let tree = self.build_tree_with_metric(data, metric);
        let FoscSelection {
            selected,
            partition,
            total_value,
        } = self.extract_on_tree(&tree, constraints);
        FoscOpticsDendResult {
            partition,
            selected_clusters: selected,
            tree,
            objective_value: total_value,
        }
    }

    /// The effective minimum cluster size of the condensed tree.
    pub fn effective_min_cluster_size(&self) -> usize {
        self.min_cluster_size.unwrap_or(self.min_pts).max(2)
    }

    /// Steps 1–2 only: builds the condensed density hierarchy for this
    /// configuration, without extracting clusters.
    ///
    /// The hierarchy depends on the data and `MinPts` but **not** on the
    /// constraints, which is what makes it shareable: under CVCP the same
    /// tree serves every cross-validation fold, replica and trial evaluated
    /// at this `MinPts` (the execution engine caches it under a
    /// content-derived key).
    ///
    /// # Panics
    ///
    /// Panics if the data has fewer than two rows.
    pub fn build_tree_with_metric<D: Distance + ?Sized>(
        &self,
        data: &DataMatrix,
        metric: &D,
    ) -> CondensedTree {
        let n = data.n_rows();
        assert!(n >= 2, "need at least two objects to cluster");
        let mst = mutual_reachability_mst(data, metric, self.min_pts);
        let dendrogram = Dendrogram::from_mst(n, &mst);
        CondensedTree::build(&dendrogram, self.effective_min_cluster_size())
    }

    /// Like [`Self::build_tree_with_metric`] but starting from a precomputed
    /// pairwise distance matrix, so the `O(n²·d)` distance pass is shared
    /// across *all* `MinPts` values.
    ///
    /// # Panics
    ///
    /// Panics if the matrix has fewer than two rows.
    pub fn build_tree_from_pairwise(&self, dist: &[Vec<f64>]) -> CondensedTree {
        let n = dist.len();
        assert!(n >= 2, "need at least two objects to cluster");
        let mrd = mutual_reachability_from_pairwise(dist, self.min_pts);
        let mst = minimum_spanning_tree(&mrd);
        let dendrogram = Dendrogram::from_mst(n, &mst);
        CondensedTree::build(&dendrogram, self.effective_min_cluster_size())
    }

    /// Step 3 only: extracts the optimal cluster selection from a prebuilt
    /// hierarchy (which must come from a `FoscOpticsDend` with the same
    /// `MinPts` / minimum cluster size on the same data).
    pub fn extract_on_tree(
        &self,
        tree: &CondensedTree,
        constraints: &ConstraintSet,
    ) -> FoscSelection {
        let objective = if constraints.is_empty() {
            ExtractionObjective::Stability
        } else {
            ExtractionObjective::ConstraintSatisfaction {
                constraints: constraints.clone(),
                stability_tiebreak: self.stability_tiebreak,
            }
        };
        extract_clusters(tree, &objective)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvcp_constraints::generate::{constraint_pool, sample_labeled_subset};
    use cvcp_data::rng::SeededRng;
    use cvcp_data::synthetic::{separated_blobs, two_moons};
    use cvcp_metrics::{adjusted_rand_index, constraint_fmeasure, overall_fmeasure};

    #[test]
    fn unsupervised_mode_recovers_blobs() {
        let mut rng = SeededRng::new(1);
        let ds = separated_blobs(3, 25, 3, 15.0, &mut rng);
        let result = FoscOpticsDend::new(5).fit(ds.matrix(), &ConstraintSet::new(ds.len()));
        let ari = adjusted_rand_index(&result.partition, ds.labels());
        assert!(ari > 0.9, "ARI = {ari}");
        assert_eq!(result.partition.n_clusters(), 3);
    }

    #[test]
    fn semi_supervised_mode_satisfies_constraints() {
        let mut rng = SeededRng::new(2);
        let ds = separated_blobs(3, 25, 3, 12.0, &mut rng);
        let pool = constraint_pool(ds.labels(), 0.3, 2, &mut rng);
        let result = FoscOpticsDend::new(5).fit(ds.matrix(), &pool);
        let f = constraint_fmeasure(&result.partition, &pool);
        assert!(f > 0.9, "constraint F-measure = {f}");
        let ext = overall_fmeasure(&result.partition, ds.labels());
        assert!(ext > 0.85, "overall F = {ext}");
    }

    #[test]
    fn density_shapes_are_recovered_where_kmeans_cannot() {
        let mut rng = SeededRng::new(3);
        let ds = two_moons(80, 0.05, 2, &mut rng);
        let labeled = sample_labeled_subset(ds.labels(), 0.1, 2, &mut rng);
        let constraints =
            cvcp_constraints::generate::constraints_from_labels(ds.labels(), labeled.indices());
        let result = FoscOpticsDend::new(6).fit(ds.matrix(), &constraints);
        let ari = adjusted_rand_index(&result.partition, ds.labels());
        assert!(ari > 0.8, "ARI = {ari}");
    }

    #[test]
    fn larger_min_pts_gives_coarser_or_equal_clusterings() {
        let mut rng = SeededRng::new(4);
        let ds = separated_blobs(4, 20, 2, 8.0, &mut rng);
        let fine = FoscOpticsDend::new(3).fit(ds.matrix(), &ConstraintSet::new(ds.len()));
        let coarse = FoscOpticsDend::new(15).fit(ds.matrix(), &ConstraintSet::new(ds.len()));
        assert!(coarse.partition.n_clusters() <= fine.partition.n_clusters() + 1);
    }

    #[test]
    fn bad_min_pts_hurts_quality_on_small_clusters() {
        // With MinPts larger than the true cluster size, clusters cannot be
        // resolved and quality collapses — this parameter sensitivity is
        // exactly what CVCP exploits.
        let mut rng = SeededRng::new(5);
        let ds = separated_blobs(5, 12, 2, 12.0, &mut rng);
        let good = FoscOpticsDend::new(4).fit(ds.matrix(), &ConstraintSet::new(ds.len()));
        let bad = FoscOpticsDend::new(24).fit(ds.matrix(), &ConstraintSet::new(ds.len()));
        let f_good = overall_fmeasure(&good.partition, ds.labels());
        let f_bad = overall_fmeasure(&bad.partition, ds.labels());
        assert!(
            f_good > f_bad + 0.1,
            "good MinPts {f_good} should clearly beat bad MinPts {f_bad}"
        );
    }

    #[test]
    fn result_exposes_tree_and_selection() {
        let mut rng = SeededRng::new(6);
        let ds = separated_blobs(2, 20, 2, 10.0, &mut rng);
        let result = FoscOpticsDend::new(4).fit(ds.matrix(), &ConstraintSet::new(ds.len()));
        assert!(!result.selected_clusters.is_empty());
        assert!(result.tree.n_candidates() >= result.selected_clusters.len());
        assert!(result.objective_value.is_finite());
    }

    #[test]
    #[should_panic(expected = "MinPts")]
    fn min_pts_below_two_is_rejected() {
        let _ = FoscOpticsDend::new(1);
    }

    #[test]
    fn prebuilt_tree_path_matches_fit() {
        // The cached-artifact path (build tree once, extract per constraint
        // set) must be indistinguishable from a monolithic fit.
        let mut rng = SeededRng::new(8);
        let ds = separated_blobs(3, 20, 3, 11.0, &mut rng);
        let pool = constraint_pool(ds.labels(), 0.3, 2, &mut rng);
        let algo = FoscOpticsDend::new(5);

        let direct = algo.fit(ds.matrix(), &pool);

        let dist = cvcp_data::distance::pairwise_matrix(ds.matrix(), &Euclidean);
        let tree = algo.build_tree_from_pairwise(&dist);
        let extracted = algo.extract_on_tree(&tree, &pool);

        assert_eq!(direct.partition, extracted.partition);
        assert_eq!(direct.selected_clusters, extracted.selected);
        assert_eq!(direct.objective_value, extracted.total_value);

        // and the metric-based tree builder agrees as well
        let tree2 = algo.build_tree_with_metric(ds.matrix(), &Euclidean);
        let extracted2 = algo.extract_on_tree(&tree2, &pool);
        assert_eq!(direct.partition, extracted2.partition);
    }

    #[test]
    fn deterministic() {
        let mut rng = SeededRng::new(7);
        let ds = separated_blobs(3, 15, 3, 10.0, &mut rng);
        let pool = constraint_pool(ds.labels(), 0.3, 2, &mut rng);
        let a = FoscOpticsDend::new(5).fit(ds.matrix(), &pool);
        let b = FoscOpticsDend::new(5).fit(ds.matrix(), &pool);
        assert_eq!(a.partition, b.partition);
    }
}
