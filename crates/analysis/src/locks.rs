//! Rule C1 — the static half of the lock-discipline contract.
//!
//! The runtime half is `cvcp_obs::lock_rank`: every hot-path mutex is a
//! `RankedMutex` and debug builds assert the declared global order on
//! every acquisition. That catches whatever actually executes; this
//! pass catches what is merely *written* — it extracts every
//! `<receiver>.lock()` site in the concurrency crates, classifies the
//! receiver against a lock-class registry, tracks guard liveness through
//! lexical scopes, and builds the static nesting graph. The build fails
//! on: an unregistered lock site, an acquisition against the declared
//! rank order, same-class nesting (two shards!), or any cycle among the
//! unranked leaf classes.
//!
//! This is a *lexical* approximation, and deliberately so: it sees
//! same-function nesting only (a guard cannot outlive its function —
//! `MutexGuard` is not `Send` across the job boundary used here), it
//! treats a `let`-bound guard as live to the end of its block or an
//! explicit `drop(guard)`, and it treats a `.lock().unwrap().method()`
//! chain as a temporary released at the end of the statement. Those are
//! exactly the semantics of the code this repository writes; anything
//! fancier should trip the `unclassified` check and force a registry
//! entry (and a human look).

use crate::allow::AllowSet;
use crate::lexer::Tok;
use crate::rules::Violation;
use crate::workspace::{FileKind, ParsedFile};
use std::collections::{BTreeMap, BTreeSet};

/// Crates whose `.lock()` sites are extracted.
pub const LOCK_SCOPE_CRATES: &[&str] = &["cvcp-engine", "cvcp-server", "cvcp-obs", "cvcp-core"];

/// A lock class: all mutexes that play the same role share one node in
/// the nesting graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockClass {
    pub name: &'static str,
    /// Declared global rank, for the four ranked hot-path classes; `None`
    /// for leaf locks that must simply never participate in a cycle.
    pub rank: Option<u16>,
}

/// Receiver-name registry: (crate, receiver ident at the `.lock()` call)
/// → class. Every lock site in scope must resolve here; adding a mutex
/// without registering it is a C1 violation by construction.
pub fn registry() -> BTreeMap<(&'static str, &'static str), LockClass> {
    let ranked = |name, rank| LockClass {
        name,
        rank: Some(rank),
    };
    let leaf = |name| LockClass { name, rank: None };
    BTreeMap::from([
        // The ranked classes — must match cvcp_obs::lock_rank.
        (("cvcp-server", "state"), ranked("server-queue", 10)),
        // The pool's sharded deques: every per-worker per-lane local and
        // every lane injector is its own mutex, all at the pool rank —
        // same-class nesting (two deques held at once) is a violation, so
        // every scheduler acquisition must be transient.
        (("cvcp-engine", "state"), ranked("pool-state", 20)),
        (("cvcp-engine", "locals"), ranked("pool-state", 20)),
        (("cvcp-engine", "injectors"), ranked("pool-state", 20)),
        (("cvcp-engine", "sleep"), ranked("pool-sleep", 25)),
        // Cache economics (adaptive rebalancing, admission control,
        // commit-time slice borrowing) added no lock classes: per-shard
        // budget slices, demand signals and residency hints are atomics,
        // and the borrower's donor evictions take shard `map` locks one
        // at a time — same-class nesting stays a violation.
        (("cvcp-engine", "map"), ranked("cache-shard", 30)),
        (("cvcp-engine", "profile"), ranked("cache-profile", 40)),
        // Leaf locks: completion plumbing and observability buffers.
        (("cvcp-engine", "done_tx"), leaf("engine-done-tx")),
        (("cvcp-engine", "drop_hook"), leaf("engine-drop-hook")),
        // Per-job closure and outcome slots (one mutex per job; a slot is
        // locked only for a take/store, never across another acquisition).
        (("cvcp-engine", "jobs"), leaf("engine-job-slot")),
        (("cvcp-engine", "outcomes"), leaf("engine-outcome-slot")),
        (("cvcp-engine", "slot"), leaf("engine-outcome-slot")),
        (("cvcp-server", "last_profile"), leaf("server-last-profile")),
        (("cvcp-obs", "buffer"), leaf("trace-buffer")),
        (("cvcp-obs", "b"), leaf("trace-buffer")),
        // Plan-execution result slots (written by engine jobs, reduced
        // under a fresh acquisition; never nested).
        (("cvcp-core", "grid"), leaf("plan-grid")),
        (("cvcp-core", "externals"), leaf("plan-externals")),
        (("cvcp-core", "results"), leaf("plan-results")),
        (("cvcp-core", "callback"), leaf("selection-callback")),
    ])
}

/// One extracted acquisition site.
#[derive(Debug, Clone)]
pub struct LockSite {
    pub file: String,
    pub line: usize,
    pub class: LockClass,
    /// Classes held (lexically) at the moment of acquisition.
    pub held: Vec<LockClass>,
}

/// Parses the declared ranks out of `crates/obs/src/lock_rank.rs`
/// (`pub static NAME: LockRank = LockRank { rank: N, name: "x" }`),
/// returning name → rank.
pub fn declared_ranks(lock_rank_src: &str) -> BTreeMap<String, u16> {
    let mut out = BTreeMap::new();
    let mut rest = lock_rank_src;
    while let Some(pos) = rest.find("LockRank {") {
        let body = &rest[pos..];
        let rank = body
            .find("rank:")
            .and_then(|r| body[r + 5..].split([',', '}']).next())
            .and_then(|s| s.trim().parse::<u16>().ok());
        let name = body.find("name:").and_then(|n| {
            let after = &body[n + 5..];
            let open = after.find('"')?;
            let close = after[open + 1..].find('"')?;
            Some(after[open + 1..open + 1 + close].to_string())
        });
        if let (Some(rank), Some(name)) = (rank, name) {
            out.insert(name, rank);
        }
        rest = &rest[pos + 9..];
    }
    out
}

/// Runs the whole C1 pass over the parsed workspace files.
pub fn rule_c1(
    files: &[ParsedFile],
    lock_rank_src: Option<&str>,
    allows: &AllowSet,
    out: &mut Vec<Violation>,
) {
    let registry = registry();
    let mut sites: Vec<LockSite> = Vec::new();

    for p in files {
        if !LOCK_SCOPE_CRATES.contains(&p.file.crate_name.as_str())
            || p.file.kind != FileKind::Src
            || p.file.rel_path.ends_with("lock_rank.rs")
        {
            // lock_rank.rs IS the guard: it wraps raw mutexes by design.
            continue;
        }
        extract_sites(p, &registry, allows, &mut sites, out);
    }

    // Per-site order checks against the declared ranks.
    let mut edges: BTreeSet<(LockClass, LockClass)> = BTreeSet::new();
    for site in &sites {
        for &held in &site.held {
            edges.insert((held, site.class));
            match (held.rank, site.class.rank) {
                (Some(h), Some(n)) if h >= n && !allows.suppresses("C1", &site.file, site.line) => {
                    out.push(Violation {
                        rule: "C1".into(),
                        file: site.file.clone(),
                        line: site.line,
                        message: format!(
                            "acquires `{}` (rank {n}) while holding `{}` (rank {h}) — violates the declared order queue(10) < pool(20) < shard(30) < profile(40), and equal ranks never nest",
                            site.class.name, held.name
                        ),
                    });
                }
                _ if held.name == site.class.name
                    && !allows.suppresses("C1", &site.file, site.line) =>
                {
                    out.push(Violation {
                        rule: "C1".into(),
                        file: site.file.clone(),
                        line: site.line,
                        message: format!(
                            "re-acquires lock class `{}` while already holding it — self-deadlock",
                            site.class.name
                        ),
                    });
                }
                _ => {}
            }
        }
    }

    // Global cycle check over the full nesting graph (covers the leaf
    // classes the rank order says nothing about).
    if let Some(cycle) = find_cycle(&edges) {
        out.push(Violation {
            rule: "C1".into(),
            file: "(lock nesting graph)".into(),
            line: 0,
            message: format!("cyclic lock nesting: {}", cycle.join(" -> ")),
        });
    }

    // Cross-check: the registry's ranks must match the runtime guard's
    // declared statics — otherwise this pass validates a fiction.
    if let Some(src) = lock_rank_src {
        let declared = declared_ranks(src);
        for class in registry.values() {
            let Some(rank) = class.rank else { continue };
            match declared.get(class.name) {
                Some(&d) if d == rank => {}
                Some(&d) => out.push(Violation {
                    rule: "C1".into(),
                    file: "crates/obs/src/lock_rank.rs".into(),
                    line: 1,
                    message: format!(
                        "rank drift for `{}`: analysis registry says {rank}, lock_rank.rs declares {d}",
                        class.name
                    ),
                }),
                None => out.push(Violation {
                    rule: "C1".into(),
                    file: "crates/obs/src/lock_rank.rs".into(),
                    line: 1,
                    message: format!(
                        "ranked class `{}` has no LockRank static in lock_rank.rs",
                        class.name
                    ),
                }),
            }
        }
    }
}

/// A live, `let`-bound guard.
#[derive(Debug)]
struct LiveGuard {
    var: String,
    class: LockClass,
}

/// Walks one file's token stream, maintaining a lexical scope stack of
/// live guards, and records every acquisition with the classes held.
fn extract_sites(
    p: &ParsedFile,
    registry: &BTreeMap<(&'static str, &'static str), LockClass>,
    allows: &AllowSet,
    sites: &mut Vec<LockSite>,
    out: &mut Vec<Violation>,
) {
    let toks = &p.tokens;
    let mut scopes: Vec<Vec<LiveGuard>> = vec![Vec::new()];

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            scopes.push(Vec::new());
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            if scopes.len() > 1 {
                scopes.pop();
            }
            i += 1;
            continue;
        }
        // drop(guard) releases early.
        if t.ident() == Some("drop")
            && toks.get(i + 1).is_some_and(|a| a.is_punct('('))
            && toks.get(i + 3).is_some_and(|a| a.is_punct(')'))
        {
            if let Some(var) = toks.get(i + 2).and_then(Tok::ident) {
                for scope in scopes.iter_mut() {
                    scope.retain(|g| g.var != var);
                }
            }
            i += 4;
            continue;
        }
        // <receiver> . lock (
        let is_lock_call = t.is_punct('.')
            && toks.get(i + 1).and_then(Tok::ident) == Some("lock")
            && toks.get(i + 2).is_some_and(|a| a.is_punct('('));
        if !is_lock_call || p.in_test_span(t.line) {
            i += 1;
            continue;
        }
        let receiver = receiver_ident(toks, i);
        let class = receiver.and_then(|r| {
            registry
                .iter()
                .find(|((krate, recv), _)| *krate == p.file.crate_name && *recv == r)
                .map(|(_, &c)| c)
        });
        let Some(class) = class else {
            if !allows.suppresses("C1", &p.file.rel_path, t.line) {
                out.push(Violation {
                    rule: "C1".into(),
                    file: p.file.rel_path.clone(),
                    line: t.line,
                    message: format!(
                        "unclassified lock site (receiver `{}`) — register it in the cvcp-analysis lock registry",
                        receiver.unwrap_or("<expr>")
                    ),
                });
            }
            i += 3;
            continue;
        };

        let held: Vec<LockClass> = scopes
            .iter()
            .flat_map(|s| s.iter().map(|g| g.class))
            .collect();
        sites.push(LockSite {
            file: p.file.rel_path.clone(),
            line: t.line,
            class,
            held,
        });

        // Guard binding: statement starts with `let <name> [mut] = …` and
        // the expression ends right after `.lock()` plus optional
        // `.expect("…")` / `.unwrap()` — then the guard stays live in this
        // scope. Anything else is a temporary (released at statement end).
        let bound_var = let_bound_var(toks, i).filter(|_| is_bare_guard_expr(toks, i + 2));
        if let Some(var) = bound_var {
            scopes
                .last_mut()
                .expect("scope stack never empty")
                .push(LiveGuard { var, class });
        }
        i += 3;
    }
}

/// The receiver name of `<recv>.lock()`: the identifier directly before
/// the dot, looking through one index expression (`outcomes[job].lock()`
/// resolves to `outcomes`).
fn receiver_ident(toks: &[Tok], dot: usize) -> Option<&str> {
    if dot == 0 {
        return None;
    }
    let mut j = dot - 1;
    if toks[j].is_punct(']') {
        let mut depth = 0usize;
        loop {
            if toks[j].is_punct(']') {
                depth += 1;
            } else if toks[j].is_punct('[') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if j == 0 {
                return None;
            }
            j -= 1;
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    }
    toks[j].ident()
}

/// Walks back from the `.`-token of a lock call to the start of the
/// statement (past `;`, `{` or `}`); returns the bound variable when the
/// statement begins with `let`.
fn let_bound_var(toks: &[Tok], dot: usize) -> Option<String> {
    let mut j = dot;
    while j > 0 {
        let t = &toks[j - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        j -= 1;
    }
    if toks.get(j).and_then(Tok::ident) != Some("let") {
        return None;
    }
    let mut k = j + 1;
    if toks.get(k).and_then(Tok::ident) == Some("mut") {
        k += 1;
    }
    toks.get(k).and_then(Tok::ident).map(str::to_string)
}

/// From the index of the `(` in `.lock(`, returns `true` when the call
/// chain ends the statement after optional `.expect(...)`/`.unwrap()`
/// adapters — i.e. the expression's value IS the guard.
fn is_bare_guard_expr(toks: &[Tok], open_paren: usize) -> bool {
    let mut j = open_paren + 1; // `.lock(` takes no arguments
    if !toks.get(j).is_some_and(|t| t.is_punct(')')) {
        return false;
    }
    j += 1;
    loop {
        match toks.get(j) {
            Some(t) if t.is_punct(';') => return true,
            Some(t) if t.is_punct('.') => {
                let adapter = toks.get(j + 1).and_then(Tok::ident);
                if !matches!(adapter, Some("expect") | Some("unwrap")) {
                    return false;
                }
                // skip the adapter's argument list
                let Some(open) = toks.get(j + 2).filter(|t| t.is_punct('(')) else {
                    return false;
                };
                let _ = open;
                let mut depth = 0usize;
                let mut k = j + 2;
                while k < toks.len() {
                    if toks[k].is_punct('(') {
                        depth += 1;
                    } else if toks[k].is_punct(')') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                j = k + 1;
            }
            Some(t) if t.is_punct('?') => j += 1,
            _ => return false,
        }
    }
}

/// DFS cycle detection over the class graph; returns the cycle's class
/// names when one exists.
fn find_cycle(edges: &BTreeSet<(LockClass, LockClass)>) -> Option<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges {
        // Self-edges (same-class nesting) are already reported per-site;
        // the graph pass looks for longer cycles.
        if a.name != b.name {
            adj.entry(a.name).or_default().push(b.name);
        }
        adj.entry(b.name).or_default();
    }
    let mut state: BTreeMap<&str, u8> = adj.keys().map(|&k| (k, 0u8)).collect(); // 0=new 1=open 2=done
    let mut stack: Vec<&str> = Vec::new();

    fn dfs<'a>(
        node: &'a str,
        adj: &BTreeMap<&'a str, Vec<&'a str>>,
        state: &mut BTreeMap<&'a str, u8>,
        stack: &mut Vec<&'a str>,
    ) -> Option<Vec<String>> {
        state.insert(node, 1);
        stack.push(node);
        for &next in adj.get(node).into_iter().flatten() {
            match state.get(next).copied().unwrap_or(0) {
                0 => {
                    if let Some(c) = dfs(next, adj, state, stack) {
                        return Some(c);
                    }
                }
                1 => {
                    let from = stack.iter().position(|&n| n == next).unwrap_or(0);
                    let mut cycle: Vec<String> =
                        stack[from..].iter().map(|s| s.to_string()).collect();
                    cycle.push(next.to_string());
                    return Some(cycle);
                }
                _ => {}
            }
        }
        stack.pop();
        state.insert(node, 2);
        None
    }

    let nodes: Vec<&str> = adj.keys().copied().collect();
    for node in nodes {
        if state.get(node).copied().unwrap_or(0) == 0 {
            if let Some(c) = dfs(node, &adj, &mut state, &mut stack) {
                return Some(c);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::SourceFile;

    fn run(crate_name: &str, src: &str) -> Vec<Violation> {
        let p = ParsedFile::parse(SourceFile {
            crate_name: crate_name.into(),
            rel_path: "crates/x/src/file.rs".into(),
            kind: FileKind::Src,
            text: src.into(),
        });
        let allows = AllowSet::default();
        let mut out = Vec::new();
        rule_c1(&[p], None, &allows, &mut out);
        out
    }

    #[test]
    fn in_order_nesting_is_clean() {
        let out = run(
            "cvcp-engine",
            "fn f(s: &S) {\n    let state = s.state.lock().expect(\"pool\");\n    let m = s.map.lock().expect(\"shard\");\n}\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn reversed_nesting_is_flagged() {
        let out = run(
            "cvcp-engine",
            "fn f(s: &S) {\n    let m = s.map.lock().expect(\"shard\");\n    let state = s.state.lock().expect(\"pool\");\n}\n",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(
            out[0].message.contains("while holding"),
            "{}",
            out[0].message
        );
        assert_eq!(out[0].line, 3);
    }

    #[test]
    fn same_class_nesting_is_flagged() {
        let out = run(
            "cvcp-engine",
            "fn f(a: &S, b: &S) {\n    let m1 = a.map.lock().unwrap();\n    let m2 = b.map.lock().unwrap();\n}\n",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("rank 30"), "{}", out[0].message);
    }

    #[test]
    fn drop_releases_the_guard() {
        let out = run(
            "cvcp-engine",
            "fn f(s: &S) {\n    let m = s.map.lock().unwrap();\n    drop(m);\n    let state = s.state.lock().unwrap();\n}\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn block_scope_releases_the_guard() {
        let out = run(
            "cvcp-engine",
            "fn f(s: &S) {\n    {\n        let m = s.map.lock().unwrap();\n    }\n    let state = s.state.lock().unwrap();\n}\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn chained_temporary_does_not_stay_live() {
        let out = run(
            "cvcp-engine",
            "fn f(s: &S) {\n    let n = s.map.lock().unwrap().len();\n    let state = s.state.lock().unwrap();\n}\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn unclassified_receiver_is_flagged() {
        let out = run(
            "cvcp-engine",
            "fn f(s: &S) {\n    let g = s.mystery.lock().unwrap();\n}\n",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(
            out[0].message.contains("unclassified"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn cfg_test_sites_are_skipped() {
        let out = run(
            "cvcp-engine",
            "#[cfg(test)]\nmod tests {\n    fn f(s: &S) { let g = s.anything.lock().unwrap(); }\n}\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn leaf_cycle_is_detected() {
        // done_tx -> drop_hook in one function, drop_hook -> done_tx in
        // another: no rank order violated, but the graph has a cycle.
        let out = run(
            "cvcp-engine",
            "fn f(s: &S) {\n    let a = s.done_tx.lock().unwrap();\n    let b = s.drop_hook.lock().unwrap();\n}\nfn g(s: &S) {\n    let b = s.drop_hook.lock().unwrap();\n    let a = s.done_tx.lock().unwrap();\n}\n",
        );
        assert!(
            out.iter()
                .any(|v| v.message.contains("cyclic lock nesting")),
            "{out:?}"
        );
    }

    #[test]
    fn declared_rank_parser_reads_lock_rank_statics() {
        let src = r#"
pub static SERVER_QUEUE: LockRank = LockRank { rank: 10, name: "server-queue" };
pub static POOL_STATE: LockRank = LockRank { rank: 20, name: "pool-state" };
"#;
        let ranks = declared_ranks(src);
        assert_eq!(ranks.get("server-queue"), Some(&10));
        assert_eq!(ranks.get("pool-state"), Some(&20));
    }

    #[test]
    fn rank_drift_against_lock_rank_src_is_flagged() {
        let src = r#"pub static POOL_STATE: LockRank = LockRank { rank: 99, name: "pool-state" };"#;
        let allows = AllowSet::default();
        let mut out = Vec::new();
        rule_c1(&[], Some(src), &allows, &mut out);
        assert!(
            out.iter().any(|v| v.message.contains("rank drift")),
            "{out:?}"
        );
    }
}
