//! The determinism rules (D1–D4) and the lint-policy rule (L1).
//!
//! Scope conventions shared by the D rules:
//! - vendor crates (`crates/vendor/*`) are never scanned;
//! - `cvcp-analysis` itself is exempt — its sources name the very
//!   patterns it hunts (rule ids, `"CVCP_"` prefixes) as data;
//! - `tests/` and `benches/` targets and `#[cfg(test)]` items are
//!   skipped: tests may freely use hash maps, clocks and thread ids
//!   without affecting published results.

use crate::allow::AllowSet;
use crate::lexer::TokKind;
use crate::workspace::{FileKind, Manifest, ParsedFile};
use std::collections::BTreeMap;
use std::fmt;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub rule: String,
    pub file: String,
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{rule}: {file}:{line}: {msg}",
            rule = self.rule,
            file = self.file,
            line = self.line,
            msg = self.message
        )
    }
}

/// Crates whose outputs ARE the experiment results: anything
/// iteration-order-dependent here can silently change published numbers.
pub const RESULT_PATH_CRATES: &[&str] = &[
    "cvcp-data",
    "cvcp-density",
    "cvcp-constraints",
    "cvcp-kmeans",
    "cvcp-metrics",
    "cvcp-core",
];

/// Crates allowed to read wall clocks: observability, the server's
/// queue-latency accounting, and the benchmark harness.
pub const CLOCK_EXEMPT_CRATES: &[&str] = &["cvcp-obs", "cvcp-server", "cvcp-bench"];

const SELF_CRATE: &str = "cvcp-analysis";

fn skip_content_rules(p: &ParsedFile) -> bool {
    p.file.crate_name == SELF_CRATE || matches!(p.file.kind, FileKind::Test | FileKind::Bench)
}

/// D1: no `HashMap`/`HashSet` in result-path crates. The ban is total,
/// not iteration-only: a lookup-only hash map is one refactor away from
/// an iteration-order dependency, and `BTreeMap`/`BTreeSet` cost nothing
/// at these sizes. (This is why `condensed.rs`, `fosc.rs` and
/// `synthetic.rs` carry BTree collections with pinned-bit regression
/// tests.)
pub fn rule_d1(p: &ParsedFile, allows: &AllowSet, out: &mut Vec<Violation>) {
    if skip_content_rules(p) || !RESULT_PATH_CRATES.contains(&p.file.crate_name.as_str()) {
        return;
    }
    for t in &p.tokens {
        let Some(name @ ("HashMap" | "HashSet")) = t.ident() else {
            continue;
        };
        if p.in_test_span(t.line) || allows.suppresses("D1", &p.file.rel_path, t.line) {
            continue;
        }
        out.push(Violation {
            rule: "D1".into(),
            file: p.file.rel_path.clone(),
            line: t.line,
            message: format!(
                "`{name}` in result-path crate `{}` — use BTreeMap/BTreeSet (iteration order must be deterministic)",
                p.file.crate_name
            ),
        });
    }
}

/// D2: no `Instant::now` / `SystemTime` outside the clock-exempt crates.
/// Engine metrics timing is legitimate but must be individually
/// justified with an allow, keeping every clock read in a result-adjacent
/// crate auditable.
pub fn rule_d2(p: &ParsedFile, allows: &AllowSet, out: &mut Vec<Violation>) {
    if skip_content_rules(p) || CLOCK_EXEMPT_CRATES.contains(&p.file.crate_name.as_str()) {
        return;
    }
    for (i, t) in p.tokens.iter().enumerate() {
        let flagged = match t.ident() {
            // Any associated use (`SystemTime::now`, `::UNIX_EPOCH`) — a
            // bare type mention in a signature reads no clock.
            Some("SystemTime") => {
                let assoc = p.tokens.get(i + 1).is_some_and(|a| a.is_punct(':'))
                    && p.tokens.get(i + 2).is_some_and(|a| a.is_punct(':'));
                assoc.then_some("SystemTime")
            }
            Some("Instant") => {
                // `Instant::now` (a bare `Instant` type mention, e.g. in a
                // field declaration, is fine — only the clock *read* is
                // nondeterministic).
                let now = p.tokens.get(i + 1).is_some_and(|a| a.is_punct(':'))
                    && p.tokens.get(i + 2).is_some_and(|a| a.is_punct(':'))
                    && p.tokens.get(i + 3).and_then(|a| a.ident()) == Some("now");
                now.then_some("Instant::now")
            }
            _ => None,
        };
        let Some(what) = flagged else { continue };
        if p.in_test_span(t.line) || allows.suppresses("D2", &p.file.rel_path, t.line) {
            continue;
        }
        out.push(Violation {
            rule: "D2".into(),
            file: p.file.rel_path.clone(),
            line: t.line,
            message: format!(
                "`{what}` in `{}` — clock reads belong in obs/server/bench; justify metrics timing with an allow",
                p.file.crate_name
            ),
        });
    }
}

/// The knob table parsed out of `EXPERIMENTS.md`: knob name → first line
/// it is documented on.
pub fn knob_table(experiments_md: &str) -> BTreeMap<String, usize> {
    let mut table = BTreeMap::new();
    for (idx, line) in experiments_md.lines().enumerate() {
        let line = line.trim();
        // Table rows look like: | `CVCP_THREADS` | description |
        if !line.starts_with('|') {
            continue;
        }
        let Some(start) = line.find("`CVCP_") else {
            continue;
        };
        let rest = &line[start + 1..];
        let Some(end) = rest.find('`') else { continue };
        table.entry(rest[..end].to_string()).or_insert(idx + 1);
    }
    table
}

/// D3: environment knobs and their documentation stay in sync, both ways.
///
/// - every `"CVCP_*"` string literal in code must be a knob documented in
///   the EXPERIMENTS.md table;
/// - every `std::env::var` read must take a `"CVCP_*"` literal (non-CVCP
///   names and non-literal arguments need an allow);
/// - every knob in the table must be referenced by some scanned literal
///   (documentation for a knob nothing reads is a lie-in-waiting).
pub fn rule_d3(
    files: &[ParsedFile],
    experiments_md: Option<&str>,
    allows: &AllowSet,
    out: &mut Vec<Violation>,
) {
    let table = experiments_md.map(knob_table).unwrap_or_default();
    let mut referenced: BTreeMap<&str, bool> = table.keys().map(|k| (k.as_str(), false)).collect();

    for p in files {
        if skip_content_rules(p) {
            continue;
        }
        // Examples ARE user-facing knob consumers; include them.
        for (i, t) in p.tokens.iter().enumerate() {
            if p.in_test_span(t.line) {
                continue;
            }
            if let TokKind::Str(s) = &t.kind {
                if let Some(stripped) = s.strip_prefix("CVCP_") {
                    let _ = stripped;
                    if let Some(hit) = referenced.get_mut(s.as_str()) {
                        *hit = true;
                    } else if !allows.suppresses("D3", &p.file.rel_path, t.line) {
                        out.push(Violation {
                            rule: "D3".into(),
                            file: p.file.rel_path.clone(),
                            line: t.line,
                            message: format!(
                                "`\"{s}\"` is not documented in the EXPERIMENTS.md knob table — add a row or rename"
                            ),
                        });
                    }
                }
            }
            // env::var( <arg> ) — the arg must be a CVCP_* literal.
            if t.ident() == Some("var")
                && i >= 3
                && p.tokens[i - 1].is_punct(':')
                && p.tokens[i - 2].is_punct(':')
                && p.tokens[i - 3].ident() == Some("env")
                && p.tokens.get(i + 1).is_some_and(|a| a.is_punct('('))
            {
                let arg = p.tokens.get(i + 2);
                let problem = match arg.map(|a| &a.kind) {
                    Some(TokKind::Str(s)) if s.starts_with("CVCP_") => None,
                    Some(TokKind::Str(s)) => Some(format!(
                        "env read of non-CVCP variable `\"{s}\"` — rename to CVCP_* and document it, or justify with an allow"
                    )),
                    _ => Some(
                        "env::var with a non-literal name — the D3 doc-sync check cannot see it; justify with an allow"
                            .to_string(),
                    ),
                };
                if let Some(message) = problem {
                    if !allows.suppresses("D3", &p.file.rel_path, t.line) {
                        out.push(Violation {
                            rule: "D3".into(),
                            file: p.file.rel_path.clone(),
                            line: t.line,
                            message,
                        });
                    }
                }
            }
        }
    }

    for (knob, hit) in &referenced {
        if !hit {
            out.push(Violation {
                rule: "D3".into(),
                file: "EXPERIMENTS.md".into(),
                line: table.get(*knob).copied().unwrap_or(0),
                message: format!(
                    "knob `{knob}` is documented but never referenced in code — stale documentation"
                ),
            });
        }
    }
}

/// D4: result paths must not read thread identity or worker counts —
/// `thread::current()`, `ThreadId`, `available_parallelism` make output
/// depend on scheduling. (Worker counts are configuration that belongs
/// in `cvcp-experiments`/`cvcp-server`, which then *pass values in*.)
pub fn rule_d4(p: &ParsedFile, allows: &AllowSet, out: &mut Vec<Violation>) {
    if skip_content_rules(p) || !RESULT_PATH_CRATES.contains(&p.file.crate_name.as_str()) {
        return;
    }
    for (i, t) in p.tokens.iter().enumerate() {
        let flagged = match t.ident() {
            Some("ThreadId") => Some("ThreadId"),
            Some("available_parallelism") => Some("available_parallelism"),
            Some("thread") => {
                let current = p.tokens.get(i + 1).is_some_and(|a| a.is_punct(':'))
                    && p.tokens.get(i + 2).is_some_and(|a| a.is_punct(':'))
                    && p.tokens.get(i + 3).and_then(|a| a.ident()) == Some("current");
                current.then_some("thread::current")
            }
            _ => None,
        };
        let Some(what) = flagged else { continue };
        if p.in_test_span(t.line) || allows.suppresses("D4", &p.file.rel_path, t.line) {
            continue;
        }
        out.push(Violation {
            rule: "D4".into(),
            file: p.file.rel_path.clone(),
            line: t.line,
            message: format!(
                "`{what}` in result-path crate `{}` — results must be independent of thread identity and worker count",
                p.file.crate_name
            ),
        });
    }
}

/// L1: the no-unsafe policy has exactly one owner. The workspace
/// manifest forbids `unsafe_code` for everyone; each first-party crate
/// opts in with `[lints] workspace = true`; vendor shims (which cannot
/// inherit workspace lints without touching their manifests' semantics)
/// keep a crate-level `#![forbid(unsafe_code)]`.
pub fn rule_l1(
    root_manifest: &str,
    manifests: &[Manifest],
    vendor_lib_sources: &BTreeMap<String, String>,
    out: &mut Vec<Violation>,
) {
    let has_workspace_forbid = {
        let mut in_section = false;
        let mut found = false;
        for line in root_manifest.lines() {
            let line = line.trim();
            if line.starts_with('[') {
                in_section = line == "[workspace.lints.rust]";
                continue;
            }
            if in_section && line.starts_with("unsafe_code") && line.contains("forbid") {
                found = true;
            }
        }
        found
    };
    if !has_workspace_forbid {
        out.push(Violation {
            rule: "L1".into(),
            file: "Cargo.toml".into(),
            line: 1,
            message: "workspace manifest lacks `[workspace.lints.rust] unsafe_code = \"forbid\"`"
                .into(),
        });
    }

    for m in manifests {
        if m.is_vendor {
            let lib = vendor_lib_sources.get(&m.crate_name);
            if !lib.is_some_and(|s| s.contains("#![forbid(unsafe_code)]")) {
                out.push(Violation {
                    rule: "L1".into(),
                    file: m.rel_path.clone(),
                    line: 1,
                    message: format!(
                        "vendor crate `{}` must carry `#![forbid(unsafe_code)]` in its lib.rs",
                        m.crate_name
                    ),
                });
            }
            continue;
        }
        let opts_in = {
            let mut in_lints = false;
            let mut found = false;
            for line in m.text.lines() {
                let line = line.trim();
                if line.starts_with('[') {
                    in_lints = line == "[lints]";
                    continue;
                }
                if in_lints && line.replace(' ', "") == "workspace=true" {
                    found = true;
                }
            }
            found
        };
        if !opts_in {
            out.push(Violation {
                rule: "L1".into(),
                file: m.rel_path.clone(),
                line: 1,
                message: format!(
                    "crate `{}` does not opt into workspace lints — add `[lints] workspace = true`",
                    m.crate_name
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::SourceFile;

    pub(crate) fn parsed(crate_name: &str, kind: FileKind, src: &str) -> ParsedFile {
        ParsedFile::parse(SourceFile {
            crate_name: crate_name.into(),
            rel_path: "crates/x/src/lib.rs".to_string(),
            kind,
            text: src.into(),
        })
    }

    #[test]
    fn d1_flags_hash_collections_in_result_crates_only() {
        let allows = AllowSet::default();
        let mut out = Vec::new();
        let p = parsed(
            "cvcp-density",
            FileKind::Src,
            "use std::collections::HashMap;\n",
        );
        rule_d1(&p, &allows, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        out.clear();
        let p = parsed(
            "cvcp-engine",
            FileKind::Src,
            "use std::collections::HashMap;\n",
        );
        rule_d1(&p, &allows, &mut out);
        assert!(out.is_empty(), "engine is not a result-path crate");
    }

    #[test]
    fn d2_distinguishes_type_mentions_from_clock_reads() {
        let allows = AllowSet::default();
        let mut out = Vec::new();
        let p = parsed(
            "cvcp-engine",
            FileKind::Src,
            "struct S { at: Instant }\nfn f() -> Instant { Instant::now() }\n",
        );
        rule_d2(&p, &allows, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn knob_table_parses_rows() {
        let md =
            "| `CVCP_THREADS` | workers |\n| `CVCP_ADDR` | listen |\nplain text `CVCP_NOT_A_ROW`\n";
        let table = knob_table(md);
        assert_eq!(table.len(), 2);
        assert_eq!(table["CVCP_THREADS"], 1);
    }
}
