//! Workspace discovery and per-file parsing context.
//!
//! The walker reads the workspace member list from the root `Cargo.toml`
//! (plus the root package itself), classifies every `.rs` file by crate
//! and target kind, and pre-computes the `#[cfg(test)]` spans that most
//! rules skip. All paths are repo-root-relative so reports are stable
//! across machines.

use crate::lexer::{lex, Comment, Tok};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// What kind of compilation target a file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/**` — library, binaries under `src/bin/`, modules.
    Src,
    /// `examples/**`
    Example,
    /// `tests/**`
    Test,
    /// `benches/**`
    Bench,
}

/// One source file, classified.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Package name from the crate's `Cargo.toml` (e.g. `cvcp-engine`).
    pub crate_name: String,
    /// Path relative to the workspace root, with `/` separators.
    pub rel_path: String,
    pub kind: FileKind,
    pub text: String,
}

/// A lexed file plus its `#[cfg(test)]` line spans.
pub struct ParsedFile {
    pub file: SourceFile,
    pub tokens: Vec<Tok>,
    pub comments: Vec<Comment>,
    /// Inclusive 1-based line ranges covered by `#[cfg(test)]` items.
    pub test_spans: Vec<(usize, usize)>,
}

impl ParsedFile {
    pub fn parse(file: SourceFile) -> Self {
        let lexed = lex(&file.text);
        let test_spans = cfg_test_spans(&lexed.tokens);
        Self {
            file,
            tokens: lexed.tokens,
            comments: lexed.comments,
            test_spans,
        }
    }

    /// `true` when the line falls inside a `#[cfg(test)]` item.
    pub fn in_test_span(&self, line: usize) -> bool {
        self.test_spans.iter().any(|&(a, b)| a <= line && line <= b)
    }
}

/// Finds the line spans of items gated behind `#[cfg(test)]` — the
/// attribute, any stacked attributes after it, and the following
/// `mod … { … }` or `fn … { … }` body up to its matching brace.
fn cfg_test_spans(tokens: &[Tok]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if is_cfg_test_attr(tokens, i) {
            let start_line = tokens[i].line;
            // Skip this attribute group, then any further `#[...]` groups.
            let mut j = skip_attr(tokens, i);
            while j < tokens.len() && tokens[j].is_punct('#') {
                j = skip_attr(tokens, j);
            }
            // Find the item's opening brace (mod/fn/impl bodies). Stop at a
            // `;` (e.g. `#[cfg(test)] mod foo;` outline module: span is just
            // the declaration — the module file itself is under `tests
            // -adjacent` paths the walker already classifies).
            let mut k = j;
            while k < tokens.len() && !tokens[k].is_punct('{') && !tokens[k].is_punct(';') {
                k += 1;
            }
            if k < tokens.len() && tokens[k].is_punct('{') {
                let mut depth = 0usize;
                while k < tokens.len() {
                    if tokens[k].is_punct('{') {
                        depth += 1;
                    } else if tokens[k].is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
            }
            let end_line = tokens.get(k).map_or(start_line, |t| t.line);
            spans.push((start_line, end_line));
            i = k + 1;
        } else {
            i += 1;
        }
    }
    spans
}

/// Matches `# [ cfg ( test ) ]` and `# [ cfg ( all ( test , … ) ) ]`.
fn is_cfg_test_attr(tokens: &[Tok], i: usize) -> bool {
    if !(tokens[i].is_punct('#')
        && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
        && tokens.get(i + 2).and_then(Tok::ident) == Some("cfg"))
    {
        return false;
    }
    // Within the attribute group, require a bare `test` ident.
    let end = skip_attr(tokens, i);
    tokens[i..end].iter().any(|t| t.ident() == Some("test"))
}

/// Returns the index just past a `#[...]` group starting at `i`.
fn skip_attr(tokens: &[Tok], i: usize) -> usize {
    let mut j = i + 1; // at '['
    let mut depth = 0usize;
    while j < tokens.len() {
        if tokens[j].is_punct('[') {
            depth += 1;
        } else if tokens[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// A crate manifest, for the L1 lint-policy rule.
#[derive(Debug, Clone)]
pub struct Manifest {
    pub crate_name: String,
    pub rel_path: String,
    pub text: String,
    pub is_vendor: bool,
}

/// Everything the rules need from the repository.
pub struct Workspace {
    pub files: Vec<SourceFile>,
    pub manifests: Vec<Manifest>,
    /// Vendor crate name → its `src/lib.rs` text (rule L1 checks these
    /// for a crate-level `#![forbid(unsafe_code)]`).
    pub vendor_lib_sources: BTreeMap<String, String>,
    /// Root `Cargo.toml` text (workspace-level lint policy lives here).
    pub root_manifest: String,
    /// `EXPERIMENTS.md` text, when present (rule D3's knob table).
    pub experiments_md: Option<String>,
    /// `crates/obs/src/lock_rank.rs` text, when present (rule C1
    /// cross-checks its declared ranks).
    pub lock_rank_src: Option<String>,
}

impl Workspace {
    /// Loads the workspace rooted at `root` (the directory holding the
    /// workspace `Cargo.toml`).
    pub fn load(root: &Path) -> Result<Self, String> {
        let root_manifest_path = root.join("Cargo.toml");
        let root_manifest = fs::read_to_string(&root_manifest_path)
            .map_err(|e| format!("{}: {e}", root_manifest_path.display()))?;

        let mut member_dirs: Vec<PathBuf> = vec![root.to_path_buf()];
        for member in workspace_members(&root_manifest) {
            member_dirs.push(root.join(member));
        }

        let mut files = Vec::new();
        let mut manifests = Vec::new();
        let mut vendor_lib_sources = BTreeMap::new();
        for dir in &member_dirs {
            let manifest_path = dir.join("Cargo.toml");
            let text = fs::read_to_string(&manifest_path)
                .map_err(|e| format!("{}: {e}", manifest_path.display()))?;
            let crate_name = package_name(&text)
                .ok_or_else(|| format!("{}: no [package] name", manifest_path.display()))?;
            let rel_manifest = rel(root, &manifest_path);
            let is_vendor = rel_manifest.starts_with("crates/vendor/");
            manifests.push(Manifest {
                crate_name: crate_name.clone(),
                rel_path: rel_manifest,
                text,
                is_vendor,
            });
            if is_vendor {
                // Vendor shims are exempt from content rules entirely; only
                // their lib.rs is read, for the L1 forbid(unsafe_code) check.
                if let Ok(lib) = fs::read_to_string(dir.join("src/lib.rs")) {
                    vendor_lib_sources.insert(crate_name.clone(), lib);
                }
                continue;
            }
            for (sub, kind) in [
                ("src", FileKind::Src),
                ("examples", FileKind::Example),
                ("tests", FileKind::Test),
                ("benches", FileKind::Bench),
            ] {
                let sub_dir = dir.join(sub);
                if !sub_dir.is_dir() {
                    continue;
                }
                // The root package's src/ is a member dir AND the workspace
                // root; don't descend into crates/ from the root's walk.
                collect_rs_files(&sub_dir, &mut |path| {
                    files.push(SourceFile {
                        crate_name: crate_name.clone(),
                        rel_path: rel(root, path),
                        kind,
                        text: fs::read_to_string(path).unwrap_or_default(),
                    });
                });
            }
        }
        files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));

        Ok(Self {
            files,
            manifests,
            vendor_lib_sources,
            root_manifest,
            experiments_md: fs::read_to_string(root.join("EXPERIMENTS.md")).ok(),
            lock_rank_src: fs::read_to_string(root.join("crates/obs/src/lock_rank.rs")).ok(),
        })
    }
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn collect_rs_files(dir: &Path, push: &mut dyn FnMut(&Path)) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs_files(&path, push);
        } else if path.extension().is_some_and(|e| e == "rs") {
            push(&path);
        }
    }
}

/// Extracts `members = [ ... ]` entries from the workspace manifest.
/// Line-oriented: entries are one-per-line quoted strings, which is how
/// this repository (and rustfmt'd manifests generally) writes them.
fn workspace_members(manifest: &str) -> Vec<String> {
    let mut members = Vec::new();
    let mut in_members = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with("members") && line.contains('[') {
            in_members = true;
        }
        if in_members {
            if let Some(open) = line.find('"') {
                if let Some(close) = line[open + 1..].find('"') {
                    members.push(line[open + 1..open + 1 + close].to_string());
                }
            }
            if line.contains(']') {
                break;
            }
        }
    }
    members
}

/// Extracts the `name = "..."` from a `[package]` section.
fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package && line.starts_with("name") {
            let open = line.find('"')?;
            let close = line[open + 1..].find('"')?;
            return Some(line[open + 1..open + 1 + close].to_string());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        ParsedFile::parse(SourceFile {
            crate_name: "test-crate".into(),
            rel_path: "src/lib.rs".into(),
            kind: FileKind::Src,
            text: src.into(),
        })
    }

    #[test]
    fn cfg_test_mod_span_covers_the_body() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn after() {}\n";
        let parsed = parse(src);
        assert_eq!(parsed.test_spans, vec![(2, 5)]);
        assert!(!parsed.in_test_span(1));
        assert!(parsed.in_test_span(4));
        assert!(!parsed.in_test_span(6));
    }

    #[test]
    fn stacked_attributes_and_cfg_all_are_covered() {
        let src = "#[cfg(all(test, feature = \"x\"))]\n#[allow(dead_code)]\nfn probe() {\n}\n";
        let parsed = parse(src);
        assert_eq!(parsed.test_spans, vec![(1, 4)]);
    }

    #[test]
    fn members_parser_reads_this_shape() {
        let manifest = "[workspace]\nmembers = [\n    \"crates/a\",\n    \"crates/b\",\n]\n";
        assert_eq!(workspace_members(manifest), ["crates/a", "crates/b"]);
    }

    #[test]
    fn package_name_parser() {
        let manifest = "[package]\nname = \"cvcp-thing\"\nversion = \"0.1.0\"\n";
        assert_eq!(package_name(manifest).as_deref(), Some("cvcp-thing"));
    }
}
