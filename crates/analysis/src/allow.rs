//! Inline suppression comments.
//!
//! Syntax (line or block comment, anywhere a comment is legal):
//!
//! ```text
//! // cvcp: allow(D2, reason = "metrics-only timing, never reaches results")
//! ```
//!
//! Placement: a trailing allow suppresses violations on its own line; a
//! standalone allow suppresses violations on its own line *and* on the
//! next code line below it (so an allow can sit directly above the
//! offending statement, doc-comment style). The `reason` is mandatory —
//! an allow without one is itself reported — and every allow must
//! suppress something, or it is reported as unused (stale suppressions
//! rot into lies about the code).

use crate::lexer::Comment;
use crate::rules::Violation;
use std::cell::Cell;

/// One parsed `cvcp: allow(...)` suppression.
#[derive(Debug)]
pub struct Allow {
    pub rule: String,
    pub reason: Option<String>,
    /// File the comment lives in (repo-relative).
    pub file: String,
    /// Line of the comment itself.
    pub line: usize,
    /// Lines this allow suppresses.
    pub covers: Vec<usize>,
    used: Cell<bool>,
}

/// All allows of one analysis run, with use tracking.
#[derive(Debug, Default)]
pub struct AllowSet {
    allows: Vec<Allow>,
}

const MARKER: &str = "cvcp: allow(";

impl AllowSet {
    /// Parses the allow comments of one file and adds them to the set.
    /// `next_code_line` maps a comment line to the first following line
    /// holding a code token (for standalone comments).
    pub fn collect_file(
        &mut self,
        file: &str,
        comments: &[Comment],
        mut next_code_line: impl FnMut(usize) -> Option<usize>,
    ) {
        for c in comments {
            let Some(start) = c.text.find(MARKER) else {
                continue;
            };
            let body = &c.text[start + MARKER.len()..];
            let Some(close) = body.find(')') else {
                continue;
            };
            let inner = &body[..close];
            let (rule, reason) = match inner.split_once(',') {
                Some((r, rest)) => (r.trim().to_string(), parse_reason(rest)),
                None => (inner.trim().to_string(), None),
            };
            let mut covers = vec![c.line];
            if c.standalone {
                if let Some(next) = next_code_line(c.line) {
                    covers.push(next);
                }
            }
            self.allows.push(Allow {
                rule,
                reason,
                file: file.to_string(),
                line: c.line,
                covers,
                used: Cell::new(false),
            });
        }
    }

    /// `true` (and marks the allow used) when a violation of `rule` at
    /// `file:line` is suppressed.
    pub fn suppresses(&self, rule: &str, file: &str, line: usize) -> bool {
        let mut hit = false;
        for a in self
            .allows
            .iter()
            .filter(|a| a.rule == rule && a.file == file && a.covers.contains(&line))
        {
            a.used.set(true);
            hit = true;
        }
        hit
    }

    /// Governance violations: allows without a reason, and allows that
    /// suppressed nothing. Call after all rules have run.
    pub fn governance_violations(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        for a in &self.allows {
            if a.reason.as_deref().is_none_or(|r| r.trim().is_empty()) {
                out.push(Violation {
                    rule: "allow-no-reason".into(),
                    file: a.file.clone(),
                    line: a.line,
                    message: format!(
                        "allow({}) has no reason — write `cvcp: allow({}, reason = \"...\")`",
                        a.rule, a.rule
                    ),
                });
            }
            if !a.used.get() {
                out.push(Violation {
                    rule: "allow-unused".into(),
                    file: a.file.clone(),
                    line: a.line,
                    message: format!(
                        "allow({}) suppresses nothing — remove it or move it to the violation",
                        a.rule
                    ),
                });
            }
        }
        out
    }

    pub fn len(&self) -> usize {
        self.allows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.allows.is_empty()
    }
}

/// Parses ` reason = "..."` (quotes required; the reason may contain
/// anything but a double quote).
fn parse_reason(rest: &str) -> Option<String> {
    let rest = rest.trim();
    let rest = rest.strip_prefix("reason")?.trim_start();
    let rest = rest.strip_prefix('=')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn allows_for(src: &str) -> AllowSet {
        let lexed = lex(src);
        let tokens = lexed.tokens;
        let mut set = AllowSet::default();
        set.collect_file("src/x.rs", &lexed.comments, |line| {
            tokens.iter().map(|t| t.line).find(|&l| l > line)
        });
        set
    }

    #[test]
    fn trailing_allow_covers_its_own_line() {
        let set = allows_for("let x = 1; // cvcp: allow(D1, reason = \"why\")\nlet y = 2;\n");
        assert!(set.suppresses("D1", "src/x.rs", 1));
        assert!(!set.suppresses("D1", "src/x.rs", 2));
        assert!(!set.suppresses("D2", "src/x.rs", 1), "rule must match");
    }

    #[test]
    fn standalone_allow_covers_the_next_code_line() {
        let set = allows_for("// cvcp: allow(D2, reason = \"why\")\n\nlet x = 1;\n");
        assert!(set.suppresses("D2", "src/x.rs", 3));
    }

    #[test]
    fn missing_reason_is_reported_but_still_suppresses() {
        let set = allows_for("let x = 1; // cvcp: allow(D1)\n");
        assert!(set.suppresses("D1", "src/x.rs", 1));
        let gov = set.governance_violations();
        assert_eq!(gov.len(), 1);
        assert_eq!(gov[0].rule, "allow-no-reason");
    }

    #[test]
    fn unused_allow_is_reported() {
        let set = allows_for("// cvcp: allow(D1, reason = \"stale\")\nlet x = 1;\n");
        let gov = set.governance_violations();
        assert_eq!(gov.len(), 1);
        assert_eq!(gov[0].rule, "allow-unused");
    }

    #[test]
    fn used_allow_with_reason_is_clean() {
        let set = allows_for("let x = 1; // cvcp: allow(D1, reason = \"fine\")\n");
        assert!(set.suppresses("D1", "src/x.rs", 1));
        assert!(set.governance_violations().is_empty());
    }
}
