//! CLI entry point.
//!
//! ```text
//! cargo run -p cvcp-analysis --                 # report, always exit 0
//! cargo run -p cvcp-analysis -- --deny          # CI gate: exit 1 on any violation
//! cargo run -p cvcp-analysis -- --list-rules    # print the rule catalogue
//! cargo run -p cvcp-analysis -- --root <path>   # analyze another checkout
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--list-rules" => {
                for (id, what) in cvcp_analysis::rule_catalogue() {
                    println!("{id:<26} {what}");
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: cvcp-analysis [--deny] [--list-rules] [--root <path>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    // Walk up from the invocation directory to the workspace root (the
    // manifest that declares [workspace]), so the tool works from any
    // subdirectory of the checkout.
    let root = match find_workspace_root(&root) {
        Some(r) => r,
        None => {
            eprintln!(
                "no workspace Cargo.toml found at or above {}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };

    let report = match cvcp_analysis::analyze_root(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("analysis failed: {e}");
            return ExitCode::from(2);
        }
    };

    for v in &report.violations {
        println!("{v}");
    }
    println!(
        "cvcp-analysis: {} file(s), {} suppression(s), {} violation(s)",
        report.files,
        report.allows,
        report.violations.len()
    );

    if deny && !report.is_clean() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn find_workspace_root(start: &std::path::Path) -> Option<PathBuf> {
    let mut dir = start.canonicalize().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
