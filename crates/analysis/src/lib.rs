//! `cvcp-analysis` — an offline, std-only static-analysis pass for the
//! CVCP workspace.
//!
//! The paper's contract is that cross-validated selection results are a
//! pure function of (data, constraints, parameters, seed). The type
//! system cannot see the ways that contract erodes — a `HashMap`
//! iteration leaking into a score, a wall-clock read drifting into a
//! result path, an environment knob nobody documented, a mutex acquired
//! against the global order. Each rule here pins one of those:
//!
//! | rule | what it enforces |
//! |------|------------------|
//! | `D1` | no `HashMap`/`HashSet` in result-path crates |
//! | `D2` | no `Instant::now`/`SystemTime` outside obs/server/bench |
//! | `D3` | env knobs ↔ EXPERIMENTS.md knob table, synced both ways |
//! | `D4` | no thread-identity / worker-count reads in result paths |
//! | `C1` | static lock-nesting graph obeys the declared rank order |
//! | `L1` | the no-unsafe policy is workspace-owned and universal |
//!
//! Violations are suppressed site-by-site with
//! `// cvcp: allow(<rule>, reason = "...")`; a reason is mandatory and
//! unused allows are themselves violations, so the suppression inventory
//! stays honest. `C1`'s runtime twin is `cvcp_obs::lock_rank`, which
//! asserts the same order on real executions under `debug_assertions`.

pub mod allow;
pub mod lexer;
pub mod locks;
pub mod rules;
pub mod workspace;

use allow::AllowSet;
use rules::Violation;
use std::path::Path;
use workspace::{ParsedFile, Workspace};

/// Everything one analysis run produced.
#[derive(Debug)]
pub struct Report {
    pub violations: Vec<Violation>,
    /// Number of `cvcp: allow(...)` suppressions encountered (used or not).
    pub allows: usize,
    /// Number of files scanned.
    pub files: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The rule catalogue, for `--list-rules`.
pub fn rule_catalogue() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "D1",
            "no HashMap/HashSet in result-path crates (data, density, constraints, kmeans, metrics, core)",
        ),
        (
            "D2",
            "no Instant::now/SystemTime clock reads outside obs/server/bench; engine metrics timing needs an allow",
        ),
        (
            "D3",
            "every env::var read names a CVCP_* knob documented in EXPERIMENTS.md, and every documented knob is read",
        ),
        (
            "D4",
            "no thread::current/ThreadId/available_parallelism in result-path crates",
        ),
        (
            "C1",
            "static lock-nesting graph over engine/server/obs/core obeys queue(10) < pool(20) < shard(30) < profile(40), acyclic, no unregistered lock sites",
        ),
        (
            "L1",
            "unsafe_code=forbid owned by [workspace.lints]; every first-party crate opts in; vendor shims keep #![forbid(unsafe_code)]",
        ),
        (
            "allow-no-reason / allow-unused",
            "every suppression carries a reason and suppresses something",
        ),
    ]
}

/// Runs every rule over pre-loaded workspace content. Split from
/// [`analyze_root`] so tests can feed fixture files without touching disk.
pub fn analyze_workspace(ws: &Workspace) -> Report {
    let parsed: Vec<ParsedFile> = ws.files.iter().cloned().map(ParsedFile::parse).collect();

    // Collect suppressions first: any rule may consult them. Only from
    // files the rules actually scan — `cvcp-analysis` itself documents
    // the allow syntax in prose, and tests/benches are rule-exempt, so
    // allows there could only ever be unused.
    let mut allows = AllowSet::default();
    for p in &parsed {
        if p.file.crate_name == "cvcp-analysis"
            || matches!(
                p.file.kind,
                workspace::FileKind::Test | workspace::FileKind::Bench
            )
        {
            continue;
        }
        let tokens = &p.tokens;
        allows.collect_file(&p.file.rel_path, &p.comments, |line| {
            tokens.iter().map(|t| t.line).find(|&l| l > line)
        });
    }

    let mut violations = Vec::new();
    for p in &parsed {
        rules::rule_d1(p, &allows, &mut violations);
        rules::rule_d2(p, &allows, &mut violations);
        rules::rule_d4(p, &allows, &mut violations);
    }
    rules::rule_d3(
        &parsed,
        ws.experiments_md.as_deref(),
        &allows,
        &mut violations,
    );
    locks::rule_c1(
        &parsed,
        ws.lock_rank_src.as_deref(),
        &allows,
        &mut violations,
    );

    rules::rule_l1(
        &ws.root_manifest,
        &ws.manifests,
        &ws.vendor_lib_sources,
        &mut violations,
    );

    violations.extend(allows.governance_violations());
    violations.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));

    Report {
        violations,
        allows: allows.len(),
        files: parsed.len(),
    }
}

/// Loads the workspace at `root` from disk and analyzes it.
pub fn analyze_root(root: &Path) -> Result<Report, String> {
    let ws = Workspace::load(root)?;
    Ok(analyze_workspace(&ws))
}
