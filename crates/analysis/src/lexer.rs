//! A minimal Rust lexer — just enough fidelity for the analysis rules.
//!
//! The rules pattern-match on identifier/punctuation sequences
//! (`Instant :: now`, `. lock (`), on string-literal *values*
//! (`"CVCP_THREADS"`), and on comments (`// cvcp: allow(...)`), so the
//! lexer must get exactly four things right that a naive `contains`
//! scan gets wrong:
//!
//! 1. string and char literals (including raw strings and escapes) must
//!    not leak their contents into the token stream as code;
//! 2. lifetimes (`'a`) must not be confused with char literals (`'a'`);
//! 3. comments — line, block, nested block — must be stripped from the
//!    code stream but *kept* (with line numbers) for the allow parser;
//! 4. every token carries its 1-based source line so violations and
//!    suppressions anchor to real locations.
//!
//! Everything else (numeric suffix grammar, float edge cases, shebangs)
//! is handled loosely: the scanner only needs to not desynchronise.

/// One lexical token of interest to the rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident(String),
    /// Single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
    /// String literal — the *cooked-ish* contents between the quotes
    /// (escape sequences are left as written; the rules only look at
    /// literals like `"CVCP_THREADS"` that contain none).
    Str(String),
    /// Char literal (contents irrelevant to the rules).
    Char,
    /// Lifetime such as `'a` (distinct from a char literal).
    Lifetime,
    /// Numeric literal (contents irrelevant to the rules).
    Num,
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub line: usize,
    pub kind: TokKind,
}

/// A comment, preserved for the allow parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// Text without the `//` / `/*` markers, trimmed.
    pub text: String,
    /// `true` when no code token precedes the comment on its line.
    pub standalone: bool,
}

/// Lexer output: the code token stream and the comment side channel.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Tok>,
    pub comments: Vec<Comment>,
}

/// Lexes Rust source. Never fails: on a malformed literal the scanner
/// consumes to end of line/file and keeps going — a static-analysis
/// pass should degrade, not abort, on code `rustc` will reject anyway.
pub fn lex(src: &str) -> Lexed {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1usize;
    // Line of the most recent code token, to classify comments as
    // standalone vs trailing.
    let mut last_code_line = 0usize;

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&'/') => {
                let start = i + 2;
                let mut j = start;
                while j < bytes.len() && bytes[j] != '\n' {
                    j += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: bytes[start..j]
                        .iter()
                        .collect::<String>()
                        .trim()
                        .to_string(),
                    standalone: last_code_line != line,
                });
                i = j;
            }
            '/' if bytes.get(i + 1) == Some(&'*') => {
                let start_line = line;
                let start = i + 2;
                let mut depth = 1usize;
                let mut j = start;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if bytes[j] == '/' && bytes.get(j + 1) == Some(&'*') {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == '*' && bytes.get(j + 1) == Some(&'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let end = j.saturating_sub(2).max(start);
                out.comments.push(Comment {
                    line: start_line,
                    text: bytes[start..end]
                        .iter()
                        .collect::<String>()
                        .trim()
                        .to_string(),
                    standalone: last_code_line != start_line,
                });
                i = j;
            }
            '"' => {
                let (value, next_i, next_line) = scan_string(&bytes, i + 1, line);
                out.tokens.push(Tok {
                    line,
                    kind: TokKind::Str(value),
                });
                last_code_line = line;
                line = next_line;
                i = next_i;
            }
            'r' | 'b' if is_raw_or_byte_string(&bytes, i) => {
                let (kind, next_i, next_line) = scan_prefixed_literal(&bytes, i, line);
                out.tokens.push(Tok { line, kind });
                last_code_line = line;
                line = next_line;
                i = next_i;
            }
            '\'' => {
                // Lifetime vs char literal: `'ident` not followed by a
                // closing quote is a lifetime.
                let mut j = i + 1;
                if j < bytes.len() && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                    let mut k = j;
                    while k < bytes.len() && (bytes[k].is_alphanumeric() || bytes[k] == '_') {
                        k += 1;
                    }
                    if bytes.get(k) != Some(&'\'') {
                        out.tokens.push(Tok {
                            line,
                            kind: TokKind::Lifetime,
                        });
                        last_code_line = line;
                        i = k;
                        continue;
                    }
                    // `'x'` char literal
                    out.tokens.push(Tok {
                        line,
                        kind: TokKind::Char,
                    });
                    last_code_line = line;
                    i = k + 1;
                    continue;
                }
                // Escaped char literal `'\n'`, `'\''`, `'\u{..}'`.
                if bytes.get(j) == Some(&'\\') {
                    j += 2; // skip the escape introducer and escaped char
                    while j < bytes.len() && bytes[j] != '\'' && bytes[j] != '\n' {
                        j += 1;
                    }
                    out.tokens.push(Tok {
                        line,
                        kind: TokKind::Char,
                    });
                    last_code_line = line;
                    i = (j + 1).min(bytes.len());
                    continue;
                }
                // Bare `'` (malformed or macro edge): emit as punct.
                out.tokens.push(Tok {
                    line,
                    kind: TokKind::Punct('\''),
                });
                last_code_line = line;
                i += 1;
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                out.tokens.push(Tok {
                    line,
                    kind: TokKind::Ident(bytes[start..i].iter().collect()),
                });
                last_code_line = line;
            }
            c if c.is_ascii_digit() => {
                while i < bytes.len()
                    && (bytes[i].is_alphanumeric()
                        || bytes[i] == '_'
                        || (bytes[i] == '.'
                            && bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit())
                            && bytes.get(i.wrapping_sub(1)) != Some(&'.')))
                {
                    i += 1;
                }
                out.tokens.push(Tok {
                    line,
                    kind: TokKind::Num,
                });
                last_code_line = line;
            }
            p => {
                out.tokens.push(Tok {
                    line,
                    kind: TokKind::Punct(p),
                });
                last_code_line = line;
                i += 1;
            }
        }
    }
    out
}

/// `r"..."`, `r#"..."#`, `b"..."`, `br"..."`, `b'x'` — but NOT a plain
/// identifier starting with `r`/`b`.
fn is_raw_or_byte_string(bytes: &[char], i: usize) -> bool {
    match bytes[i] {
        'r' => {
            matches!(bytes.get(i + 1), Some('"') | Some('#'))
                && raw_hashes_lead_to_quote(bytes, i + 1)
        }
        'b' => match bytes.get(i + 1) {
            Some('"') | Some('\'') => true,
            Some('r') => raw_hashes_lead_to_quote(bytes, i + 2),
            _ => false,
        },
        _ => false,
    }
}

fn raw_hashes_lead_to_quote(bytes: &[char], mut i: usize) -> bool {
    while bytes.get(i) == Some(&'#') {
        i += 1;
    }
    bytes.get(i) == Some(&'"')
}

/// Scans a normal (escaped) string body starting just after the opening
/// quote. Returns (contents, index past closing quote, updated line).
fn scan_string(bytes: &[char], mut i: usize, mut line: usize) -> (String, usize, usize) {
    let mut value = String::new();
    while i < bytes.len() {
        match bytes[i] {
            '"' => return (value, i + 1, line),
            '\\' => {
                if let Some(&esc) = bytes.get(i + 1) {
                    value.push('\\');
                    value.push(esc);
                    if esc == '\n' {
                        line += 1;
                    }
                    i += 2;
                } else {
                    i += 1;
                }
            }
            '\n' => {
                line += 1;
                value.push('\n');
                i += 1;
            }
            c => {
                value.push(c);
                i += 1;
            }
        }
    }
    (value, i, line)
}

/// Scans `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'x'` from the prefix
/// character. Returns (token kind, index past the literal, updated line).
fn scan_prefixed_literal(bytes: &[char], mut i: usize, mut line: usize) -> (TokKind, usize, usize) {
    let mut _byte = false;
    if bytes[i] == 'b' {
        _byte = true;
        i += 1;
    }
    if bytes.get(i) == Some(&'\'') {
        // byte char b'x' / b'\n'
        i += 1;
        if bytes.get(i) == Some(&'\\') {
            i += 1;
        }
        while i < bytes.len() && bytes[i] != '\'' {
            i += 1;
        }
        return (TokKind::Char, (i + 1).min(bytes.len()), line);
    }
    let raw = bytes.get(i) == Some(&'r');
    if raw {
        i += 1;
    }
    let mut hashes = 0usize;
    while bytes.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    debug_assert_eq!(bytes.get(i), Some(&'"'));
    i += 1; // opening quote
    if !raw {
        let (value, next_i, next_line) = scan_string(bytes, i, line);
        return (TokKind::Str(value), next_i, next_line);
    }
    // Raw string: no escapes; terminated by `"` followed by `hashes` #s.
    let start = i;
    while i < bytes.len() {
        if bytes[i] == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if bytes[i] == '"' {
            let mut k = 0usize;
            while k < hashes && bytes.get(i + 1 + k) == Some(&'#') {
                k += 1;
            }
            if k == hashes {
                let value: String = bytes[start..i].iter().collect();
                return (TokKind::Str(value), i + 1 + hashes, line);
            }
        }
        i += 1;
    }
    (TokKind::Str(bytes[start..i].iter().collect()), i, line)
}

impl Tok {
    /// Convenience: `Some(name)` when this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Convenience: `true` when this token is the given punct char.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn strings_do_not_leak_into_code_tokens() {
        let src = r#"let x = "HashMap inside a string"; let y = 1;"#;
        assert_eq!(idents(src), ["let", "x", "let", "y"]);
    }

    #[test]
    fn raw_strings_and_hashes() {
        let lexed = lex(r##"let s = r#"a "quoted" CVCP_THING"#;"##);
        let strs: Vec<&str> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strs, [r#"a "quoted" CVCP_THING"#]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .count();
        assert_eq!((lifetimes, chars), (2, 1));
    }

    #[test]
    fn nested_block_comments_and_line_numbers() {
        let src = "/* outer /* inner */ still comment */\nfn g() {}\n// trailing\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.tokens[0].line, 2);
        assert_eq!(lexed.comments[1].line, 3);
        assert!(lexed.comments[1].standalone);
    }

    #[test]
    fn trailing_comments_are_not_standalone() {
        let lexed = lex("let x = 1; // cvcp: allow(D1, reason = \"test\")\n");
        assert_eq!(lexed.comments.len(), 1);
        assert!(!lexed.comments[0].standalone);
        assert!(lexed.comments[0].text.starts_with("cvcp: allow"));
    }

    #[test]
    fn escaped_quotes_in_strings() {
        let lexed = lex(r#"let s = "with \" escaped"; let t = 2;"#);
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| matches!(t.kind, TokKind::Str(_)))
                .count(),
            1
        );
        assert_eq!(
            idents(r#"let s = "with \" escaped"; let t = 2;"#),
            ["let", "s", "let", "t"]
        );
    }
}
