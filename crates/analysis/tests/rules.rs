//! Integration tests: each rule against its fixture file, suppression
//! round-trips, and — the acceptance criterion of the pass itself — the
//! real workspace analyzing clean.
//!
//! Fixtures live under `tests/fixtures/` (not compiled by cargo; pulled
//! in as text with `include_str!`) and are fed through the same
//! [`cvcp_analysis::analyze_workspace`] entry point the CLI uses, via an
//! in-memory [`Workspace`].

use cvcp_analysis::rules::Violation;
use cvcp_analysis::workspace::{FileKind, SourceFile, Workspace};
use cvcp_analysis::{analyze_root, analyze_workspace};
use std::collections::BTreeMap;
use std::path::Path;

/// A minimal root manifest that satisfies L1.
const ROOT_MANIFEST: &str = r#"
[workspace]
members = []

[workspace.lints.rust]
unsafe_code = "forbid"
"#;

const EXPERIMENTS_MD: &str = "\
# knobs\n\
| knob | meaning |\n\
|------|---------|\n\
| `CVCP_FIXTURE_KNOB` | referenced by the d3 fixture |\n\
| `CVCP_ORPHAN_KNOB` | documented but read by nothing |\n";

fn ws(files: Vec<SourceFile>) -> Workspace {
    Workspace {
        files,
        manifests: Vec::new(),
        vendor_lib_sources: BTreeMap::new(),
        root_manifest: ROOT_MANIFEST.to_string(),
        // No knob table by default: D3's orphan-knob direction would leak
        // findings into every unrelated test. The D3 test opts in.
        experiments_md: None,
        lock_rank_src: None,
    }
}

fn with_knob_table(mut ws: Workspace) -> Workspace {
    ws.experiments_md = Some(EXPERIMENTS_MD.to_string());
    ws
}

fn file(crate_name: &str, rel_path: &str, text: &str) -> SourceFile {
    SourceFile {
        crate_name: crate_name.into(),
        rel_path: rel_path.into(),
        kind: FileKind::Src,
        text: text.into(),
    }
}

fn rules_of(violations: &[Violation]) -> Vec<&str> {
    violations.iter().map(|v| v.rule.as_str()).collect()
}

#[test]
fn d1_fixture_flags_each_hash_collection_outside_tests() {
    let report = analyze_workspace(&ws(vec![file(
        "cvcp-density",
        "crates/density/src/fixture.rs",
        include_str!("fixtures/d1_violation.rs"),
    )]));
    let d1: Vec<&Violation> = report
        .violations
        .iter()
        .filter(|v| v.rule == "D1")
        .collect();
    // use-line (2 idents), return type, constructor — the cfg(test) HashSet
    // uses are skipped.
    assert_eq!(d1.len(), 4, "{:?}", report.violations);
    assert!(d1.iter().all(|v| v.line <= 7), "{d1:?}");
}

#[test]
fn d1_suppressions_round_trip_and_count_as_used() {
    let report = analyze_workspace(&ws(vec![file(
        "cvcp-density",
        "crates/density/src/fixture.rs",
        include_str!("fixtures/d1_allowed.rs"),
    )]));
    // Both the trailing and the standalone allow suppress their site, carry
    // reasons, and are used — nothing at all is reported.
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert_eq!(report.allows, 2);
}

#[test]
fn d2_fixture_flags_clock_reads_but_not_type_mentions_or_strings() {
    let report = analyze_workspace(&ws(vec![file(
        "cvcp-engine",
        "crates/engine/src/fixture.rs",
        include_str!("fixtures/d2_violation.rs"),
    )]));
    let d2: Vec<&Violation> = report
        .violations
        .iter()
        .filter(|v| v.rule == "D2")
        .collect();
    // Instant::now and SystemTime on line 9 — not the field type on line 5,
    // not the string literal.
    assert_eq!(d2.len(), 2, "{:?}", report.violations);
    assert!(d2.iter().all(|v| v.line == 9), "{d2:?}");
}

#[test]
fn d2_ignores_exempt_crates() {
    let report = analyze_workspace(&ws(vec![file(
        "cvcp-obs",
        "crates/obs/src/fixture.rs",
        include_str!("fixtures/d2_violation.rs"),
    )]));
    assert!(
        !rules_of(&report.violations).contains(&"D2"),
        "{:?}",
        report.violations
    );
}

#[test]
fn d3_fixture_flags_undocumented_non_cvcp_dynamic_and_orphan() {
    let report = analyze_workspace(&with_knob_table(ws(vec![file(
        "cvcp-experiments",
        "crates/experiments/src/fixture.rs",
        include_str!("fixtures/d3_violations.rs"),
    )])));
    let d3: Vec<&Violation> = report
        .violations
        .iter()
        .filter(|v| v.rule == "D3")
        .collect();
    assert_eq!(d3.len(), 4, "{:?}", report.violations);
    let messages: String = d3
        .iter()
        .map(|v| v.message.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(messages.contains("CVCP_UNDOCUMENTED_KNOB"), "{messages}");
    assert!(
        messages.contains("non-CVCP variable `\"HOME\"`"),
        "{messages}"
    );
    assert!(messages.contains("non-literal name"), "{messages}");
    // ...and the documented-but-unread knob is flagged on the md side.
    let orphan = d3
        .iter()
        .find(|v| v.file == "EXPERIMENTS.md")
        .expect("orphan knob");
    assert!(
        orphan.message.contains("CVCP_ORPHAN_KNOB"),
        "{}",
        orphan.message
    );
    // The documented and referenced knob is NOT flagged.
    assert!(!messages.contains("CVCP_FIXTURE_KNOB"), "{messages}");
}

#[test]
fn d4_fixture_flags_thread_identity_reads() {
    let report = analyze_workspace(&ws(vec![file(
        "cvcp-core",
        "crates/core/src/fixture.rs",
        include_str!("fixtures/d4_violation.rs"),
    )]));
    let d4: Vec<&Violation> = report
        .violations
        .iter()
        .filter(|v| v.rule == "D4")
        .collect();
    assert_eq!(d4.len(), 2, "{:?}", report.violations);
}

#[test]
fn c1_fixture_flags_reversed_nesting() {
    let report = analyze_workspace(&ws(vec![file(
        "cvcp-engine",
        "crates/engine/src/fixture.rs",
        include_str!("fixtures/c1_reversed.rs"),
    )]));
    let c1: Vec<&Violation> = report
        .violations
        .iter()
        .filter(|v| v.rule == "C1")
        .collect();
    assert_eq!(c1.len(), 1, "{:?}", report.violations);
    assert!(
        c1[0].message.contains("while holding `cache-shard`"),
        "{}",
        c1[0].message
    );
}

#[test]
fn clean_fixture_reports_nothing() {
    let report = analyze_workspace(&ws(vec![file(
        "cvcp-density",
        "crates/density/src/fixture.rs",
        include_str!("fixtures/clean.rs"),
    )]));
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

#[test]
fn unused_and_reasonless_allows_are_reported() {
    let src = "\
// cvcp: allow(D1, reason = \"nothing here to suppress\")\npub fn clean() {}\n\
pub fn x() -> std::collections::HashMap<u8, u8> { std::collections::HashMap::new() } // cvcp: allow(D1)\n";
    let report = analyze_workspace(&ws(vec![file(
        "cvcp-density",
        "crates/density/src/fixture.rs",
        src,
    )]));
    let rules = rules_of(&report.violations);
    assert!(rules.contains(&"allow-unused"), "{:?}", report.violations);
    assert!(
        rules.contains(&"allow-no-reason"),
        "{:?}",
        report.violations
    );
    // The reasonless allow still suppresses: no D1 violation escapes.
    assert!(!rules.contains(&"D1"), "{:?}", report.violations);
}

/// The acceptance criterion of ISSUE 7: the real workspace is clean under
/// `--deny` with zero unjustified suppressions.
#[test]
fn the_actual_workspace_analyzes_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let report = analyze_root(root).expect("workspace loads");
    assert!(
        report.is_clean(),
        "workspace has violations:\n{}",
        report
            .violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.files > 100,
        "walker found only {} files",
        report.files
    );
}
