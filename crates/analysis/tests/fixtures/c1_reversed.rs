// Fixture: cache-shard lock held while taking the pool lock (rule C1).
pub fn reversed(s: &Shared) {
    let map = s.map.lock().expect("shard");
    let state = s.state.lock().expect("pool");
    let _ = (map, state);
}
