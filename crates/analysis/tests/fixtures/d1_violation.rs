// Fixture: HashMap/HashSet in a result-path crate (rule D1).
use std::collections::{HashMap, HashSet};

pub fn scores() -> HashMap<usize, f64> {
    let mut m = HashMap::new();
    m.insert(1, 0.5);
    m
}

#[cfg(test)]
mod tests {
    // HashSet in a test module is fine.
    fn helper() -> std::collections::HashSet<u32> {
        std::collections::HashSet::new()
    }
}
