// Fixture: env-knob doc-sync breaks (rule D3).
pub fn undocumented() -> Option<String> {
    std::env::var("CVCP_UNDOCUMENTED_KNOB").ok()
}

pub fn non_cvcp() -> Option<String> {
    std::env::var("HOME").ok()
}

pub fn dynamic(name: &str) -> Option<String> {
    std::env::var(name).ok()
}

pub fn documented() -> Option<String> {
    std::env::var("CVCP_FIXTURE_KNOB").ok()
}
