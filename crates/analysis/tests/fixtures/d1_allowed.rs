// Fixture: a justified, suppressed hash-map use.
use std::collections::HashMap; // cvcp: allow(D1, reason = "fixture: justified use")

// cvcp: allow(D1, reason = "fixture: standalone allow above the site")
pub fn build() -> HashMap<usize, f64> {
    lookup()
}
