// Fixture: thread-identity reads in a result-path crate (rule D4).
pub fn worker_dependent_seed() -> u64 {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let id = std::thread::current().id();
    let _ = id;
    threads as u64
}
