// Fixture: nothing to report.
use std::collections::BTreeMap;

pub fn deterministic() -> BTreeMap<usize, f64> {
    BTreeMap::new()
}
