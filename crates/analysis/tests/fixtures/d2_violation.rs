// Fixture: clock reads in a non-exempt crate (rule D2).
use std::time::{Instant, SystemTime};

pub struct Stamped {
    pub at: Instant, // type mention only: not a violation
}

pub fn now_twice() -> (Instant, SystemTime) {
    (Instant::now(), SystemTime::now())
}

pub fn in_a_string() -> &'static str {
    "Instant::now() inside a string literal is not a clock read"
}
