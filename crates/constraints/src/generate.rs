//! Generation of side information from ground-truth labels.
//!
//! The paper evaluates two forms of side information:
//!
//! * **Scenario I — labelled objects**: a random x% of all objects (5, 10 or
//!   20 % in the paper) is revealed with its ground-truth label.
//! * **Scenario II — pairwise constraints**: a *constraint pool* is built by
//!   selecting 10 % of the objects of each class and generating **all**
//!   pairwise constraints among the selected objects (must-link for equal
//!   labels, cannot-link otherwise); experiments then sample 10, 20 or 50 %
//!   of that pool.

use crate::constraint::ConstraintSet;
use cvcp_data::rng::SeededRng;

/// A subset of objects with revealed ground-truth labels (Scenario I input).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabeledSubset {
    /// Total number of objects in the data set.
    n_objects: usize,
    /// Indices of the labelled objects (sorted, unique).
    indices: Vec<usize>,
    /// Ground-truth labels, parallel to `indices`.
    labels: Vec<usize>,
}

impl LabeledSubset {
    /// Creates a labelled subset.
    ///
    /// # Panics
    ///
    /// Panics if `indices` and `labels` differ in length, contain duplicates,
    /// or reference objects `>= n_objects`.
    pub fn new(n_objects: usize, mut indices: Vec<usize>, mut labels: Vec<usize>) -> Self {
        assert_eq!(
            indices.len(),
            labels.len(),
            "indices/labels length mismatch"
        );
        assert!(
            indices.iter().all(|&i| i < n_objects),
            "labelled object out of range"
        );
        // sort by index for determinism
        let mut order: Vec<usize> = (0..indices.len()).collect();
        order.sort_by_key(|&i| indices[i]);
        indices = order.iter().map(|&i| indices[i]).collect();
        labels = order.iter().map(|&i| labels[i]).collect();
        for w in indices.windows(2) {
            assert!(w[0] != w[1], "duplicate labelled object {}", w[0]);
        }
        Self {
            n_objects,
            indices,
            labels,
        }
    }

    /// Builds the subset by revealing labels of `indices` from a full
    /// ground-truth labelling.
    pub fn from_ground_truth(ground_truth: &[usize], indices: &[usize]) -> Self {
        let labels = indices.iter().map(|&i| ground_truth[i]).collect();
        Self::new(ground_truth.len(), indices.to_vec(), labels)
    }

    /// Total number of objects in the data set (not just labelled ones).
    pub fn n_objects(&self) -> usize {
        self.n_objects
    }

    /// Number of labelled objects.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// `true` when no objects are labelled.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Indices of labelled objects (sorted).
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Labels parallel to [`LabeledSubset::indices`].
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Iterates over `(object, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.indices
            .iter()
            .copied()
            .zip(self.labels.iter().copied())
    }

    /// The label of object `i` if it is in the subset.
    pub fn label_of(&self, i: usize) -> Option<usize> {
        self.indices
            .binary_search(&i)
            .ok()
            .map(|pos| self.labels[pos])
    }

    /// Restricts the subset to the given objects (those not labelled are
    /// silently dropped).
    pub fn restrict(&self, objects: &[usize]) -> LabeledSubset {
        let keep: std::collections::BTreeSet<usize> = objects.iter().copied().collect();
        let mut idx = Vec::new();
        let mut lab = Vec::new();
        for (i, l) in self.iter() {
            if keep.contains(&i) {
                idx.push(i);
                lab.push(l);
            }
        }
        LabeledSubset::new(self.n_objects, idx, lab)
    }

    /// Derives all pairwise constraints among the labelled objects:
    /// must-link for equal labels, cannot-link otherwise.
    pub fn to_constraints(&self) -> ConstraintSet {
        let mut set = ConstraintSet::new(self.n_objects);
        for i in 0..self.indices.len() {
            for j in (i + 1)..self.indices.len() {
                let (a, b) = (self.indices[i], self.indices[j]);
                if self.labels[i] == self.labels[j] {
                    set.add_must_link(a, b);
                } else {
                    set.add_cannot_link(a, b);
                }
            }
        }
        set
    }
}

/// Derives all pairwise constraints among `indices` from a full ground-truth
/// labelling (convenience wrapper over [`LabeledSubset::to_constraints`]).
pub fn constraints_from_labels(ground_truth: &[usize], indices: &[usize]) -> ConstraintSet {
    LabeledSubset::from_ground_truth(ground_truth, indices).to_constraints()
}

/// Samples a random fraction of objects to label (Scenario I input).
///
/// `fraction` is the share of *all* objects to reveal (the paper uses 0.05,
/// 0.10 and 0.20).  Sampling is stratified by class so that every class has a
/// chance to contribute; each class reveals at least `min_per_class` objects
/// (2 by default in the paper-style experiments so that at least one
/// must-link per class is possible).
pub fn sample_labeled_subset(
    ground_truth: &[usize],
    fraction: f64,
    min_per_class: usize,
    rng: &mut SeededRng,
) -> LabeledSubset {
    let indices = rng.stratified_fraction(ground_truth, fraction, min_per_class);
    LabeledSubset::from_ground_truth(ground_truth, &indices)
}

/// Builds the paper's *constraint pool*: select `fraction_per_class`
/// (10 % in the paper) of the objects of each class at random and generate
/// all pairwise constraints among the selected objects.
pub fn constraint_pool(
    ground_truth: &[usize],
    fraction_per_class: f64,
    min_per_class: usize,
    rng: &mut SeededRng,
) -> ConstraintSet {
    let indices = rng.stratified_fraction(ground_truth, fraction_per_class, min_per_class);
    constraints_from_labels(ground_truth, &indices)
}

/// Samples `fraction` of a constraint pool without replacement
/// (10 / 20 / 50 % in the paper).  At least one constraint is returned when
/// the pool is non-empty and `fraction > 0`.
pub fn sample_constraints(
    pool: &ConstraintSet,
    fraction: f64,
    rng: &mut SeededRng,
) -> ConstraintSet {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
    let all: Vec<_> = pool.iter().copied().collect();
    if all.is_empty() || fraction == 0.0 {
        return ConstraintSet::new(pool.n_objects());
    }
    let want = ((all.len() as f64 * fraction).round() as usize).clamp(1, all.len());
    let chosen = rng.sample(&all, want);
    ConstraintSet::from_constraints(pool.n_objects(), chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint;
    use proptest::prelude::*;

    fn truth() -> Vec<usize> {
        // 3 classes: 0..4 -> 0, 4..8 -> 1, 8..12 -> 2
        vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]
    }

    #[test]
    fn labeled_subset_basic() {
        let s = LabeledSubset::from_ground_truth(&truth(), &[0, 5, 9]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.label_of(5), Some(1));
        assert_eq!(s.label_of(1), None);
        assert_eq!(s.n_objects(), 12);
    }

    #[test]
    fn labeled_subset_sorts_by_index() {
        let s = LabeledSubset::new(10, vec![7, 2, 5], vec![1, 0, 1]);
        assert_eq!(s.indices(), &[2, 5, 7]);
        assert_eq!(s.labels(), &[0, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn labeled_subset_rejects_duplicates() {
        let _ = LabeledSubset::new(10, vec![1, 1], vec![0, 0]);
    }

    #[test]
    fn to_constraints_all_pairs() {
        let s = LabeledSubset::from_ground_truth(&truth(), &[0, 1, 4]);
        let c = s.to_constraints();
        assert_eq!(c.len(), 3);
        assert!(c.contains(&Constraint::must_link(0, 1)));
        assert!(c.contains(&Constraint::cannot_link(0, 4)));
        assert!(c.contains(&Constraint::cannot_link(1, 4)));
    }

    #[test]
    fn restrict_drops_outside_objects() {
        let s = LabeledSubset::from_ground_truth(&truth(), &[0, 1, 4, 8]);
        let r = s.restrict(&[1, 8, 11]);
        assert_eq!(r.indices(), &[1, 8]);
    }

    #[test]
    fn sample_labeled_subset_fraction_and_strata() {
        let gt = truth();
        let mut rng = SeededRng::new(1);
        let s = sample_labeled_subset(&gt, 0.5, 1, &mut rng);
        // 50% of 12 = 6 objects, 2 per class
        assert_eq!(s.len(), 6);
        let mut classes: Vec<usize> = s.labels().to_vec();
        classes.sort_unstable();
        classes.dedup();
        assert_eq!(classes, vec![0, 1, 2]);
    }

    #[test]
    fn constraint_pool_is_label_consistent_and_complete() {
        let gt = truth();
        let mut rng = SeededRng::new(2);
        let pool = constraint_pool(&gt, 0.5, 2, &mut rng);
        // 2 objects per class selected => 6 objects => C(6,2)=15 constraints
        assert_eq!(pool.len(), 15);
        for c in pool.iter() {
            match c.kind {
                crate::constraint::ConstraintKind::MustLink => {
                    assert_eq!(gt[c.a], gt[c.b])
                }
                crate::constraint::ConstraintKind::CannotLink => {
                    assert_ne!(gt[c.a], gt[c.b])
                }
            }
        }
    }

    #[test]
    fn sample_constraints_size() {
        let gt = truth();
        let mut rng = SeededRng::new(3);
        let pool = constraint_pool(&gt, 1.0, 1, &mut rng);
        let half = sample_constraints(&pool, 0.5, &mut rng);
        assert_eq!(half.len(), (pool.len() as f64 * 0.5).round() as usize);
        let none = sample_constraints(&pool, 0.0, &mut rng);
        assert!(none.is_empty());
        let tiny = sample_constraints(&pool, 0.0001, &mut rng);
        assert_eq!(
            tiny.len(),
            1,
            "at least one constraint for positive fractions"
        );
    }

    #[test]
    fn sample_constraints_subset_of_pool() {
        let gt = truth();
        let mut rng = SeededRng::new(4);
        let pool = constraint_pool(&gt, 1.0, 1, &mut rng);
        let sampled = sample_constraints(&pool, 0.3, &mut rng);
        for c in sampled.iter() {
            assert!(pool.contains(c));
        }
    }

    proptest! {
        /// Constraints derived from labels are always consistent and their
        /// number is exactly C(m, 2) for m labelled objects.
        #[test]
        fn prop_labels_to_constraints(n in 4usize..30, k in 2usize..5, frac in 0.1f64..1.0) {
            let mut rng = SeededRng::new(n as u64 * 31 + k as u64);
            let gt: Vec<usize> = (0..n).map(|i| i % k).collect();
            let s = sample_labeled_subset(&gt, frac, 1, &mut rng);
            let cs = s.to_constraints();
            let m = s.len();
            prop_assert_eq!(cs.len(), m * (m - 1) / 2);
            prop_assert!(cs.is_consistent());
        }
    }
}
