//! The side information consumed by semi-supervised clustering algorithms.
//!
//! The CVCP framework is agnostic to whether an algorithm takes labelled
//! objects or pairwise constraints; [`SideInformation`] carries either and
//! can always be *lowered* to constraints (labels induce all pairwise
//! constraints among the labelled objects).

use crate::constraint::ConstraintSet;
use crate::generate::LabeledSubset;

/// Partial supervision handed to a semi-supervised clustering algorithm.
#[derive(Debug, Clone, PartialEq)]
pub enum SideInformation {
    /// A subset of objects with known labels (Scenario I).
    Labels(LabeledSubset),
    /// A set of instance-level pairwise constraints (Scenario II).
    Constraints(ConstraintSet),
}

impl SideInformation {
    /// Total number of objects in the underlying data set.
    pub fn n_objects(&self) -> usize {
        match self {
            SideInformation::Labels(l) => l.n_objects(),
            SideInformation::Constraints(c) => c.n_objects(),
        }
    }

    /// `true` if no supervision is available.
    pub fn is_empty(&self) -> bool {
        match self {
            SideInformation::Labels(l) => l.is_empty(),
            SideInformation::Constraints(c) => c.is_empty(),
        }
    }

    /// Lowers the side information to pairwise constraints.
    ///
    /// For labels, all pairwise constraints among labelled objects are
    /// derived; constraint sets are returned unchanged (no closure applied —
    /// call [`ConstraintSet::transitive_closure`] explicitly when needed).
    pub fn as_constraints(&self) -> ConstraintSet {
        match self {
            SideInformation::Labels(l) => l.to_constraints(),
            SideInformation::Constraints(c) => c.clone(),
        }
    }

    /// The labelled subset, if this side information is label-based.
    pub fn labels(&self) -> Option<&LabeledSubset> {
        match self {
            SideInformation::Labels(l) => Some(l),
            SideInformation::Constraints(_) => None,
        }
    }

    /// The objects that are *involved* in the side information: labelled
    /// objects, or objects appearing in at least one constraint.  The paper's
    /// external evaluation excludes exactly these objects.
    pub fn involved_objects(&self) -> Vec<usize> {
        match self {
            SideInformation::Labels(l) => l.indices().to_vec(),
            SideInformation::Constraints(c) => c.involved_objects(),
        }
    }

    /// An empty constraint-based side information over `n` objects (no
    /// supervision at all); useful for unsupervised baselines.
    pub fn none(n: usize) -> Self {
        SideInformation::Constraints(ConstraintSet::new(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint;

    fn labels() -> LabeledSubset {
        LabeledSubset::new(8, vec![0, 1, 5], vec![0, 0, 1])
    }

    #[test]
    fn labels_variant_accessors() {
        let si = SideInformation::Labels(labels());
        assert_eq!(si.n_objects(), 8);
        assert!(!si.is_empty());
        assert!(si.labels().is_some());
        assert_eq!(si.involved_objects(), vec![0, 1, 5]);
    }

    #[test]
    fn labels_lower_to_constraints() {
        let si = SideInformation::Labels(labels());
        let cs = si.as_constraints();
        assert_eq!(cs.len(), 3);
        assert!(cs.contains(&Constraint::must_link(0, 1)));
        assert!(cs.contains(&Constraint::cannot_link(0, 5)));
    }

    #[test]
    fn constraints_variant_passthrough() {
        let mut cs = ConstraintSet::new(6);
        cs.add_must_link(2, 3);
        let si = SideInformation::Constraints(cs.clone());
        assert_eq!(si.as_constraints(), cs);
        assert!(si.labels().is_none());
        assert_eq!(si.involved_objects(), vec![2, 3]);
    }

    #[test]
    fn none_is_empty() {
        let si = SideInformation::none(10);
        assert!(si.is_empty());
        assert_eq!(si.n_objects(), 10);
        assert!(si.involved_objects().is_empty());
    }
}
