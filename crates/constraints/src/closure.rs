//! Transitive closure of a constraint set.
//!
//! Section 3.1 of the CVCP paper describes the constraint graph: objects are
//! vertices, must-link edges have weight 1 and cannot-link edges weight 0.
//! The closure adds every edge that is *logically implied* by the given ones:
//!
//! * must-link is transitive: `ML(a,b) ∧ ML(b,c) ⇒ ML(a,c)`;
//! * cannot-link propagates across must-link components:
//!   `ML(a,b) ∧ CL(b,c) ⇒ CL(a,c)` — i.e. if any member of one must-link
//!   component cannot link to any member of another, then *every* pair across
//!   the two components is a cannot-link.
//!
//! The example of Figure 2: given `ML(A,B)`, `ML(C,D)`, `CL(B,C)`, the closure
//! contains additionally `CL(A,C)`, `CL(A,D)` and `CL(B,D)`.
//!
//! Cannot-link is *not* transitive: `CL(a,b) ∧ CL(b,c)` implies nothing about
//! `(a,c)` — the paper's "opposite constraints" example.

use crate::constraint::{ConstraintKind, ConstraintSet};
use crate::union_find::UnionFind;
use std::collections::BTreeSet;

/// Computes the transitive closure of `set`.
///
/// The result contains every must-link implied by must-link transitivity and
/// every cannot-link implied by propagating given cannot-links across
/// must-link components.  The input constraints are always contained in the
/// output.
///
/// If the input is inconsistent (some pair ends up both must-linked and
/// cannot-linked), the contradictory pairs are preserved as-is; callers can
/// detect this with [`ConstraintSet::is_consistent`].
pub fn transitive_closure(set: &ConstraintSet) -> ConstraintSet {
    let n = set.n_objects();
    let mut uf = UnionFind::new(n);
    for c in set.iter() {
        if c.kind == ConstraintKind::MustLink {
            uf.union(c.a, c.b);
        }
    }

    // Members of each must-link component restricted to the objects that are
    // actually involved in constraints (others cannot contribute edges).
    let involved = set.involved_objects();
    let mut comp_members: std::collections::BTreeMap<usize, Vec<usize>> =
        std::collections::BTreeMap::new();
    for &x in &involved {
        comp_members.entry(uf.find(x)).or_default().push(x);
    }

    let mut out = ConstraintSet::new(n);

    // 1. Must-link closure: all pairs inside each component.
    for members in comp_members.values() {
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                out.add_must_link(members[i], members[j]);
            }
        }
    }

    // 2. Cannot-link propagation: for each given CL edge, connect every pair
    //    across the two components.  Deduplicate component pairs first.
    let mut cl_component_pairs: BTreeSet<(usize, usize)> = BTreeSet::new();
    for c in set.iter() {
        if c.kind == ConstraintKind::CannotLink {
            let ra = uf.find(c.a);
            let rb = uf.find(c.b);
            if ra == rb {
                // Inconsistent input: CL inside a must-link component.
                // Keep the original edge; don't expand it.
                out.add(*c);
                continue;
            }
            let key = if ra < rb { (ra, rb) } else { (rb, ra) };
            cl_component_pairs.insert(key);
        }
    }
    for (ra, rb) in cl_component_pairs {
        let ma = comp_members.get(&ra).cloned().unwrap_or_else(|| vec![ra]);
        let mb = comp_members.get(&rb).cloned().unwrap_or_else(|| vec![rb]);
        for &x in &ma {
            for &y in &mb {
                out.add_cannot_link(x, y);
            }
        }
    }

    out
}

/// The connected components of the constraint *graph* (treating both kinds of
/// edges as undirected connectivity).  The paper notes that a naive
/// cross-validation could try to split these components across folds;
/// [`crate::folds`] instead splits objects and removes the crossing edges.
pub fn constraint_graph_components(set: &ConstraintSet) -> Vec<Vec<usize>> {
    let n = set.n_objects();
    let mut uf = UnionFind::new(n);
    for c in set.iter() {
        uf.union(c.a, c.b);
    }
    let involved: BTreeSet<usize> = set.involved_objects().into_iter().collect();
    uf.components()
        .into_iter()
        .filter(|comp| comp.iter().any(|x| involved.contains(x)))
        .collect()
}

/// The must-link components (groups of objects that must all share a
/// cluster), restricted to objects involved in at least one must-link.
/// Singletons (objects with no must-link) are not reported.
///
/// These are the "neighbourhood sets" used to seed MPCKMeans.
pub fn must_link_components(set: &ConstraintSet) -> Vec<Vec<usize>> {
    let n = set.n_objects();
    let mut uf = UnionFind::new(n);
    let mut in_ml = vec![false; n];
    for c in set.iter() {
        if c.kind == ConstraintKind::MustLink {
            uf.union(c.a, c.b);
            in_ml[c.a] = true;
            in_ml[c.b] = true;
        }
    }
    uf.components()
        .into_iter()
        .filter(|comp| comp.len() > 1 && comp.iter().any(|&x| in_ml[x]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint;
    use proptest::prelude::*;

    /// The running example of Figure 2 in the paper.
    fn figure2() -> ConstraintSet {
        // A=0, B=1, C=2, D=3
        let mut s = ConstraintSet::new(4);
        s.add_must_link(0, 1);
        s.add_must_link(2, 3);
        s.add_cannot_link(1, 2);
        s
    }

    #[test]
    fn figure2_closure_matches_paper() {
        let closed = transitive_closure(&figure2());
        // Given ML(A,B), ML(C,D), CL(B,C): induced CL(A,C), CL(A,D), CL(B,D).
        assert!(closed.contains(&Constraint::must_link(0, 1)));
        assert!(closed.contains(&Constraint::must_link(2, 3)));
        assert!(closed.contains(&Constraint::cannot_link(1, 2)));
        assert!(closed.contains(&Constraint::cannot_link(0, 2)));
        assert!(closed.contains(&Constraint::cannot_link(0, 3)));
        assert!(closed.contains(&Constraint::cannot_link(1, 3)));
        assert_eq!(closed.n_must_link(), 2);
        assert_eq!(closed.n_cannot_link(), 4);
    }

    #[test]
    fn opposite_example_does_not_overclose() {
        // CL(A,B), CL(C,D), ML(B,C) => CL(A,C), CL(B,D) derivable, nothing about (A,D).
        let mut s = ConstraintSet::new(4);
        s.add_cannot_link(0, 1);
        s.add_cannot_link(2, 3);
        s.add_must_link(1, 2);
        let closed = transitive_closure(&s);
        assert!(closed.contains(&Constraint::cannot_link(0, 2)));
        assert!(closed.contains(&Constraint::cannot_link(1, 3)));
        assert!(
            !closed.contains(&Constraint::cannot_link(0, 3)),
            "nothing is known about (A,D)"
        );
        assert!(!closed.contains(&Constraint::must_link(0, 3)));
    }

    #[test]
    fn must_link_transitivity() {
        let mut s = ConstraintSet::new(4);
        s.add_must_link(0, 1);
        s.add_must_link(1, 2);
        let closed = transitive_closure(&s);
        assert!(closed.contains(&Constraint::must_link(0, 2)));
        assert_eq!(closed.n_must_link(), 3);
    }

    #[test]
    fn closure_contains_input() {
        let s = figure2();
        let closed = transitive_closure(&s);
        for c in s.iter() {
            assert!(
                closed.contains(c),
                "closure must contain input constraint {c}"
            );
        }
    }

    #[test]
    fn closure_is_idempotent() {
        let closed = transitive_closure(&figure2());
        let twice = transitive_closure(&closed);
        assert_eq!(closed, twice);
    }

    #[test]
    fn inconsistent_input_is_preserved_not_expanded() {
        let mut s = ConstraintSet::new(3);
        s.add_must_link(0, 1);
        s.add_cannot_link(0, 1);
        let closed = transitive_closure(&s);
        assert!(!closed.is_consistent());
        assert!(closed.contains(&Constraint::cannot_link(0, 1)));
    }

    #[test]
    fn graph_components_ignore_isolated_objects() {
        let mut s = ConstraintSet::new(10);
        s.add_must_link(0, 1);
        s.add_cannot_link(1, 2);
        s.add_must_link(5, 6);
        let comps = constraint_graph_components(&s);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![0, 1, 2]);
        assert_eq!(comps[1], vec![5, 6]);
    }

    #[test]
    fn must_link_components_exclude_cl_only_objects() {
        let mut s = ConstraintSet::new(6);
        s.add_must_link(0, 1);
        s.add_must_link(1, 2);
        s.add_cannot_link(3, 4);
        let comps = must_link_components(&s);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0], vec![0, 1, 2]);
    }

    #[test]
    fn empty_set_closure_is_empty() {
        let s = ConstraintSet::new(5);
        let closed = transitive_closure(&s);
        assert!(closed.is_empty());
        assert!(constraint_graph_components(&s).is_empty());
        assert!(must_link_components(&s).is_empty());
    }

    /// Generates a constraint set from labels, where constraints are
    /// guaranteed consistent.
    fn arb_label_constraints() -> impl Strategy<Value = (Vec<usize>, ConstraintSet)> {
        (2usize..20, 2usize..4).prop_flat_map(|(n, k)| {
            (
                proptest::collection::vec(0usize..k, n),
                proptest::collection::vec((0usize..n, 0usize..n), 1..30),
            )
                .prop_map(move |(labels, pairs)| {
                    let mut s = ConstraintSet::new(labels.len());
                    for (a, b) in pairs {
                        if a != b {
                            if labels[a] == labels[b] {
                                s.add_must_link(a, b);
                            } else {
                                s.add_cannot_link(a, b);
                            }
                        }
                    }
                    (labels, s)
                })
        })
    }

    proptest! {
        /// Closure of label-consistent constraints stays label-consistent:
        /// every derived must-link joins same-label objects, every derived
        /// cannot-link joins different-label objects.
        #[test]
        fn prop_closure_respects_labels((labels, set) in arb_label_constraints()) {
            let closed = transitive_closure(&set);
            prop_assert!(closed.is_consistent());
            for c in closed.iter() {
                match c.kind {
                    ConstraintKind::MustLink => prop_assert_eq!(labels[c.a], labels[c.b]),
                    ConstraintKind::CannotLink => prop_assert_ne!(labels[c.a], labels[c.b]),
                }
            }
        }

        /// Closure is monotone (contains the input) and idempotent.
        #[test]
        fn prop_closure_monotone_idempotent((_labels, set) in arb_label_constraints()) {
            let closed = transitive_closure(&set);
            for c in set.iter() {
                prop_assert!(closed.contains(c));
            }
            prop_assert_eq!(transitive_closure(&closed), closed);
        }
    }
}
