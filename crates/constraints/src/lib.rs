//! # cvcp-constraints
//!
//! Instance-level clustering constraints and the cross-validation fold
//! machinery of the CVCP paper (Pourrajabi et al., EDBT 2014, Section 3.1).
//!
//! The crate provides:
//!
//! * [`constraint`]: must-link / cannot-link constraints and constraint sets;
//! * [`union_find`]: a disjoint-set structure used throughout;
//! * [`closure`]: the transitive closure of a constraint set over its
//!   constraint graph (Figure 2 of the paper);
//! * [`generate`]: derivation of constraints from labelled objects, the
//!   paper's "constraint pool" construction and random sampling of side
//!   information;
//! * [`folds`]: the fold-splitting procedures for Scenario I (labelled
//!   objects, Figure 3) and Scenario II (pairwise constraints, Figure 4),
//!   guaranteeing train/test independence;
//! * [`side_info`]: the `SideInformation` enum consumed by the
//!   semi-supervised clustering algorithms (labels or constraints).
//!
//! ```
//! use cvcp_constraints::prelude::*;
//!
//! // must-link(A,B), must-link(C,D), cannot-link(B,C)  (Fig. 2 of the paper)
//! let mut set = ConstraintSet::new(4);
//! set.add_must_link(0, 1);
//! set.add_must_link(2, 3);
//! set.add_cannot_link(1, 2);
//! let closed = set.transitive_closure();
//! // the closure induces cannot-link(A,C), cannot-link(A,D), cannot-link(B,D)
//! assert_eq!(closed.n_cannot_link(), 4);
//! assert_eq!(closed.n_must_link(), 2);
//! ```

#![warn(missing_docs)]

pub mod closure;
pub mod constraint;
pub mod folds;
pub mod generate;
pub mod side_info;
pub mod union_find;

pub use constraint::{Constraint, ConstraintKind, ConstraintSet};
pub use folds::{constraint_scenario_folds, label_scenario_folds, FoldAssignment, FoldSplit};
pub use generate::{constraint_pool, constraints_from_labels, LabeledSubset};
pub use side_info::SideInformation;
pub use union_find::UnionFind;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::constraint::{Constraint, ConstraintKind, ConstraintSet};
    pub use crate::folds::{constraint_scenario_folds, label_scenario_folds, FoldSplit};
    pub use crate::generate::{constraint_pool, constraints_from_labels, LabeledSubset};
    pub use crate::side_info::SideInformation;
    pub use crate::union_find::UnionFind;
}
