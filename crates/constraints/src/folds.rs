//! Cross-validation fold construction with train/test independence.
//!
//! Section 3.1 of the CVCP paper explains why a naive split of constraints
//! into folds leaks information: the transitive closure of the training
//! constraints can already imply constraints placed in the test fold.  Both
//! procedures below split *objects* rather than constraints, which "cuts" the
//! constraint graph correctly:
//!
//! * **Scenario I (labelled objects, Fig. 3):** the labelled objects are
//!   partitioned into `n` folds; training side information comes from the
//!   union of `n−1` folds, test constraints are derived only among the
//!   objects of the held-out fold.
//! * **Scenario II (pairwise constraints, Fig. 4):** the transitive closure
//!   of the given constraints is computed, the objects involved in any
//!   constraint are partitioned into `n` folds, every constraint crossing the
//!   train/test boundary is removed, and the (already closed) constraint set
//!   is restricted to each side.

use crate::closure::transitive_closure;
use crate::constraint::ConstraintSet;
use crate::generate::LabeledSubset;
use crate::side_info::SideInformation;
use cvcp_data::rng::SeededRng;

/// Assignment of a collection of objects to folds.
///
/// Invariant: `objects` is sorted ascending with no duplicates —
/// [`FoldAssignment::fold_of_object`] relies on binary search, which would
/// silently return wrong folds on unsorted input.  Build assignments through
/// [`FoldAssignment::new`], which normalises arbitrary input order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoldAssignment {
    /// Number of folds.
    pub n_folds: usize,
    /// `fold_of[i]` is the fold of the i-th *tracked* object (parallel to
    /// [`FoldAssignment::objects`]).
    pub fold_of: Vec<usize>,
    /// The tracked objects (sorted ascending, no duplicates).
    pub objects: Vec<usize>,
}

impl FoldAssignment {
    /// Builds an assignment from parallel `objects` / `fold_of` vectors in
    /// *any* order, normalising to the sorted invariant (each object keeps
    /// its fold).
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths or an object appears
    /// twice.
    pub fn new(n_folds: usize, objects: Vec<usize>, fold_of: Vec<usize>) -> Self {
        assert_eq!(
            objects.len(),
            fold_of.len(),
            "objects and fold_of must be parallel"
        );
        let mut pairs: Vec<(usize, usize)> = objects.into_iter().zip(fold_of).collect();
        pairs.sort_unstable_by_key(|&(o, _)| o);
        assert!(
            pairs.windows(2).all(|w| w[0].0 != w[1].0),
            "duplicate tracked object"
        );
        let (objects, fold_of) = pairs.into_iter().unzip();
        Self {
            n_folds,
            fold_of,
            objects,
        }
    }

    /// Objects assigned to fold `f`.
    pub fn members_of(&self, f: usize) -> Vec<usize> {
        self.objects
            .iter()
            .zip(&self.fold_of)
            .filter_map(|(&o, &fo)| (fo == f).then_some(o))
            .collect()
    }

    /// The fold of object `o`, if `o` is tracked.
    pub fn fold_of_object(&self, o: usize) -> Option<usize> {
        debug_assert!(
            self.objects.windows(2).all(|w| w[0] < w[1]),
            "FoldAssignment objects must be sorted — construct via FoldAssignment::new"
        );
        self.objects
            .binary_search(&o)
            .ok()
            .map(|pos| self.fold_of[pos])
    }
}

/// One train/test split produced by the fold machinery.
///
/// `training` is handed to the semi-supervised clustering algorithm (in the
/// form the algorithm expects); `test_constraints` is used *only* to score
/// the resulting partition as a constraint classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct FoldSplit {
    /// Index of the held-out fold.
    pub fold: usize,
    /// Side information available for clustering.
    pub training: SideInformation,
    /// Constraints used to estimate the classification error.
    pub test_constraints: ConstraintSet,
}

/// Partitions `objects` into `n_folds` folds at random (sizes differ by at
/// most one).
fn random_fold_assignment(
    objects: &[usize],
    n_folds: usize,
    rng: &mut SeededRng,
) -> FoldAssignment {
    let mut sorted = objects.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut order: Vec<usize> = (0..sorted.len()).collect();
    rng.shuffle(&mut order);
    let mut fold_of = vec![0usize; sorted.len()];
    for (rank, &pos) in order.iter().enumerate() {
        fold_of[pos] = rank % n_folds;
    }
    FoldAssignment::new(n_folds, sorted, fold_of)
}

/// Partitions labelled objects into folds, stratified by label: within each
/// class the objects are dealt to folds round-robin after shuffling, so every
/// fold sees every class when possible.
fn stratified_fold_assignment(
    labeled: &LabeledSubset,
    n_folds: usize,
    rng: &mut SeededRng,
) -> FoldAssignment {
    let objects: Vec<usize> = labeled.indices().to_vec();
    let mut fold_lookup: std::collections::BTreeMap<usize, usize> =
        std::collections::BTreeMap::new();

    let n_classes = labeled.labels().iter().copied().max().map_or(0, |m| m + 1);
    let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
    for (obj, lab) in labeled.iter() {
        per_class[lab].push(obj);
    }
    // Offset the starting fold per class so small classes do not all pile
    // into fold 0.
    let mut next_fold = 0usize;
    for members in per_class.iter_mut() {
        rng.shuffle(members);
        for &obj in members.iter() {
            fold_lookup.insert(obj, next_fold % n_folds);
            next_fold += 1;
        }
    }

    let fold_of = objects.iter().map(|o| fold_lookup[o]).collect();
    // LabeledSubset keeps its indices sorted, but the normalising
    // constructor makes the binary-search invariant independent of that.
    FoldAssignment::new(n_folds, objects, fold_of)
}

/// Builds the `n`-fold cross-validation splits for **Scenario I** (labelled
/// objects are provided).
///
/// For each fold `f`:
/// * the training side information is the labelled subset restricted to all
///   folds except `f` (the clustering algorithm may use the labels directly
///   or lower them to constraints);
/// * the test constraints are all pairwise constraints among the objects of
///   fold `f`, derived from their labels.
///
/// When `stratified` is true (the default used by CVCP), fold assignment is
/// stratified by class label.
///
/// # Panics
///
/// Panics if `n_folds < 2` or there are fewer labelled objects than folds.
pub fn label_scenario_folds(
    labeled: &LabeledSubset,
    n_folds: usize,
    stratified: bool,
    rng: &mut SeededRng,
) -> Vec<FoldSplit> {
    assert!(n_folds >= 2, "cross-validation needs at least 2 folds");
    assert!(
        labeled.len() >= n_folds,
        "need at least as many labelled objects ({}) as folds ({n_folds})",
        labeled.len()
    );
    let assignment = if stratified {
        stratified_fold_assignment(labeled, n_folds, rng)
    } else {
        random_fold_assignment(labeled.indices(), n_folds, rng)
    };

    (0..n_folds)
        .map(|f| {
            let test_objects = assignment.members_of(f);
            let train_objects: Vec<usize> = assignment
                .objects
                .iter()
                .copied()
                .filter(|o| assignment.fold_of_object(*o) != Some(f))
                .collect();
            let training = SideInformation::Labels(labeled.restrict(&train_objects));
            let test_constraints = labeled.restrict(&test_objects).to_constraints();
            FoldSplit {
                fold: f,
                training,
                test_constraints,
            }
        })
        .collect()
}

/// Builds the `n`-fold cross-validation splits for **Scenario II** (pairwise
/// constraints are provided).
///
/// The transitive closure of `constraints` is computed first; the objects
/// involved in any constraint are partitioned into `n` folds; constraints
/// crossing the train/test boundary are removed; the closed set restricted to
/// the training objects becomes the training side information and the closed
/// set restricted to the test objects becomes the test constraints.
///
/// # Panics
///
/// Panics if `n_folds < 2` or fewer objects are involved in constraints than
/// there are folds.
pub fn constraint_scenario_folds(
    constraints: &ConstraintSet,
    n_folds: usize,
    rng: &mut SeededRng,
) -> Vec<FoldSplit> {
    assert!(n_folds >= 2, "cross-validation needs at least 2 folds");
    let closed = transitive_closure(constraints);
    let involved = closed.involved_objects();
    assert!(
        involved.len() >= n_folds,
        "need at least as many constrained objects ({}) as folds ({n_folds})",
        involved.len()
    );
    let assignment = random_fold_assignment(&involved, n_folds, rng);

    (0..n_folds)
        .map(|f| {
            let in_test: std::collections::BTreeSet<usize> =
                assignment.members_of(f).into_iter().collect();
            // Training: both endpoints outside the test fold.
            let training_set = closed.filter_objects(|o| !in_test.contains(&o));
            // Test: both endpoints inside the test fold.
            let test_constraints = closed.filter_objects(|o| in_test.contains(&o));
            FoldSplit {
                fold: f,
                training: SideInformation::Constraints(training_set),
                test_constraints,
            }
        })
        .collect()
}

/// Checks the independence property of a list of fold splits: no constraint
/// that can be derived from the training side information appears among the
/// test constraints.  Returns the offending `(fold, constraint)` pairs.
///
/// This is primarily a verification/diagnostic helper used by the test-suite
/// and by the ablation benchmarks that demonstrate the leak of a naive split.
pub fn leaked_constraints(splits: &[FoldSplit]) -> Vec<(usize, crate::constraint::Constraint)> {
    let mut leaks = Vec::new();
    for split in splits {
        let train_closure = transitive_closure(&split.training.as_constraints());
        for c in split.test_constraints.iter() {
            if train_closure.contains(c) {
                leaks.push((split.fold, *c));
            }
        }
    }
    leaks
}

/// A deliberately *naive* constraint split that distributes constraints
/// (not objects) over folds.  This is the flawed procedure the paper warns
/// about: the transitive closure of the training constraints can imply test
/// constraints.  Provided for the information-leak ablation only.
pub fn naive_constraint_folds(
    constraints: &ConstraintSet,
    n_folds: usize,
    rng: &mut SeededRng,
) -> Vec<FoldSplit> {
    assert!(n_folds >= 2, "cross-validation needs at least 2 folds");
    let all: Vec<_> = constraints.iter().copied().collect();
    assert!(
        all.len() >= n_folds,
        "need at least as many constraints as folds"
    );
    let mut order: Vec<usize> = (0..all.len()).collect();
    rng.shuffle(&mut order);
    let fold_of: Vec<usize> = {
        let mut v = vec![0usize; all.len()];
        for (rank, &idx) in order.iter().enumerate() {
            v[idx] = rank % n_folds;
        }
        v
    };
    (0..n_folds)
        .map(|f| {
            let training = ConstraintSet::from_constraints(
                constraints.n_objects(),
                all.iter()
                    .zip(&fold_of)
                    .filter_map(|(c, &fo)| (fo != f).then_some(*c)),
            );
            let test_constraints = ConstraintSet::from_constraints(
                constraints.n_objects(),
                all.iter()
                    .zip(&fold_of)
                    .filter_map(|(c, &fo)| (fo == f).then_some(*c)),
            );
            FoldSplit {
                fold: f,
                training: SideInformation::Constraints(training),
                test_constraints,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{constraint_pool, sample_labeled_subset};
    use proptest::prelude::*;

    fn ground_truth(n: usize, k: usize) -> Vec<usize> {
        (0..n).map(|i| i % k).collect()
    }

    #[test]
    fn label_folds_cover_all_objects_exactly_once() {
        let gt = ground_truth(60, 3);
        let mut rng = SeededRng::new(1);
        let labeled = sample_labeled_subset(&gt, 0.5, 2, &mut rng);
        let splits = label_scenario_folds(&labeled, 5, true, &mut rng);
        assert_eq!(splits.len(), 5);
        // Every labelled object appears in exactly one test fold.
        let mut seen = std::collections::BTreeMap::new();
        for s in &splits {
            let train_objs: std::collections::BTreeSet<usize> = s
                .training
                .labels()
                .unwrap()
                .indices()
                .iter()
                .copied()
                .collect();
            for &o in labeled.indices() {
                if !train_objs.contains(&o) {
                    *seen.entry(o).or_insert(0usize) += 1;
                }
            }
        }
        for &o in labeled.indices() {
            assert_eq!(
                seen.get(&o),
                Some(&1),
                "object {o} must be held out exactly once"
            );
        }
    }

    #[test]
    fn label_folds_training_and_test_are_disjoint() {
        let gt = ground_truth(40, 4);
        let mut rng = SeededRng::new(2);
        let labeled = sample_labeled_subset(&gt, 0.6, 2, &mut rng);
        let splits = label_scenario_folds(&labeled, 4, true, &mut rng);
        for s in &splits {
            let train_objs: std::collections::BTreeSet<usize> =
                s.training.involved_objects().into_iter().collect();
            for c in s.test_constraints.iter() {
                assert!(!train_objs.contains(&c.a));
                assert!(!train_objs.contains(&c.b));
            }
        }
    }

    #[test]
    fn label_folds_have_no_leak() {
        let gt = ground_truth(50, 5);
        let mut rng = SeededRng::new(3);
        let labeled = sample_labeled_subset(&gt, 0.5, 2, &mut rng);
        let splits = label_scenario_folds(&labeled, 5, true, &mut rng);
        assert!(leaked_constraints(&splits).is_empty());
    }

    #[test]
    fn stratified_folds_spread_classes() {
        let gt = ground_truth(60, 3);
        let mut rng = SeededRng::new(4);
        let labeled = sample_labeled_subset(&gt, 1.0, 1, &mut rng);
        let splits = label_scenario_folds(&labeled, 3, true, &mut rng);
        // With 20 objects per class and 3 folds, every test fold should
        // contain objects of every class.
        for s in &splits {
            let mut classes: Vec<usize> = s
                .test_constraints
                .involved_objects()
                .iter()
                .map(|&o| gt[o])
                .collect();
            classes.sort_unstable();
            classes.dedup();
            assert_eq!(classes.len(), 3, "fold {} misses a class", s.fold);
        }
    }

    #[test]
    #[should_panic(expected = "at least 2 folds")]
    fn label_folds_reject_single_fold() {
        let gt = ground_truth(10, 2);
        let mut rng = SeededRng::new(5);
        let labeled = sample_labeled_subset(&gt, 1.0, 1, &mut rng);
        let _ = label_scenario_folds(&labeled, 1, true, &mut rng);
    }

    #[test]
    fn constraint_folds_remove_crossing_edges() {
        let gt = ground_truth(40, 4);
        let mut rng = SeededRng::new(6);
        let pool = constraint_pool(&gt, 0.5, 2, &mut rng);
        let splits = constraint_scenario_folds(&pool, 4, &mut rng);
        assert_eq!(splits.len(), 4);
        for s in &splits {
            let train_objs: std::collections::BTreeSet<usize> =
                s.training.involved_objects().into_iter().collect();
            let test_objs: std::collections::BTreeSet<usize> =
                s.test_constraints.involved_objects().into_iter().collect();
            assert!(
                train_objs.is_disjoint(&test_objs),
                "fold {}: training and test objects overlap",
                s.fold
            );
        }
    }

    #[test]
    fn constraint_folds_have_no_leak() {
        let gt = ground_truth(30, 3);
        let mut rng = SeededRng::new(7);
        let pool = constraint_pool(&gt, 0.6, 2, &mut rng);
        let splits = constraint_scenario_folds(&pool, 3, &mut rng);
        assert!(leaked_constraints(&splits).is_empty());
    }

    #[test]
    fn constraint_folds_training_is_transitively_closed() {
        let gt = ground_truth(30, 3);
        let mut rng = SeededRng::new(8);
        let pool = constraint_pool(&gt, 0.6, 2, &mut rng);
        let splits = constraint_scenario_folds(&pool, 3, &mut rng);
        for s in &splits {
            let train = s.training.as_constraints();
            assert_eq!(
                transitive_closure(&train),
                train,
                "training constraints should already be closed"
            );
        }
    }

    #[test]
    fn naive_folds_do_leak_on_chained_constraints() {
        // Construct a chain where the closure clearly implies the held-out
        // constraint: ML(0,1), ML(1,2) imply ML(0,2).
        let mut cs = ConstraintSet::new(3);
        cs.add_must_link(0, 1);
        cs.add_must_link(1, 2);
        cs.add_must_link(0, 2);
        let mut rng = SeededRng::new(9);
        // With 3 constraints and 3 folds, each fold holds out exactly one
        // constraint, which is always implied by the other two.
        let splits = naive_constraint_folds(&cs, 3, &mut rng);
        let leaks = leaked_constraints(&splits);
        assert!(!leaks.is_empty(), "the naive split must leak here");
        // The proper procedure does not leak on the same input.
        let proper = constraint_scenario_folds(&cs, 3, &mut rng);
        assert!(leaked_constraints(&proper).is_empty());
    }

    #[test]
    fn fold_assignment_normalizes_unsorted_objects() {
        // Regression: binary_search in fold_of_object silently returned
        // wrong folds when the objects vector was unsorted.  The normalising
        // constructor sorts (object, fold) pairs together.
        let fa = FoldAssignment::new(3, vec![9, 1, 4, 7, 3], vec![0, 1, 2, 0, 1]);
        assert_eq!(fa.objects, vec![1, 3, 4, 7, 9]);
        assert_eq!(fa.fold_of_object(9), Some(0));
        assert_eq!(fa.fold_of_object(1), Some(1));
        assert_eq!(fa.fold_of_object(4), Some(2));
        assert_eq!(fa.fold_of_object(7), Some(0));
        assert_eq!(fa.fold_of_object(3), Some(1));
        assert_eq!(fa.fold_of_object(2), None);
        // members_of agrees with the per-object lookup
        for f in 0..3 {
            for o in fa.members_of(f) {
                assert_eq!(fa.fold_of_object(o), Some(f));
            }
        }
    }

    #[test]
    #[should_panic(expected = "duplicate tracked object")]
    fn fold_assignment_rejects_duplicates() {
        let _ = FoldAssignment::new(2, vec![1, 1], vec![0, 1]);
    }

    #[test]
    fn fold_assignment_lookup() {
        let mut rng = SeededRng::new(10);
        let fa = random_fold_assignment(&[3, 9, 4, 7, 1], 2, &mut rng);
        assert_eq!(fa.objects, vec![1, 3, 4, 7, 9]);
        let sizes: Vec<usize> = (0..2).map(|f| fa.members_of(f).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 5);
        assert!(sizes.iter().all(|&s| s >= 2));
        assert_eq!(fa.fold_of_object(100), None);
        assert!(fa.fold_of_object(7).is_some());
    }

    proptest! {
        /// For arbitrary label-derived pools and fold counts, the paper's
        /// procedure never leaks training information into test folds and
        /// every test constraint is consistent with the ground truth.
        #[test]
        fn prop_constraint_scenario_no_leak(
            n in 12usize..40,
            k in 2usize..5,
            folds in 2usize..5,
            seed in 0u64..500,
        ) {
            let gt: Vec<usize> = (0..n).map(|i| i % k).collect();
            let mut rng = SeededRng::new(seed);
            let pool = constraint_pool(&gt, 0.6, 2, &mut rng);
            prop_assume!(pool.involved_objects().len() >= folds);
            let splits = constraint_scenario_folds(&pool, folds, &mut rng);
            prop_assert!(leaked_constraints(&splits).is_empty());
            for s in &splits {
                let train_objs: std::collections::BTreeSet<usize> =
                    s.training.involved_objects().into_iter().collect();
                for c in s.test_constraints.iter() {
                    prop_assert!(!train_objs.contains(&c.a) && !train_objs.contains(&c.b));
                }
            }
        }

        /// Scenario I: every labelled object is held out exactly once and
        /// test constraints never touch training objects.
        #[test]
        fn prop_label_scenario_partition(
            n in 20usize..60,
            k in 2usize..4,
            folds in 2usize..6,
            seed in 0u64..500,
        ) {
            let gt: Vec<usize> = (0..n).map(|i| i % k).collect();
            let mut rng = SeededRng::new(seed);
            let labeled = sample_labeled_subset(&gt, 0.5, 1, &mut rng);
            prop_assume!(labeled.len() >= folds);
            let splits = label_scenario_folds(&labeled, folds, true, &mut rng);
            let mut held_out_count = std::collections::BTreeMap::new();
            for s in &splits {
                let train: std::collections::BTreeSet<usize> =
                    s.training.involved_objects().into_iter().collect();
                for &o in labeled.indices() {
                    if !train.contains(&o) {
                        *held_out_count.entry(o).or_insert(0usize) += 1;
                    }
                }
                for c in s.test_constraints.iter() {
                    prop_assert!(!train.contains(&c.a) && !train.contains(&c.b));
                }
            }
            for &o in labeled.indices() {
                prop_assert_eq!(held_out_count.get(&o).copied(), Some(1));
            }
        }
    }
}
