//! Must-link / cannot-link constraints and constraint sets.
//!
//! A constraint relates an *unordered* pair of distinct objects; the pair is
//! stored in canonical order (smaller index first) so that sets deduplicate
//! naturally.

use std::collections::BTreeSet;
use std::fmt;

/// The kind of an instance-level constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ConstraintKind {
    /// The two objects should end up in the same cluster (class "1" in the
    /// paper's classification view).
    MustLink,
    /// The two objects should end up in different clusters (class "0").
    CannotLink,
}

impl fmt::Display for ConstraintKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintKind::MustLink => write!(f, "must-link"),
            ConstraintKind::CannotLink => write!(f, "cannot-link"),
        }
    }
}

/// An instance-level pairwise constraint over objects `a < b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Constraint {
    /// Smaller object index.
    pub a: usize,
    /// Larger object index.
    pub b: usize,
    /// Whether the pair must or cannot be linked.
    pub kind: ConstraintKind,
}

impl Constraint {
    /// Creates a constraint, canonicalising the pair order.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` (self-constraints are meaningless).
    pub fn new(a: usize, b: usize, kind: ConstraintKind) -> Self {
        assert_ne!(a, b, "a constraint must relate two distinct objects");
        let (a, b) = if a < b { (a, b) } else { (b, a) };
        Self { a, b, kind }
    }

    /// A must-link constraint.
    pub fn must_link(a: usize, b: usize) -> Self {
        Self::new(a, b, ConstraintKind::MustLink)
    }

    /// A cannot-link constraint.
    pub fn cannot_link(a: usize, b: usize) -> Self {
        Self::new(a, b, ConstraintKind::CannotLink)
    }

    /// The unordered pair of objects.
    pub fn pair(&self) -> (usize, usize) {
        (self.a, self.b)
    }

    /// `true` if the constraint involves object `x`.
    pub fn involves(&self, x: usize) -> bool {
        self.a == x || self.b == x
    }

    /// Given one endpoint, returns the other.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an endpoint.
    pub fn other(&self, x: usize) -> usize {
        if x == self.a {
            self.b
        } else if x == self.b {
            self.a
        } else {
            panic!("object {x} is not an endpoint of {self}")
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({}, {})", self.kind, self.a, self.b)
    }
}

/// A set of constraints over objects `0..n_objects`.
///
/// The set is deduplicated: adding the same constraint twice is a no-op.
/// Adding a must-link and a cannot-link for the same pair is allowed at this
/// level (it can arise from noisy side information) and is surfaced by
/// [`ConstraintSet::conflicting_pairs`]; the transitive-closure and
/// generation code in this crate never produces conflicts from consistent
/// label information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstraintSet {
    n_objects: usize,
    constraints: BTreeSet<Constraint>,
}

impl ConstraintSet {
    /// An empty constraint set over `n_objects` objects.
    pub fn new(n_objects: usize) -> Self {
        Self {
            n_objects,
            constraints: BTreeSet::new(),
        }
    }

    /// Builds a set from an iterator of constraints.
    ///
    /// # Panics
    ///
    /// Panics if any constraint references an object `>= n_objects`.
    pub fn from_constraints<I: IntoIterator<Item = Constraint>>(
        n_objects: usize,
        constraints: I,
    ) -> Self {
        let mut set = Self::new(n_objects);
        for c in constraints {
            set.add(c);
        }
        set
    }

    /// Number of objects the set is defined over.
    pub fn n_objects(&self) -> usize {
        self.n_objects
    }

    /// Adds a constraint.  Returns `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if the constraint references an object `>= n_objects`.
    pub fn add(&mut self, c: Constraint) -> bool {
        assert!(
            c.b < self.n_objects,
            "constraint {c} references object outside 0..{}",
            self.n_objects
        );
        self.constraints.insert(c)
    }

    /// Adds a must-link constraint between `a` and `b`.
    pub fn add_must_link(&mut self, a: usize, b: usize) -> bool {
        self.add(Constraint::must_link(a, b))
    }

    /// Adds a cannot-link constraint between `a` and `b`.
    pub fn add_cannot_link(&mut self, a: usize, b: usize) -> bool {
        self.add(Constraint::cannot_link(a, b))
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// `true` when the set holds no constraints.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Number of must-link constraints.
    pub fn n_must_link(&self) -> usize {
        self.iter()
            .filter(|c| c.kind == ConstraintKind::MustLink)
            .count()
    }

    /// Number of cannot-link constraints.
    pub fn n_cannot_link(&self) -> usize {
        self.iter()
            .filter(|c| c.kind == ConstraintKind::CannotLink)
            .count()
    }

    /// Iterates over all constraints in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &Constraint> + '_ {
        self.constraints.iter()
    }

    /// All must-link constraints.
    pub fn must_links(&self) -> Vec<Constraint> {
        self.iter()
            .copied()
            .filter(|c| c.kind == ConstraintKind::MustLink)
            .collect()
    }

    /// All cannot-link constraints.
    pub fn cannot_links(&self) -> Vec<Constraint> {
        self.iter()
            .copied()
            .filter(|c| c.kind == ConstraintKind::CannotLink)
            .collect()
    }

    /// `true` iff the given constraint is present.
    pub fn contains(&self, c: &Constraint) -> bool {
        self.constraints.contains(c)
    }

    /// The sorted list of objects that appear in at least one constraint.
    pub fn involved_objects(&self) -> Vec<usize> {
        let mut objs: Vec<usize> = self.iter().flat_map(|c| [c.a, c.b]).collect();
        objs.sort_unstable();
        objs.dedup();
        objs
    }

    /// Returns the subset of constraints whose *both* endpoints satisfy the
    /// predicate.
    pub fn filter_objects<F: Fn(usize) -> bool>(&self, keep: F) -> ConstraintSet {
        ConstraintSet::from_constraints(
            self.n_objects,
            self.iter().copied().filter(|c| keep(c.a) && keep(c.b)),
        )
    }

    /// Merges another constraint set into this one.
    ///
    /// # Panics
    ///
    /// Panics if the other set is defined over a different number of objects.
    pub fn extend(&mut self, other: &ConstraintSet) {
        assert_eq!(
            self.n_objects, other.n_objects,
            "constraint sets must be over the same object universe"
        );
        for c in other.iter() {
            self.constraints.insert(*c);
        }
    }

    /// Pairs that carry *both* a must-link and a cannot-link constraint.
    pub fn conflicting_pairs(&self) -> Vec<(usize, usize)> {
        let mut must: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut cannot: BTreeSet<(usize, usize)> = BTreeSet::new();
        for c in self.iter() {
            match c.kind {
                ConstraintKind::MustLink => must.insert(c.pair()),
                ConstraintKind::CannotLink => cannot.insert(c.pair()),
            };
        }
        must.intersection(&cannot).copied().collect()
    }

    /// `true` when no pair carries contradictory constraints.
    pub fn is_consistent(&self) -> bool {
        self.conflicting_pairs().is_empty()
    }

    /// Computes the transitive closure of this set (see [`crate::closure`]).
    pub fn transitive_closure(&self) -> ConstraintSet {
        crate::closure::transitive_closure(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constraint_canonical_order() {
        let c = Constraint::must_link(7, 2);
        assert_eq!(c.pair(), (2, 7));
        assert_eq!(c.other(2), 7);
        assert_eq!(c.other(7), 2);
        assert!(c.involves(2) && c.involves(7) && !c.involves(3));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn self_constraint_rejected() {
        let _ = Constraint::cannot_link(3, 3);
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            format!("{}", Constraint::must_link(1, 0)),
            "must-link(0, 1)"
        );
        assert_eq!(
            format!("{}", Constraint::cannot_link(4, 9)),
            "cannot-link(4, 9)"
        );
    }

    #[test]
    fn set_dedupes() {
        let mut s = ConstraintSet::new(5);
        assert!(s.add_must_link(0, 1));
        assert!(
            !s.add_must_link(1, 0),
            "same pair in other order is a duplicate"
        );
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn set_counts_by_kind() {
        let mut s = ConstraintSet::new(6);
        s.add_must_link(0, 1);
        s.add_must_link(2, 3);
        s.add_cannot_link(1, 2);
        assert_eq!(s.n_must_link(), 2);
        assert_eq!(s.n_cannot_link(), 1);
        assert_eq!(s.len(), 3);
        assert_eq!(s.must_links().len(), 2);
        assert_eq!(s.cannot_links().len(), 1);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn set_rejects_out_of_range() {
        let mut s = ConstraintSet::new(3);
        s.add_must_link(0, 3);
    }

    #[test]
    fn involved_objects_sorted_unique() {
        let mut s = ConstraintSet::new(10);
        s.add_must_link(7, 2);
        s.add_cannot_link(2, 5);
        assert_eq!(s.involved_objects(), vec![2, 5, 7]);
    }

    #[test]
    fn filter_objects_keeps_internal_constraints_only() {
        let mut s = ConstraintSet::new(6);
        s.add_must_link(0, 1);
        s.add_must_link(1, 4);
        s.add_cannot_link(4, 5);
        let keep = [true, true, false, false, false, false];
        let f = s.filter_objects(|i| keep[i]);
        assert_eq!(f.len(), 1);
        assert!(f.contains(&Constraint::must_link(0, 1)));
    }

    #[test]
    fn extend_merges_sets() {
        let mut a = ConstraintSet::new(4);
        a.add_must_link(0, 1);
        let mut b = ConstraintSet::new(4);
        b.add_must_link(0, 1);
        b.add_cannot_link(2, 3);
        a.extend(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn conflicts_detected() {
        let mut s = ConstraintSet::new(3);
        s.add_must_link(0, 1);
        assert!(s.is_consistent());
        s.add_cannot_link(0, 1);
        assert!(!s.is_consistent());
        assert_eq!(s.conflicting_pairs(), vec![(0, 1)]);
    }

    #[test]
    fn from_constraints_builder() {
        let s = ConstraintSet::from_constraints(
            4,
            vec![Constraint::must_link(0, 1), Constraint::cannot_link(2, 3)],
        );
        assert_eq!(s.len(), 2);
        assert_eq!(s.n_objects(), 4);
    }
}
