//! Disjoint-set (union–find) data structure.
//!
//! Used to maintain must-link components: the transitive closure of must-link
//! constraints is exactly the partition induced by union-find over the
//! must-link edges.

/// A union–find structure over `0..n` with path compression and union by size.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` when the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint components.
    pub fn n_components(&self) -> usize {
        self.components
    }

    /// Finds the representative of `x` (with path compression).
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn find(&mut self, x: usize) -> usize {
        assert!(x < self.parent.len(), "element {x} out of range");
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Finds the representative of `x` without mutating (no path compression).
    pub fn find_immutable(&self, x: usize) -> usize {
        assert!(x < self.parent.len(), "element {x} out of range");
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        root
    }

    /// Unions the sets of `a` and `b`; returns `true` if they were separate.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        self.components -= 1;
        true
    }

    /// `true` iff `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn component_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r]
    }

    /// Groups elements by component.  The outer vector is ordered by the
    /// smallest member of each component; members are in ascending order.
    pub fn components(&mut self) -> Vec<Vec<usize>> {
        let n = self.parent.len();
        let mut by_root: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        for x in 0..n {
            let r = self.find(x);
            by_root.entry(r).or_default().push(x);
        }
        // Order components by their smallest member for determinism.
        let mut comps: Vec<Vec<usize>> = by_root.into_values().collect();
        comps.sort_by_key(|c| c[0]);
        comps
    }

    /// Returns, for every element, the index of its component in the ordering
    /// produced by [`UnionFind::components`].
    pub fn component_labels(&mut self) -> Vec<usize> {
        let comps = self.components();
        let mut labels = vec![0usize; self.parent.len()];
        for (idx, comp) in comps.iter().enumerate() {
            for &x in comp {
                labels[x] = idx;
            }
        }
        labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn singletons_initially() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.n_components(), 5);
        for i in 0..5 {
            assert_eq!(uf.find(i), i);
            assert_eq!(uf.component_size(i), 1);
        }
    }

    #[test]
    fn union_reduces_components() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert_eq!(uf.n_components(), 2);
        assert!(!uf.union(1, 0), "repeated union returns false");
        assert!(uf.union(0, 2));
        assert_eq!(uf.n_components(), 1);
        assert!(uf.connected(1, 3));
    }

    #[test]
    fn component_sizes_accumulate() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 1);
        uf.union(1, 2);
        assert_eq!(uf.component_size(2), 3);
        assert_eq!(uf.component_size(5), 1);
    }

    #[test]
    fn components_listing_is_deterministic_and_complete() {
        let mut uf = UnionFind::new(6);
        uf.union(4, 2);
        uf.union(0, 5);
        let comps = uf.components();
        let total: usize = comps.iter().map(Vec::len).sum();
        assert_eq!(total, 6);
        assert_eq!(comps[0], vec![0, 5]);
        assert_eq!(comps[1], vec![1]);
        assert_eq!(comps[2], vec![2, 4]);
    }

    #[test]
    fn component_labels_match_components() {
        let mut uf = UnionFind::new(5);
        uf.union(1, 3);
        let labels = uf.component_labels();
        assert_eq!(labels.len(), 5);
        assert_eq!(labels[1], labels[3]);
        assert_ne!(labels[0], labels[1]);
    }

    #[test]
    fn find_immutable_agrees_with_find() {
        let mut uf = UnionFind::new(8);
        uf.union(0, 7);
        uf.union(7, 3);
        let im = uf.find_immutable(3);
        let m = uf.find(3);
        assert_eq!(im, m);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn find_out_of_range_panics() {
        let mut uf = UnionFind::new(2);
        let _ = uf.find(2);
    }

    proptest! {
        /// Connectivity is an equivalence relation: after an arbitrary
        /// sequence of unions, `connected` is reflexive, symmetric and
        /// transitive, and the number of components plus the number of
        /// successful unions equals `n`.
        #[test]
        fn prop_union_find_invariants(n in 2usize..40, edges in proptest::collection::vec((0usize..40, 0usize..40), 0..80)) {
            let mut uf = UnionFind::new(n);
            let mut merges = 0usize;
            for (a, b) in edges {
                let (a, b) = (a % n, b % n);
                if uf.union(a, b) {
                    merges += 1;
                }
            }
            prop_assert_eq!(uf.n_components() + merges, n);
            // transitivity check on a few triples
            for i in 0..n.min(10) {
                for j in 0..n.min(10) {
                    for k in 0..n.min(10) {
                        if uf.connected(i, j) && uf.connected(j, k) {
                            prop_assert!(uf.connected(i, k));
                        }
                    }
                }
            }
        }

        /// The components listing partitions 0..n.
        #[test]
        fn prop_components_partition(n in 1usize..30, edges in proptest::collection::vec((0usize..30, 0usize..30), 0..40)) {
            let mut uf = UnionFind::new(n);
            for (a, b) in edges {
                uf.union(a % n, b % n);
            }
            let comps = uf.components();
            let mut all: Vec<usize> = comps.into_iter().flatten().collect();
            all.sort_unstable();
            prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
        }
    }
}
