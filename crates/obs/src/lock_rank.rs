//! Runtime lock-ordering guard: ranked mutexes that assert the workspace's
//! global lock-acquisition order on every acquisition in debug builds.
//!
//! The static side of this contract lives in `cvcp-analysis` (rule C1):
//! a lexical pass over the engine/server/obs sources extracts every
//! `Mutex`/`Condvar` acquisition site, builds the nesting graph and fails
//! CI on cycles.  Static analysis can only see *lexical* nesting, though —
//! a job closure that takes a cache-shard lock while a pool worker drives
//! it is invisible to a token scanner.  [`RankedMutex`] closes that gap
//! dynamically: each guarded mutex carries a [`LockRank`], a thread-local
//! stack records the ranks currently held, and acquiring a lock whose rank
//! is not strictly greater than every rank already held panics with both
//! lock names.  Any execution that would deadlock under some interleaving
//! therefore fails loudly under *every* interleaving, including the tests'.
//!
//! The declared global order (outermost first):
//!
//! | rank | lock | holder |
//! |------|------|--------|
//! | 10 | [`SERVER_QUEUE`] | `cvcp-server` `BoundedQueue` state |
//! | 20 | [`POOL_STATE`] | one `cvcp-engine` thread-pool deque (per worker per lane) |
//! | 25 | [`POOL_SLEEP`] | the pool's wake-up epoch behind its park condvar |
//! | 30 | [`CACHE_SHARD`] | one `ArtifactCache` shard map |
//! | 40 | [`CACHE_PROFILE`] | the cache's cost-profile EWMAs |
//!
//! Equal ranks never nest either (the order is *strictly* increasing), so
//! holding two cache shards at once — the classic sharded-store deadlock —
//! is also a violation.
//!
//! Cost model: in release builds the rank bookkeeping compiles away
//! entirely (`cfg!(debug_assertions)` is a compile-time constant) and a
//! `RankedMutex` is exactly a `std::sync::Mutex`.  In debug builds the
//! overhead is two thread-local `Vec` operations per acquisition.  The
//! guard is *checking only* — it never changes locking behaviour, so
//! results are bit-identical with the guard on or off (pinned by
//! `guard_on_off_bit_identity` in the suite tests).

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, LockResult, Mutex, MutexGuard, PoisonError, WaitTimeoutResult};
use std::time::Duration;

/// One position in the global lock-acquisition order.
#[derive(Debug)]
pub struct LockRank {
    /// Position in the global order: a lock may only be acquired while
    /// every held lock has a strictly smaller rank.
    pub rank: u16,
    /// Human-readable name used in violation panics.
    pub name: &'static str,
}

/// The serving front-end's bounded admission queue (outermost: held only
/// while admitting or popping a request, never across engine calls).
pub static SERVER_QUEUE: LockRank = LockRank {
    rank: 10,
    name: "server-queue",
};

/// One deque of the engine thread pool (each worker's per-lane deque and
/// each lane's shared injector carries its own mutex at this rank, so the
/// strict order makes holding two pool deques at once a violation — every
/// acquisition on the scheduling hot path must be transient).
pub static POOL_STATE: LockRank = LockRank {
    rank: 20,
    name: "pool-state",
};

/// The pool's wake-up epoch counter, guarded separately from the deques so
/// producers never publish a task and wake a sleeper under one big lock.
/// Ordered after the deques: a scan may baseline the epoch between deque
/// probes, never the other way around while a deque lock is held.
pub static POOL_SLEEP: LockRank = LockRank {
    rank: 25,
    name: "pool-sleep",
};

/// One shard of the engine's `ArtifactCache` (shards never nest: the rank
/// order is strict, so two shards held at once is a violation too).
pub static CACHE_SHARD: LockRank = LockRank {
    rank: 30,
    name: "cache-shard",
};

/// The artifact cache's per-kind compute-cost EWMA map (innermost).
pub static CACHE_PROFILE: LockRank = LockRank {
    rank: 40,
    name: "cache-profile",
};

/// Master switch for the debug-build assertions.  The stack bookkeeping
/// always runs in debug builds (so toggling mid-hold can never unbalance
/// the stack); only the order *assertion* is gated.
static CHECKING: AtomicBool = AtomicBool::new(true);

thread_local! {
    /// Ranks currently held by this thread, in acquisition order.
    static HELD: RefCell<Vec<(u16, &'static str)>> = const { RefCell::new(Vec::new()) };
}

/// Enables or disables the order assertion (debug builds only; release
/// builds never check).  Exists so tests can pin that the guard is
/// observation-only: results must be bit-identical with checking on/off.
pub fn set_checking_enabled(enabled: bool) {
    CHECKING.store(enabled, Ordering::SeqCst);
}

/// Whether acquisitions are currently asserted against the global order
/// (`false` in release builds regardless of the switch).
pub fn checking_enabled() -> bool {
    cfg!(debug_assertions) && CHECKING.load(Ordering::SeqCst)
}

/// Records an acquisition of `rank`, panicking on an order violation.
fn push_rank(rank: &'static LockRank) {
    if !cfg!(debug_assertions) {
        return;
    }
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if CHECKING.load(Ordering::SeqCst) {
            if let Some(&(top, top_name)) = held.last() {
                assert!(
                    top < rank.rank,
                    "lock-rank violation: acquiring `{}` (rank {}) while holding `{}` (rank {}); \
                     the global order is server-queue(10) < pool-state(20) < pool-sleep(25) < \
                     cache-shard(30) < cache-profile(40), strictly increasing",
                    rank.name,
                    rank.rank,
                    top_name,
                    top,
                );
            }
        }
        held.push((rank.rank, rank.name));
    });
}

/// Removes the most recent record of `rank` (guards may be dropped out of
/// acquisition order, so this is not necessarily the stack top).
fn pop_rank(rank: &'static LockRank) {
    if !cfg!(debug_assertions) {
        return;
    }
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(pos) = held.iter().rposition(|&(r, _)| r == rank.rank) {
            held.remove(pos);
        }
    });
}

/// A `std::sync::Mutex` that carries a [`LockRank`] and asserts the global
/// acquisition order on every `lock` in debug builds.
#[derive(Debug)]
pub struct RankedMutex<T> {
    rank: &'static LockRank,
    inner: Mutex<T>,
}

impl<T> RankedMutex<T> {
    /// A mutex at the given position in the global order.
    pub fn new(rank: &'static LockRank, value: T) -> Self {
        Self {
            rank,
            inner: Mutex::new(value),
        }
    }

    /// This mutex's position in the global order.
    pub fn rank(&self) -> &'static LockRank {
        self.rank
    }

    /// Acquires the lock, asserting (in debug builds) that its rank is
    /// strictly greater than every rank this thread already holds.
    pub fn lock(&self) -> Result<RankedMutexGuard<'_, T>, PoisonError<MutexGuard<'_, T>>> {
        push_rank(self.rank);
        match self.inner.lock() {
            Ok(guard) => Ok(RankedMutexGuard {
                rank: self.rank,
                guard: Some(guard),
            }),
            Err(poisoned) => {
                pop_rank(self.rank);
                Err(poisoned)
            }
        }
    }
}

/// RAII guard for a [`RankedMutex`]; releases the rank record on drop.
#[derive(Debug)]
pub struct RankedMutexGuard<'a, T> {
    rank: &'static LockRank,
    /// `Some` except transiently inside [`RankedCondvar::wait`].
    guard: Option<MutexGuard<'a, T>>,
}

impl<T> Deref for RankedMutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present outside wait")
    }
}

impl<T> DerefMut for RankedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present outside wait")
    }
}

impl<T> Drop for RankedMutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.guard.take().is_some() {
            pop_rank(self.rank);
        }
    }
}

/// A `std::sync::Condvar` companion to [`RankedMutex`]: waiting releases
/// the rank record for the duration of the wait (the OS releases the
/// mutex) and re-records it on wake-up.
#[derive(Debug, Default)]
pub struct RankedCondvar {
    inner: Condvar,
}

impl RankedCondvar {
    /// A fresh condition variable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Blocks until notified, releasing `guard`'s mutex (and rank) while
    /// asleep.
    pub fn wait<'a, T>(
        &self,
        mut guard: RankedMutexGuard<'a, T>,
    ) -> Result<RankedMutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>> {
        let rank = guard.rank;
        let inner = guard.guard.take().expect("guard present outside wait");
        pop_rank(rank);
        let woken = self.wait_reacquire(self.inner.wait(inner), rank)?;
        guard.guard = Some(woken);
        Ok(guard)
    }

    /// [`Self::wait`] with a timeout; the flag says whether it elapsed.
    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: RankedMutexGuard<'a, T>,
        timeout: Duration,
    ) -> Result<(RankedMutexGuard<'a, T>, WaitTimeoutResult), PoisonError<MutexGuard<'a, T>>> {
        let rank = guard.rank;
        let inner = guard.guard.take().expect("guard present outside wait");
        pop_rank(rank);
        match self.inner.wait_timeout(inner, timeout) {
            Ok((woken, timed_out)) => {
                push_rank(rank);
                guard.guard = Some(woken);
                Ok((guard, timed_out))
            }
            Err(poisoned) => {
                let (woken, _) = poisoned.into_inner();
                Err(PoisonError::new(woken))
            }
        }
    }

    /// Re-records `rank` after the OS handed the mutex back.
    fn wait_reacquire<'a, T>(
        &self,
        result: LockResult<MutexGuard<'a, T>>,
        rank: &'static LockRank,
    ) -> Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>> {
        match result {
            Ok(guard) => {
                push_rank(rank);
                Ok(guard)
            }
            Err(poisoned) => Err(poisoned),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    /// Serializes the tests that read or write the global [`CHECKING`]
    /// switch — without this, `disabling_checks_…` racing a
    /// panic-expecting test would be flaky.
    static TOGGLE: Mutex<()> = Mutex::new(());

    #[test]
    fn ordered_acquisition_is_allowed() {
        let outer = RankedMutex::new(&POOL_STATE, 1);
        let inner = RankedMutex::new(&CACHE_SHARD, 2);
        let a = outer.lock().unwrap();
        let b = inner.lock().unwrap();
        assert_eq!(*a + *b, 3);
    }

    #[test]
    fn reversed_acquisition_panics_under_debug_assertions() {
        let _serial = TOGGLE.lock().unwrap();
        if !checking_enabled() {
            return; // release profile: the guard compiles away
        }
        let shard = RankedMutex::new(&CACHE_SHARD, ());
        let pool = RankedMutex::new(&POOL_STATE, ());
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _inner_first = shard.lock().unwrap();
            let _outer_second = pool.lock().unwrap();
        }));
        let message = *result
            .expect_err("reversed order must panic")
            .downcast::<String>()
            .expect("panic carries a message");
        assert!(message.contains("lock-rank violation"), "{message}");
        assert!(message.contains("pool-state"), "{message}");
        assert!(message.contains("cache-shard"), "{message}");
    }

    #[test]
    fn equal_ranks_never_nest() {
        let _serial = TOGGLE.lock().unwrap();
        if !checking_enabled() {
            return;
        }
        let a = RankedMutex::new(&CACHE_SHARD, ());
        let b = RankedMutex::new(&CACHE_SHARD, ());
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _first = a.lock().unwrap();
            let _second = b.lock().unwrap();
        }));
        assert!(result.is_err(), "two same-rank locks held at once");
    }

    #[test]
    fn sequential_reacquisition_is_allowed() {
        // Release-then-acquire in any order is fine — only *nesting* is
        // ranked.
        let pool = RankedMutex::new(&POOL_STATE, ());
        let shard = RankedMutex::new(&CACHE_SHARD, ());
        drop(shard.lock().unwrap());
        drop(pool.lock().unwrap());
        drop(shard.lock().unwrap());
    }

    #[test]
    fn out_of_order_guard_drops_keep_the_stack_balanced() {
        let queue = RankedMutex::new(&SERVER_QUEUE, ());
        let pool = RankedMutex::new(&POOL_STATE, ());
        let shard = RankedMutex::new(&CACHE_SHARD, ());
        let a = queue.lock().unwrap();
        let b = pool.lock().unwrap();
        drop(a); // dropped before `b` — not LIFO
        let c = shard.lock().unwrap();
        drop(b);
        drop(c);
        // A fresh outermost acquisition still works: nothing leaked.
        drop(queue.lock().unwrap());
    }

    #[test]
    fn condvar_wait_releases_the_rank_while_asleep() {
        let pair = Arc::new((RankedMutex::new(&POOL_STATE, false), RankedCondvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let (lock, cvar) = &*pair;
                let mut ready = lock.lock().unwrap();
                while !*ready {
                    ready = cvar.wait(ready).unwrap();
                }
                // After wake-up the rank is re-held: acquiring an inner
                // lock must still be legal, an outer one must not be.
                let inner = RankedMutex::new(&CACHE_SHARD, ());
                drop(inner.lock().unwrap());
            })
        };
        {
            let (lock, cvar) = &*pair;
            *lock.lock().unwrap() = true;
            cvar.notify_all();
        }
        waiter.join().unwrap();
    }

    #[test]
    fn wait_timeout_round_trips_the_guard() {
        let lock = RankedMutex::new(&POOL_STATE, 7u32);
        let cvar = RankedCondvar::new();
        let guard = lock.lock().unwrap();
        let (guard, timed_out) = cvar.wait_timeout(guard, Duration::from_millis(1)).unwrap();
        assert!(timed_out.timed_out());
        assert_eq!(*guard, 7);
        drop(guard);
        // The rank was re-pushed on wake-up and popped on drop.
        drop(lock.lock().unwrap());
    }

    #[test]
    fn disabling_checks_suppresses_the_assertion_without_unbalancing() {
        let _serial = TOGGLE.lock().unwrap();
        if !cfg!(debug_assertions) {
            return;
        }
        set_checking_enabled(false);
        let shard = RankedMutex::new(&CACHE_SHARD, ());
        let pool = RankedMutex::new(&POOL_STATE, ());
        {
            let _inner_first = shard.lock().unwrap();
            let _outer_second = pool.lock().unwrap(); // tolerated while off
        }
        set_checking_enabled(true);
        // Stack stayed balanced: ordered nesting still works afterwards.
        let _outer = pool.lock().unwrap();
        let _inner = shard.lock().unwrap();
    }
}
