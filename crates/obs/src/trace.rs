//! Opt-in per-graph span recording.
//!
//! A [`SpanRecorder`] is attached to one graph execution when tracing is
//! requested (`CVCP_TRACE_DIR`, a `"trace": true` wire field, or an
//! explicit API call) and records one [`JobSpan`] per executed job:
//! enqueue/start/end ticks on a single per-graph monotonic clock, the
//! worker that ran it, which worker enqueued it (steal attribution), and
//! the job's cache hit/miss counts.
//!
//! The recorder is **lock-light**: each worker appends finished spans to
//! its own `Mutex<Vec<_>>` buffer, so the lock a worker takes is
//! uncontended in steady state — contention can only occur against the
//! final drain in [`SpanRecorder::finish`], which runs after the graph
//! completes.  Enqueue ticks are plain relaxed atomic stores into a
//! pre-sized slot per job.  Nothing here touches job RNG streams or
//! execution order, so traced and untraced runs are bit-identical.
//!
//! The finished [`GraphTrace`] is a plain value: spans sorted by job
//! index, the dependency lists needed for critical-path analysis, and the
//! graph's wall time.  Rendering (Chrome `trace_event` JSON) lives
//! upstream in `cvcp-core`, next to the workspace's JSON emitter.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Sentinel for "not enqueued by a pool worker" (graph submit thread, or
/// inline execution).
const NO_WORKER: usize = usize::MAX;

/// One executed job, on the recorder's per-graph monotonic clock
/// (nanoseconds since [`SpanRecorder`] creation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpan {
    /// Job index within the graph.
    pub job: usize,
    /// Human-readable label (e.g. `t0/p9/f3`), empty when the graph did
    /// not label this job.
    pub label: String,
    /// Pool worker that executed the job; `None` for inline execution.
    pub worker: Option<usize>,
    /// Priority lane the job ran on.
    pub lane: usize,
    /// Tick at which the job became ready and was enqueued.
    pub enqueue_ns: u64,
    /// Tick at which execution started.
    pub start_ns: u64,
    /// Tick at which execution finished.
    pub end_ns: u64,
    /// Pool worker whose local deque the job was enqueued on; `None` when
    /// it went through the injector (submitted from outside the pool).
    pub enqueued_by: Option<usize>,
    /// Artifact-cache hits observed while the job ran.
    pub cache_hits: u64,
    /// Artifact-cache misses (computes) observed while the job ran.
    pub cache_misses: u64,
}

impl JobSpan {
    /// Execute duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Ready-to-start wait in nanoseconds.
    pub fn queue_wait_ns(&self) -> u64 {
        self.start_ns.saturating_sub(self.enqueue_ns)
    }

    /// Whether the job was executed by a different worker than the one
    /// that enqueued it (i.e. it was stolen).  Injector-submitted jobs are
    /// never "stolen" — any worker may legitimately pick them up.
    pub fn stolen(&self) -> bool {
        match (self.enqueued_by, self.worker) {
            (Some(from), Some(ran)) => from != ran,
            _ => false,
        }
    }
}

/// Collects [`JobSpan`]s for one graph execution.
#[derive(Debug)]
pub struct SpanRecorder {
    name: String,
    epoch: Instant,
    n_workers: usize,
    /// One span buffer per worker plus one trailing buffer for spans
    /// recorded off-pool (inline mode, or the submitting thread).
    buffers: Vec<Mutex<Vec<JobSpan>>>,
    enqueue_ns: Vec<AtomicU64>,
    enqueued_by: Vec<AtomicUsize>,
    labels: Vec<String>,
    deps: Vec<Vec<usize>>,
}

impl SpanRecorder {
    /// A recorder for a graph of `deps.len()` jobs executed by up to
    /// `n_workers` pool workers.  `labels[j]` may be empty; `deps[j]`
    /// lists the indices of `j`'s dependencies.
    pub fn new(name: String, n_workers: usize, labels: Vec<String>, deps: Vec<Vec<usize>>) -> Self {
        assert_eq!(labels.len(), deps.len(), "one label slot per job");
        let n_jobs = deps.len();
        Self {
            name,
            epoch: Instant::now(),
            n_workers,
            buffers: (0..=n_workers).map(|_| Mutex::new(Vec::new())).collect(),
            enqueue_ns: (0..n_jobs).map(|_| AtomicU64::new(0)).collect(),
            enqueued_by: (0..n_jobs).map(|_| AtomicUsize::new(NO_WORKER)).collect(),
            labels,
            deps,
        }
    }

    /// Nanoseconds since the recorder's epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Marks `job` as enqueued now, by pool worker `by` (or `None` for
    /// the injector / inline path).
    pub fn mark_enqueue(&self, job: usize, by: Option<usize>) {
        self.enqueue_ns[job].store(self.now_ns(), Ordering::Relaxed);
        self.enqueued_by[job].store(by.unwrap_or(NO_WORKER), Ordering::Relaxed);
    }

    /// Records a finished job.  `worker` is the executing pool worker
    /// (`None` inline); ticks come from [`now_ns`](Self::now_ns).
    #[allow(clippy::too_many_arguments)]
    pub fn record_span(
        &self,
        job: usize,
        worker: Option<usize>,
        lane: usize,
        start_ns: u64,
        end_ns: u64,
        cache_hits: u64,
        cache_misses: u64,
    ) {
        let enqueued_by = match self.enqueued_by[job].load(Ordering::Relaxed) {
            NO_WORKER => None,
            w => Some(w),
        };
        let span = JobSpan {
            job,
            label: self.labels[job].clone(),
            worker,
            lane,
            enqueue_ns: self.enqueue_ns[job].load(Ordering::Relaxed),
            start_ns,
            end_ns,
            enqueued_by,
            cache_hits,
            cache_misses,
        };
        let buffer = worker
            .map(|w| &self.buffers[w.min(self.n_workers)])
            .unwrap_or(&self.buffers[self.n_workers]);
        buffer.lock().expect("span buffer lock").push(span);
    }

    /// Drains all buffers into a [`GraphTrace`].  Spans are sorted by job
    /// index, so the trace is deterministic regardless of which worker ran
    /// what.  Call after the graph has completed — spans recorded later
    /// are lost.
    pub fn finish(&self) -> GraphTrace {
        let wall_ns = self.now_ns();
        let mut spans: Vec<JobSpan> = self
            .buffers
            .iter()
            .flat_map(|b| std::mem::take(&mut *b.lock().expect("span buffer lock")))
            .collect();
        spans.sort_by_key(|s| s.job);
        GraphTrace {
            name: self.name.clone(),
            n_jobs: self.deps.len(),
            n_workers: self.n_workers,
            wall_ns,
            spans,
            deps: self.deps.clone(),
        }
    }
}

/// The finished timeline of one graph execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphTrace {
    /// Graph name (e.g. the request id), used as the trace file stem.
    pub name: String,
    /// Number of jobs in the graph (spans may be fewer if jobs were
    /// skipped by failed dependencies or cancellation).
    pub n_jobs: usize,
    /// Pool workers available during the run (0 for inline engines).
    pub n_workers: usize,
    /// Submit-to-finish wall time on the recorder's clock.
    pub wall_ns: u64,
    /// One span per *executed* job, sorted by job index.
    pub spans: Vec<JobSpan>,
    /// `deps[j]` = indices of job `j`'s dependencies.
    pub deps: Vec<Vec<usize>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder(n_jobs: usize, n_workers: usize) -> SpanRecorder {
        SpanRecorder::new(
            "t".into(),
            n_workers,
            vec![String::new(); n_jobs],
            vec![Vec::new(); n_jobs],
        )
    }

    #[test]
    fn spans_come_back_sorted_by_job() {
        let r = recorder(3, 2);
        for job in [2usize, 0, 1] {
            r.mark_enqueue(job, None);
            let t = r.now_ns();
            r.record_span(job, Some(job % 2), 0, t, t + 10, 0, 0);
        }
        let trace = r.finish();
        assert_eq!(trace.spans.len(), 3);
        assert_eq!(
            trace.spans.iter().map(|s| s.job).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(trace.n_jobs, 3);
    }

    #[test]
    fn steal_attribution_requires_a_local_enqueue() {
        let r = recorder(3, 2);
        r.mark_enqueue(0, Some(0));
        r.record_span(0, Some(1), 0, 1, 2, 0, 0); // enqueued by 0, ran on 1
        r.mark_enqueue(1, Some(1));
        r.record_span(1, Some(1), 0, 1, 2, 0, 0); // own deque
        r.mark_enqueue(2, None);
        r.record_span(2, Some(0), 0, 1, 2, 0, 0); // injector
        let trace = r.finish();
        assert!(trace.spans[0].stolen());
        assert!(!trace.spans[1].stolen());
        assert!(!trace.spans[2].stolen());
    }

    #[test]
    fn ticks_order_enqueue_before_start_before_end() {
        let r = recorder(1, 1);
        r.mark_enqueue(0, None);
        let start = r.now_ns();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let end = r.now_ns();
        r.record_span(0, Some(0), 1, start, end, 3, 1);
        let trace = r.finish();
        let s = &trace.spans[0];
        assert!(s.enqueue_ns <= s.start_ns);
        assert!(s.start_ns < s.end_ns);
        assert!(trace.wall_ns >= s.end_ns);
        assert_eq!(s.cache_hits, 3);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.lane, 1);
        assert!(s.duration_ns() >= 1_000_000);
    }
}
