//! Log-bucketed latency histograms with lock-free recording.
//!
//! [`LogHistogram`] is the always-on primitive behind every latency metric
//! in the workspace: 64 power-of-two buckets over nanoseconds, one relaxed
//! `fetch_add` per recorded sample, no locks and no allocation on the hot
//! path.  The trade is resolution — a bucket spans one octave — which is
//! exactly enough to answer "is p99 job latency 100µs or 10ms?" without
//! perturbing the thing being measured.
//!
//! Reads go through [`LogHistogram::snapshot`], which produces a plain
//! [`HistogramSnapshot`] value.  Snapshots merge *deterministically*
//! (bucket-wise addition — merging per-shard or per-worker histograms in
//! any order yields identical counts), and percentile queries are a pure
//! function of the snapshot, so two observers of the same state always
//! report the same p50/p90/p99.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two buckets: one per possible `floor(log2(nanos))`,
/// covering the full `u64` nanosecond range (bucket 63 ≈ 292 years).
pub const N_BUCKETS: usize = 64;

/// Bucket index for a sample: `floor(log2(nanos))`, with 0ns sharing the
/// `[1, 2)` bucket so every sample lands somewhere.
fn bucket_of(nanos: u64) -> usize {
    (63 - nanos.max(1).leading_zeros()) as usize
}

/// A concurrent histogram over nanosecond samples with power-of-two
/// buckets.  Recording is wait-free (relaxed atomics); reading is a full
/// [`snapshot`](LogHistogram::snapshot).
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one nanosecond sample.  Wait-free; safe to call from any
    /// number of threads concurrently.
    pub fn record(&self, nanos: u64) {
        self.buckets[bucket_of(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(nanos, Ordering::Relaxed);
        self.max.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Copies the current state into a plain value.  Concurrent recorders
    /// may land between the bucket reads and the aggregate reads, so a
    /// snapshot taken *during* recording is approximate at the margin; a
    /// snapshot taken at rest is exact.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`LogHistogram`]: merges deterministically,
/// answers percentile queries as a pure function of its buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: [u64; N_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no samples.
    pub fn empty() -> Self {
        Self {
            buckets: [0; N_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples in nanoseconds (saturating only at
    /// `u64::MAX`, which no realistic workload reaches).
    pub fn sum_nanos(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample, exact (not bucket-quantised).
    pub fn max_nanos(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean in nanoseconds, 0 when empty.
    pub fn mean_nanos(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The per-bucket counts (`buckets[i]` holds samples in
    /// `[2^i, 2^(i+1))` nanoseconds, with 0ns folded into bucket 0).
    pub fn buckets(&self) -> &[u64; N_BUCKETS] {
        &self.buckets
    }

    /// Bucket-wise sum of two snapshots.  Deterministic: merging any
    /// partition of a sample set in any order reproduces the snapshot of
    /// the whole set.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i] + other.buckets[i]),
            count: self.count + other.count,
            sum: self.sum + other.sum,
            max: self.max.max(other.max),
        }
    }

    /// Upper-bound estimate of the `q`-quantile (`q` in `[0, 1]`) in
    /// nanoseconds: the inclusive upper edge of the bucket containing the
    /// `ceil(q·count)`-th sample, clamped to the exact observed maximum.
    /// Returns 0 for an empty snapshot.  Monotone in `q` by construction.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // The rank is at least 1 so p0 reports the first bucket's edge.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = if i == 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Median upper bound — see [`percentile`](Self::percentile).
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 90th-percentile upper bound.
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    /// 99th-percentile upper bound.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_octaves() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
    }

    #[test]
    fn empty_snapshot_reports_zeroes() {
        let h = LogHistogram::new();
        let s = h.snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean_nanos(), 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
    }

    #[test]
    fn percentiles_bound_the_true_quantile_from_above() {
        let h = LogHistogram::new();
        for v in [100u64, 200, 400, 800, 1600, 3200, 6400, 12800, 25600, 51200] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 10);
        // The true median is between 1600 and 3200; the bucketed answer
        // must be >= 1600 and <= the max.
        assert!(s.p50() >= 1600 && s.p50() <= 51200);
        assert_eq!(s.p99(), 51200, "p99 clamps to the exact max");
        assert_eq!(s.max_nanos(), 51200);
        assert_eq!(s.mean_nanos(), 10230);
    }

    #[test]
    fn single_sample_percentiles_are_exact() {
        let h = LogHistogram::new();
        h.record(777);
        let s = h.snapshot();
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(s.percentile(q), 777, "q={q}");
        }
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LogHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 4000);
        assert_eq!(s.buckets().iter().sum::<u64>(), 4000);
    }
}
