//! # cvcp-obs
//!
//! Std-only observability primitives for the CVCP execution engine: the
//! instruments that make "4 workers are slower than 1" diagnosable instead
//! of mysterious.
//!
//! Three layers, cheapest first:
//!
//! * [`LogHistogram`] / [`HistogramSnapshot`] — always-on, lock-free
//!   log-bucketed latency histograms with deterministic merge and
//!   p50/p90/p99 queries;
//! * [`EngineMetrics`] — the engine-wide registry of those histograms plus
//!   per-worker busy/steal/park counters, shared by the pool, the graph
//!   executor, and the serving front-end's `metrics` endpoint;
//! * [`SpanRecorder`] / [`GraphTrace`] / [`GraphProfile`] — opt-in
//!   per-graph span recording into lock-light per-worker buffers, and the
//!   critical-path + utilization analysis computed from the result.
//!
//! This crate sits *below* `cvcp-engine` in the dependency order and has
//! no dependencies of its own; anything that needs JSON rendering (Chrome
//! `trace_event` export, wire payloads) lives upstream in `cvcp-core` and
//! `cvcp-server`, next to the workspace's in-tree JSON emitter.
//!
//! Everything here is timing-only: no instrument reads or advances a job
//! RNG stream, so enabling metrics or tracing can never change a
//! selection result.

pub mod hist;
pub mod lock_rank;
pub mod metrics;
pub mod profile;
pub mod trace;

pub use hist::{HistogramSnapshot, LogHistogram, N_BUCKETS};
pub use lock_rank::{LockRank, RankedCondvar, RankedMutex, RankedMutexGuard};
pub use metrics::{Counter, EngineMetrics, Gauge, MetricsSnapshot, WorkerSnapshot};
pub use profile::{GraphProfile, WorkerOccupancy};
pub use trace::{GraphTrace, JobSpan, SpanRecorder};
