//! The always-on engine metrics registry.
//!
//! One [`EngineMetrics`] lives for the lifetime of an engine and is shared
//! (via `Arc`) with its thread pool and every graph execution.  Recording
//! is a handful of relaxed atomic adds per event — cheap enough to leave
//! on in production and in benchmarks (the `bench_engine` artifact asserts
//! the overhead stays within budget).  A metrics-disabled registry (for
//! the A/B half of that assertion) turns every record call into a branch
//! on a constant-false bool.
//!
//! What is recorded, and where from:
//!
//! * **per-job run time** — the engine records each job's execute duration
//!   ([`EngineMetrics::record_job_run`]), bucketed per lane;
//! * **per-graph queue wait** — submit → first job start, per lane
//!   ([`EngineMetrics::record_graph_queue_wait`]): how long a whole graph
//!   sat before any worker touched it;
//! * **per-worker activity** — tasks executed, busy nanoseconds, tasks
//!   obtained by stealing, and parks (condvar waits), recorded by the pool
//!   worker loop.

use crate::hist::{HistogramSnapshot, LogHistogram};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A wait-free up/down counter for "how many right now" metrics — open
/// connections, in-flight requests, resident entries.  All operations are
/// single relaxed atomics; [`Gauge::dec`] saturates at zero instead of
/// wrapping, so a stray double-decrement shows up as a too-small gauge
/// rather than a 2^64-ish nonsense value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicUsize);

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments and returns the new value.
    pub fn inc(&self) -> usize {
        self.0.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Decrements (saturating at zero) and returns the new value.
    pub fn dec(&self) -> usize {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_sub(1);
            match self
                .0
                .compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return next,
                Err(seen) => current = seen,
            }
        }
    }

    /// The current value.
    pub fn get(&self) -> usize {
        self.0.load(Ordering::Relaxed)
    }
}

/// A wait-free monotonic event counter for "how many ever happened"
/// metrics — cache admission rejections, shard-budget rebalances.  All
/// operations are single relaxed atomics; unlike [`Gauge`] it never goes
/// down, so readers can difference two snapshots to get a rate.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one event and returns the new total.
    pub fn inc(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Counts `n` events and returns the new total.
    pub fn add(&self, n: u64) -> u64 {
        self.0.fetch_add(n, Ordering::Relaxed) + n
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Wait-free per-worker activity counters, recorded by the pool's worker
/// loop.
#[derive(Debug, Default)]
struct WorkerCounters {
    tasks: AtomicU64,
    busy_nanos: AtomicU64,
    steals: AtomicU64,
    parks: AtomicU64,
}

/// A plain copy of one worker's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerSnapshot {
    /// Tasks this worker executed (own, injected, or stolen).
    pub tasks: u64,
    /// Nanoseconds spent executing tasks (excludes queue handling and
    /// parked time).
    pub busy_nanos: u64,
    /// Tasks obtained by stealing from a sibling's local deque.
    pub steals: u64,
    /// Times the worker parked on the pool condvar with no work found.
    pub parks: u64,
}

/// The engine-wide always-on metrics registry.
#[derive(Debug)]
pub struct EngineMetrics {
    enabled: bool,
    job_run: Vec<LogHistogram>,
    graph_queue_wait: Vec<LogHistogram>,
    graphs_submitted: Vec<AtomicU64>,
    workers: Vec<WorkerCounters>,
}

impl EngineMetrics {
    /// A recording registry for `n_workers` pool workers and `n_lanes`
    /// priority lanes.  `n_workers` may be 0 (inline engines have no
    /// pool); graph- and job-level metrics still record.
    pub fn new(n_workers: usize, n_lanes: usize) -> Self {
        Self::build(n_workers, n_lanes, true)
    }

    /// A registry whose record calls all no-op.  Exists so benchmarks can
    /// measure the cost of the enabled one against a true baseline.
    pub fn disabled(n_workers: usize, n_lanes: usize) -> Self {
        Self::build(n_workers, n_lanes, false)
    }

    fn build(n_workers: usize, n_lanes: usize, enabled: bool) -> Self {
        Self {
            enabled,
            job_run: (0..n_lanes).map(|_| LogHistogram::new()).collect(),
            graph_queue_wait: (0..n_lanes).map(|_| LogHistogram::new()).collect(),
            graphs_submitted: (0..n_lanes).map(|_| AtomicU64::new(0)).collect(),
            workers: (0..n_workers).map(|_| WorkerCounters::default()).collect(),
        }
    }

    /// Whether record calls do anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Number of lanes this registry was built for.
    pub fn n_lanes(&self) -> usize {
        self.job_run.len()
    }

    /// Number of workers this registry was built for.
    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    /// Records one job's execute duration on `lane`.
    pub fn record_job_run(&self, lane: usize, nanos: u64) {
        if self.enabled {
            self.job_run[lane].record(nanos);
        }
    }

    /// Records a graph's submit → first-job-start wait on `lane`, and
    /// counts the graph as submitted.
    pub fn record_graph_queue_wait(&self, lane: usize, nanos: u64) {
        if self.enabled {
            self.graph_queue_wait[lane].record(nanos);
            self.graphs_submitted[lane].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one executed task on `worker`: `stolen` says whether it
    /// came from a sibling's local deque.
    ///
    /// Single-call form of [`record_task_start`](Self::record_task_start)
    /// plus [`record_task_busy`](Self::record_task_busy), for recorders
    /// that only learn about a task after it ran.
    pub fn record_task(&self, worker: usize, busy_nanos: u64, stolen: bool) {
        self.record_task_start(worker, stolen);
        self.record_task_busy(worker, busy_nanos);
    }

    /// Counts one task picked up by `worker` (`stolen` says whether it
    /// came from a sibling's local deque), *before* it executes.
    ///
    /// Recording the pick-up separately from the busy time matters for
    /// snapshot consistency: a task's own body may publish the result
    /// that unblocks a thread which immediately snapshots the registry,
    /// so any counter recorded only after execution could still be
    /// missing from a snapshot taken "after" the work completed.
    pub fn record_task_start(&self, worker: usize, stolen: bool) {
        if self.enabled {
            let w = &self.workers[worker];
            w.tasks.fetch_add(1, Ordering::Relaxed);
            if stolen {
                w.steals.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Adds one finished task's execute duration to `worker`'s busy time.
    pub fn record_task_busy(&self, worker: usize, busy_nanos: u64) {
        if self.enabled {
            self.workers[worker]
                .busy_nanos
                .fetch_add(busy_nanos, Ordering::Relaxed);
        }
    }

    /// Records one park (condvar wait with empty queues) on `worker`.
    pub fn record_park(&self, worker: usize) {
        if self.enabled {
            self.workers[worker].parks.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Copies the whole registry into a plain value.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            job_run: self.job_run.iter().map(LogHistogram::snapshot).collect(),
            graph_queue_wait: self
                .graph_queue_wait
                .iter()
                .map(LogHistogram::snapshot)
                .collect(),
            graphs_submitted: self
                .graphs_submitted
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            workers: self
                .workers
                .iter()
                .map(|w| WorkerSnapshot {
                    tasks: w.tasks.load(Ordering::Relaxed),
                    busy_nanos: w.busy_nanos.load(Ordering::Relaxed),
                    steals: w.steals.load(Ordering::Relaxed),
                    parks: w.parks.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

/// A plain copy of an [`EngineMetrics`] registry, one histogram snapshot
/// per lane plus per-worker counters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Per-lane job execute-duration histograms.
    pub job_run: Vec<HistogramSnapshot>,
    /// Per-lane graph submit→first-start wait histograms.
    pub graph_queue_wait: Vec<HistogramSnapshot>,
    /// Graphs submitted per lane.
    pub graphs_submitted: Vec<u64>,
    /// Per-worker activity counters.
    pub workers: Vec<WorkerSnapshot>,
}

impl MetricsSnapshot {
    /// All lanes' job-run histograms merged into one.
    pub fn job_run_all_lanes(&self) -> HistogramSnapshot {
        self.job_run
            .iter()
            .fold(HistogramSnapshot::empty(), |acc, h| acc.merge(h))
    }

    /// Total tasks stolen across workers divided by total tasks executed;
    /// 0 when nothing ran.
    pub fn steal_ratio(&self) -> f64 {
        let tasks: u64 = self.workers.iter().map(|w| w.tasks).sum();
        if tasks == 0 {
            return 0.0;
        }
        let steals: u64 = self.workers.iter().map(|w| w.steals).sum();
        steals as f64 / tasks as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_counts_up_and_down_and_saturates_at_zero() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0);
        assert_eq!(g.inc(), 1);
        assert_eq!(g.inc(), 2);
        assert_eq!(g.dec(), 1);
        assert_eq!(g.dec(), 0);
        assert_eq!(g.dec(), 0, "dec saturates instead of wrapping");
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn counter_accumulates_monotonically() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        assert_eq!(c.inc(), 1);
        assert_eq!(c.add(4), 5);
        assert_eq!(c.inc(), 6);
        assert_eq!(c.get(), 6);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let m = EngineMetrics::disabled(2, 2);
        m.record_job_run(0, 1000);
        m.record_graph_queue_wait(1, 2000);
        m.record_task(0, 500, true);
        m.record_park(1);
        let s = m.snapshot();
        assert_eq!(
            s,
            MetricsSnapshot {
                job_run: vec![HistogramSnapshot::empty(); 2],
                graph_queue_wait: vec![HistogramSnapshot::empty(); 2],
                graphs_submitted: vec![0, 0],
                workers: vec![WorkerSnapshot::default(); 2],
            }
        );
    }

    #[test]
    fn enabled_registry_attributes_events() {
        let m = EngineMetrics::new(2, 2);
        m.record_job_run(0, 1000);
        m.record_job_run(0, 3000);
        m.record_job_run(1, 8000);
        m.record_graph_queue_wait(1, 4000);
        m.record_task(0, 500, false);
        m.record_task(1, 700, true);
        m.record_park(1);
        let s = m.snapshot();
        assert_eq!(s.job_run[0].count(), 2);
        assert_eq!(s.job_run[1].count(), 1);
        assert_eq!(s.job_run_all_lanes().count(), 3);
        assert_eq!(s.graphs_submitted, vec![0, 1]);
        assert_eq!(s.graph_queue_wait[1].max_nanos(), 4000);
        assert_eq!(s.workers[0].tasks, 1);
        assert_eq!(s.workers[1].steals, 1);
        assert_eq!(s.workers[1].parks, 1);
        assert!((s.steal_ratio() - 0.5).abs() < 1e-12);
    }
}
