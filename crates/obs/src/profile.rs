//! Critical-path and utilization analysis over a recorded [`GraphTrace`].
//!
//! The question a [`GraphProfile`] answers: *given what actually ran,
//! where did the wall time go?*  Three decompositions:
//!
//! * **critical path** — the longest dependency chain through the graph,
//!   weighted by each job's measured execute duration.  No schedule can
//!   finish faster than this, so `wall_ns / critical_path_ns` says how
//!   much of the observed time is schedule overhead (queue wait, worker
//!   wakeup, lock contention) rather than inherent serialisation;
//! * **per-worker occupancy** — busy nanoseconds per worker over the wall
//!   clock, exposing idle workers and load imbalance;
//! * **queue waits and steals** — how long ready jobs sat before starting,
//!   and what fraction of executed jobs were stolen from another worker's
//!   deque.

use crate::trace::GraphTrace;

/// One worker's share of a traced graph execution.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerOccupancy {
    /// Worker index; [`GraphProfile`] appends one synthetic row (index
    /// `n_workers`) for spans executed off-pool (inline mode).
    pub worker: usize,
    /// Jobs this worker executed.
    pub tasks: u64,
    /// Nanoseconds spent executing jobs.
    pub busy_ns: u64,
    /// `busy_ns` over the graph's wall time, in `[0, 1]` (clamped).
    pub occupancy: f64,
}

/// Critical-path + utilization report for one traced graph execution.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphProfile {
    /// Graph name, copied from the trace.
    pub name: String,
    /// Jobs in the graph.
    pub n_jobs: usize,
    /// Jobs that actually executed (spans recorded).
    pub n_executed: usize,
    /// Pool workers available.
    pub n_workers: usize,
    /// Submit-to-finish wall time.
    pub wall_ns: u64,
    /// Sum of all job execute durations.
    pub total_busy_ns: u64,
    /// Duration of the longest dependency chain — the lower bound any
    /// schedule must obey.
    pub critical_path_ns: u64,
    /// Job indices along that chain, in execution order.
    pub critical_path_jobs: Vec<usize>,
    /// `total_busy_ns / wall_ns`: average number of busy workers.
    pub parallelism: f64,
    /// `wall_ns / critical_path_ns` (≥ 1 in a faithful trace): 1.0 means
    /// the schedule was optimal; the excess is scheduling overhead.
    pub schedule_overhead: f64,
    /// Fraction of executed jobs taken from another worker's deque.
    pub steal_ratio: f64,
    /// Sum over executed jobs of (start − enqueue).
    pub total_queue_wait_ns: u64,
    /// Largest single (start − enqueue).
    pub max_queue_wait_ns: u64,
    /// Per-worker occupancy rows, one per pool worker plus a synthetic
    /// off-pool row when any span ran outside the pool.
    pub workers: Vec<WorkerOccupancy>,
}

impl GraphProfile {
    /// Computes the profile for a recorded trace.  Pure function of the
    /// trace; `deps` entries always point at lower job indices (the graph
    /// builder only accepts existing jobs as dependencies), which makes
    /// the longest-path pass a single forward sweep.
    pub fn from_trace(trace: &GraphTrace) -> GraphProfile {
        let mut dur = vec![0u64; trace.n_jobs];
        for s in &trace.spans {
            dur[s.job] = s.duration_ns();
        }

        // Longest chain ending at each job, with a back-pointer for
        // reconstruction.
        let mut chain = vec![0u64; trace.n_jobs];
        let mut prev: Vec<Option<usize>> = vec![None; trace.n_jobs];
        for j in 0..trace.n_jobs {
            let best = trace.deps[j]
                .iter()
                .map(|&d| (chain[d], d))
                .max_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
            let base = match best {
                Some((w, d)) => {
                    prev[j] = Some(d);
                    w
                }
                None => 0,
            };
            chain[j] = base + dur[j];
        }
        let (critical_path_ns, tail) = chain
            .iter()
            .copied()
            .enumerate()
            .map(|(j, w)| (w, j))
            .max_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)))
            .map(|(w, j)| (w, Some(j)))
            .unwrap_or((0, None));
        let mut critical_path_jobs = Vec::new();
        let mut cursor = tail;
        while let Some(j) = cursor {
            critical_path_jobs.push(j);
            cursor = prev[j];
        }
        critical_path_jobs.reverse();

        let mut rows: Vec<WorkerOccupancy> = (0..trace.n_workers)
            .map(|worker| WorkerOccupancy {
                worker,
                tasks: 0,
                busy_ns: 0,
                occupancy: 0.0,
            })
            .collect();
        let mut off_pool = WorkerOccupancy {
            worker: trace.n_workers,
            tasks: 0,
            busy_ns: 0,
            occupancy: 0.0,
        };
        let mut total_busy_ns = 0u64;
        let mut total_queue_wait_ns = 0u64;
        let mut max_queue_wait_ns = 0u64;
        let mut stolen = 0u64;
        for s in &trace.spans {
            let row = match s.worker {
                Some(w) if w < trace.n_workers => &mut rows[w],
                _ => &mut off_pool,
            };
            row.tasks += 1;
            row.busy_ns += s.duration_ns();
            total_busy_ns += s.duration_ns();
            total_queue_wait_ns += s.queue_wait_ns();
            max_queue_wait_ns = max_queue_wait_ns.max(s.queue_wait_ns());
            if s.stolen() {
                stolen += 1;
            }
        }
        if off_pool.tasks > 0 {
            rows.push(off_pool);
        }
        let wall = trace.wall_ns.max(1) as f64;
        for row in &mut rows {
            row.occupancy = (row.busy_ns as f64 / wall).min(1.0);
        }

        let n_executed = trace.spans.len();
        GraphProfile {
            name: trace.name.clone(),
            n_jobs: trace.n_jobs,
            n_executed,
            n_workers: trace.n_workers,
            wall_ns: trace.wall_ns,
            total_busy_ns,
            critical_path_ns,
            critical_path_jobs,
            parallelism: total_busy_ns as f64 / wall,
            schedule_overhead: trace.wall_ns as f64 / critical_path_ns.max(1) as f64,
            steal_ratio: if n_executed == 0 {
                0.0
            } else {
                stolen as f64 / n_executed as f64
            },
            total_queue_wait_ns,
            max_queue_wait_ns,
            workers: rows,
        }
    }

    /// Mean ready-to-start wait per executed job.
    pub fn mean_queue_wait_ns(&self) -> u64 {
        if self.n_executed == 0 {
            0
        } else {
            self.total_queue_wait_ns / self.n_executed as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SpanRecorder;

    /// Builds a trace with controlled ticks: `jobs[j] = (deps, worker,
    /// enqueue, start, end)`.
    fn synthetic(n_workers: usize, jobs: &[(&[usize], usize, u64, u64, u64)]) -> GraphTrace {
        let deps: Vec<Vec<usize>> = jobs.iter().map(|(d, ..)| d.to_vec()).collect();
        let labels = vec![String::new(); jobs.len()];
        let r = SpanRecorder::new("synthetic".into(), n_workers, labels, deps);
        let mut trace = r.finish();
        trace.spans = jobs
            .iter()
            .enumerate()
            .map(|(j, &(_, worker, enq, start, end))| crate::trace::JobSpan {
                job: j,
                label: String::new(),
                worker: Some(worker),
                lane: 0,
                enqueue_ns: enq,
                start_ns: start,
                end_ns: end,
                enqueued_by: None,
                cache_hits: 0,
                cache_misses: 0,
            })
            .collect();
        trace.wall_ns = jobs.iter().map(|&(.., end)| end).max().unwrap_or(0);
        trace
    }

    #[test]
    fn critical_path_is_the_longest_dependency_chain() {
        // 0 (10ns) → 1 (30ns) → 3 (5ns); 2 (20ns) independent.
        let trace = synthetic(
            2,
            &[
                (&[], 0, 0, 0, 10),
                (&[0], 0, 10, 10, 40),
                (&[], 1, 0, 0, 20),
                (&[1], 1, 40, 45, 50),
            ],
        );
        let p = GraphProfile::from_trace(&trace);
        assert_eq!(p.critical_path_ns, 45);
        assert_eq!(p.critical_path_jobs, vec![0, 1, 3]);
        assert_eq!(p.total_busy_ns, 65);
        assert_eq!(p.wall_ns, 50);
        assert!((p.parallelism - 65.0 / 50.0).abs() < 1e-12);
        assert!((p.schedule_overhead - 50.0 / 45.0).abs() < 1e-12);
    }

    #[test]
    fn occupancy_and_queue_waits_attribute_per_worker() {
        let mut trace = synthetic(
            2,
            &[
                (&[], 0, 0, 0, 60),  // worker 0 busy 60 of 100
                (&[], 1, 0, 20, 40), // worker 1 busy 20, waited 20
            ],
        );
        trace.wall_ns = 100;
        let p = GraphProfile::from_trace(&trace);
        assert_eq!(p.workers.len(), 2);
        assert!((p.workers[0].occupancy - 0.6).abs() < 1e-9);
        assert!((p.workers[1].occupancy - 0.2).abs() < 1e-9);
        assert_eq!(p.total_queue_wait_ns, 20);
        assert_eq!(p.max_queue_wait_ns, 20);
        assert_eq!(p.mean_queue_wait_ns(), 10);
    }

    #[test]
    fn empty_trace_profiles_without_dividing_by_zero() {
        let r = SpanRecorder::new("empty".into(), 0, Vec::new(), Vec::new());
        let p = GraphProfile::from_trace(&r.finish());
        assert_eq!(p.n_executed, 0);
        assert_eq!(p.critical_path_ns, 0);
        assert_eq!(p.steal_ratio, 0.0);
        assert!(p.critical_path_jobs.is_empty());
    }

    #[test]
    fn skipped_jobs_contribute_zero_duration_to_the_path() {
        // Job 1 never executed (no span): chain 0→1→2 weighs only 0 and 2.
        let deps = vec![vec![], vec![0], vec![1]];
        let r = SpanRecorder::new("skip".into(), 1, vec![String::new(); 3], deps);
        let mut trace = r.finish();
        trace.spans = vec![
            crate::trace::JobSpan {
                job: 0,
                label: String::new(),
                worker: Some(0),
                lane: 0,
                enqueue_ns: 0,
                start_ns: 0,
                end_ns: 10,
                enqueued_by: None,
                cache_hits: 0,
                cache_misses: 0,
            },
            crate::trace::JobSpan {
                job: 2,
                label: String::new(),
                worker: Some(0),
                lane: 0,
                enqueue_ns: 10,
                start_ns: 10,
                end_ns: 25,
                enqueued_by: None,
                cache_hits: 0,
                cache_misses: 0,
            },
        ];
        trace.wall_ns = 25;
        let p = GraphProfile::from_trace(&trace);
        assert_eq!(p.n_executed, 2);
        assert_eq!(p.critical_path_ns, 25);
        assert_eq!(p.critical_path_jobs, vec![0, 1, 2]);
    }
}
