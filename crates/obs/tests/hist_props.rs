//! Property tests for the log-bucketed histogram under the vendored
//! proptest shim:
//!
//! * merging the snapshots of any partition of a sample set reproduces
//!   the snapshot of the whole set, in any merge order;
//! * percentile queries are monotone in `q` and bound the exact sample
//!   quantile from above (clamped to the exact max);
//! * bucket totals always account for every recorded sample.

use cvcp_obs::{HistogramSnapshot, LogHistogram};
use proptest::prelude::*;

/// Samples spanning many octaves, including the 0/1 shared bucket.
fn arb_nanos() -> impl Strategy<Value = u64> {
    (0u64..40, 0u64..1000).prop_map(|(shift, fill)| (1u64 << shift).saturating_add(fill) - 1)
}

fn record_all(samples: &[u64]) -> HistogramSnapshot {
    let h = LogHistogram::new();
    for &s in samples {
        h.record(s);
    }
    h.snapshot()
}

proptest! {
    #[test]
    fn merge_of_splits_equals_whole(
        samples in proptest::collection::vec(arb_nanos(), 0..200),
        cut_a in 0usize..201,
        cut_b in 0usize..201,
    ) {
        let (lo, hi) = if cut_a <= cut_b { (cut_a, cut_b) } else { (cut_b, cut_a) };
        let lo = lo.min(samples.len());
        let hi = hi.min(samples.len());
        let whole = record_all(&samples);
        let a = record_all(&samples[..lo]);
        let b = record_all(&samples[lo..hi]);
        let c = record_all(&samples[hi..]);
        // Any merge order reproduces the whole.
        prop_assert_eq!(&a.merge(&b).merge(&c), &whole);
        prop_assert_eq!(&c.merge(&a).merge(&b), &whole);
        prop_assert_eq!(&HistogramSnapshot::empty().merge(&whole), &whole);
    }

    #[test]
    fn percentiles_are_monotone_and_bound_the_sample_quantile(
        samples in proptest::collection::vec(arb_nanos(), 1..150),
    ) {
        let snap = record_all(&samples);
        let mut sorted = samples.clone();
        sorted.sort_unstable();

        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        let mut last = 0u64;
        for &q in &qs {
            let p = snap.percentile(q);
            prop_assert!(p >= last, "percentile must be monotone in q");
            last = p;

            // The bucketed answer bounds the exact quantile from above.
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            prop_assert!(
                p >= exact,
                "p({q}) = {p} underestimates exact quantile {exact}"
            );
            prop_assert!(p <= snap.max_nanos(), "percentile exceeds the observed max");
        }
        prop_assert_eq!(snap.percentile(1.0), *sorted.last().unwrap());
    }

    #[test]
    fn bucket_totals_account_for_every_sample(
        samples in proptest::collection::vec(arb_nanos(), 0..150),
    ) {
        let snap = record_all(&samples);
        prop_assert_eq!(snap.count(), samples.len() as u64);
        prop_assert_eq!(snap.buckets().iter().sum::<u64>(), samples.len() as u64);
        prop_assert_eq!(snap.sum_nanos(), samples.iter().sum::<u64>());
        prop_assert_eq!(snap.max_nanos(), samples.iter().copied().max().unwrap_or(0));
    }
}
