//! Serializable model-selection requests and their lowering onto an
//! execution [`Engine`].
//!
//! A [`SelectionRequest`] is the unit of work a serving front-end accepts
//! over the wire: it references a data-set replica *by name* (resolved
//! through `cvcp_data::replicas::replica_by_name`), names the algorithm
//! family and its candidate parameter grid, describes how the side
//! information is drawn ([`SideInfoSpec`]) and pins every random choice to
//! a `seed`.  Two lowerings share one realization path and are therefore
//! **bit-identical**:
//!
//! * [`RealizedSelection::select`] — the in-process reference, running
//!   [`select_model_with`];
//! * [`RealizedSelection::select_streaming`] — the serving path, running
//!   [`select_model_streaming`] with per-parameter progress events and a
//!   [`CancelToken`].

use crate::algorithm::{FoscMethod, MpckMethod, ParameterizedMethod};
use crate::crossval::CvcpConfig;
use crate::experiment::SideInfoSpec;
use crate::selection::{
    select_model_streaming, select_model_streaming_traced, select_model_with, CvcpSelection,
    SelectionCancelled, SelectionProgress,
};
use cvcp_constraints::SideInformation;
use cvcp_data::replicas::{replica_by_name, replica_name_is_known};
use cvcp_data::rng::SeededRng;
use cvcp_data::Dataset;
use cvcp_engine::{CancelToken, Engine, GraphTrace, Priority};

/// The algorithm families a request can select over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// FOSC-OPTICSDend (parameter: `MinPts`).
    Fosc,
    /// MPCKMeans (parameter: `k`).
    MpckMeans,
}

impl Algorithm {
    /// Parses a wire-format algorithm name (`fosc` / `mpck`).
    pub fn parse(name: &str) -> Option<Algorithm> {
        match name {
            "fosc" => Some(Algorithm::Fosc),
            "mpck" => Some(Algorithm::MpckMeans),
            _ => None,
        }
    }

    /// The wire-format name.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Fosc => "fosc",
            Algorithm::MpckMeans => "mpck",
        }
    }

    /// Instantiates the method family with its paper defaults.
    pub fn method(&self) -> Box<dyn ParameterizedMethod> {
        match self {
            Algorithm::Fosc => Box::new(FoscMethod::default()),
            Algorithm::MpckMeans => Box::new(MpckMethod::default()),
        }
    }
}

/// A fully-specified, serializable model-selection request.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionRequest {
    /// Caller-chosen request identifier, echoed on every response event
    /// — the correlation key of the wire protocol.  On a pipelined
    /// (protocol-v2) connection the id is how interleaved response
    /// streams are demultiplexed, so it must be unique among the
    /// connection's in-flight requests (the server refuses reuse with
    /// `duplicate_id` and assigns `req-<n>` when left empty); an empty
    /// id is fine for in-process use.
    pub id: String,
    /// Replica name (see `cvcp_data::replicas::replica_by_name`).
    pub dataset: String,
    /// The algorithm family to select a parameter for.
    pub algorithm: Algorithm,
    /// Candidate parameter grid; empty means the family's default range.
    pub params: Vec<usize>,
    /// How the side information is drawn from the replica's ground truth.
    pub side_info: SideInfoSpec,
    /// Requested number of cross-validation folds.
    pub n_folds: usize,
    /// Whether Scenario-I fold assignment is stratified by class.
    pub stratified: bool,
    /// Seed pinning the replica generation, side-information draw and
    /// every evaluation stream.
    pub seed: u64,
    /// Requested scheduling lane; `None` lets the serving front-end apply
    /// its configured default ([`Priority::Interactive`] unless
    /// overridden).  Pure scheduling — results are bit-identical across
    /// lanes.
    pub priority: Option<Priority>,
    /// Whether the caller asked for a per-job execution timeline
    /// ([`GraphTrace`]).  Timing-only — results are bit-identical with
    /// tracing on or off; serving front-ends honour it by calling
    /// [`run_selection_request_traced`].
    pub trace: bool,
}

/// Why a [`SelectionRequest`] could not be lowered.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestError {
    /// The referenced data-set name is not in the replica registry.
    UnknownDataset(String),
    /// Fewer than two cross-validation folds were requested.
    BadFolds(usize),
    /// A candidate parameter value is zero (neither `MinPts` nor `k` admit
    /// it).
    BadParam(usize),
    /// A side-information fraction is outside `(0, 1]`.
    BadFraction {
        /// Which fraction field was out of range.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::UnknownDataset(name) => write!(f, "unknown dataset {name:?}"),
            RequestError::BadFolds(n) => write!(f, "at least 2 folds are required, got {n}"),
            RequestError::BadParam(p) => {
                write!(f, "candidate parameters must be at least 1, got {p}")
            }
            RequestError::BadFraction { field, value } => {
                write!(f, "{field} must be in (0, 1], got {value}")
            }
        }
    }
}

impl std::error::Error for RequestError {}

/// A request lowered to concrete in-memory inputs: the realized replica,
/// one draw of side information, and the post-draw RNG state that the
/// selection continues from.
pub struct RealizedSelection {
    /// The resolved data-set replica.
    pub dataset: Dataset,
    /// The drawn side information.
    pub side: SideInformation,
    /// Cross-validation configuration.
    pub config: CvcpConfig,
    /// The effective candidate grid (request grid, or the family default).
    pub params: Vec<usize>,
    /// The method family.
    pub method: Box<dyn ParameterizedMethod>,
    /// RNG state after the side-information draw; fold construction and the
    /// grid streams continue from here.
    pub rng: SeededRng,
    /// The scheduling lane the lowered graph is queued on.
    pub priority: Priority,
}

impl SelectionRequest {
    /// Checks everything that can be rejected without touching data.  The
    /// dataset check is by *name* only ([`replica_name_is_known`]) — no
    /// replica is generated, so admission control stays cheap.
    pub fn validate(&self) -> Result<(), RequestError> {
        if self.n_folds < 2 {
            return Err(RequestError::BadFolds(self.n_folds));
        }
        if let Some(&p) = self.params.iter().find(|&&p| p == 0) {
            return Err(RequestError::BadParam(p));
        }
        let fraction_ok = |v: f64| v > 0.0 && v <= 1.0;
        match self.side_info {
            SideInfoSpec::LabelFraction(f) if !fraction_ok(f) => {
                return Err(RequestError::BadFraction {
                    field: "side_info.fraction",
                    value: f,
                })
            }
            SideInfoSpec::ConstraintSample { pool_fraction, .. } if !fraction_ok(pool_fraction) => {
                return Err(RequestError::BadFraction {
                    field: "side_info.pool_fraction",
                    value: pool_fraction,
                })
            }
            SideInfoSpec::ConstraintSample {
                sample_fraction, ..
            } if !fraction_ok(sample_fraction) => {
                return Err(RequestError::BadFraction {
                    field: "side_info.sample_fraction",
                    value: sample_fraction,
                })
            }
            _ => {}
        }
        if !replica_name_is_known(&self.dataset) {
            return Err(RequestError::UnknownDataset(self.dataset.clone()));
        }
        Ok(())
    }

    /// Lowers the request: resolves the replica, draws the side
    /// information and freezes the RNG state the selection continues from.
    /// Deterministic in the request alone.
    pub fn realize(&self) -> Result<RealizedSelection, RequestError> {
        self.validate()?;
        let dataset = replica_by_name(&self.dataset, self.seed)
            .ok_or_else(|| RequestError::UnknownDataset(self.dataset.clone()))?;
        let mut rng = SeededRng::new(self.seed);
        let side = self.side_info.generate(&dataset, &mut rng);
        let method = self.algorithm.method();
        let params = if self.params.is_empty() {
            method.default_parameter_range(dataset.n_classes())
        } else {
            self.params.clone()
        };
        Ok(RealizedSelection {
            dataset,
            side,
            config: CvcpConfig {
                n_folds: self.n_folds,
                stratified: self.stratified,
            },
            params,
            method,
            rng,
            priority: self.priority.unwrap_or_default(),
        })
    }
}

impl RealizedSelection {
    /// The in-process reference lowering: plain [`select_model_with`].
    pub fn select(mut self, engine: &Engine) -> CvcpSelection {
        select_model_with(
            engine,
            &*self.method,
            self.dataset.matrix(),
            &self.side,
            &self.params,
            &self.config,
            &mut self.rng,
        )
    }

    /// The serving lowering: [`select_model_streaming`] with per-parameter
    /// progress, cancellation and the request's scheduling lane.
    /// Bit-identical to [`Self::select`] when it completes.
    pub fn select_streaming<F>(
        mut self,
        engine: &Engine,
        cancel: Option<CancelToken>,
        on_progress: F,
    ) -> Result<CvcpSelection, SelectionCancelled>
    where
        F: FnMut(SelectionProgress) + Send + 'static,
    {
        select_model_streaming(
            engine,
            &*self.method,
            self.dataset.matrix(),
            &self.side,
            &self.params,
            &self.config,
            &mut self.rng,
            self.priority,
            cancel,
            on_progress,
        )
    }

    /// [`Self::select_streaming`] with a per-job timeline recorded under
    /// `trace_name`.  The selection is bit-identical to the untraced
    /// lowering; the trace is `None` only if the run was cancelled.
    pub fn select_streaming_traced<F>(
        mut self,
        engine: &Engine,
        trace_name: String,
        cancel: Option<CancelToken>,
        on_progress: F,
    ) -> Result<(CvcpSelection, Option<GraphTrace>), SelectionCancelled>
    where
        F: FnMut(SelectionProgress) + Send + 'static,
    {
        select_model_streaming_traced(
            engine,
            &*self.method,
            self.dataset.matrix(),
            &self.side,
            &self.params,
            &self.config,
            &mut self.rng,
            self.priority,
            cancel,
            Some(trace_name),
            on_progress,
        )
    }
}

/// How running a request can fail.
#[derive(Debug, Clone, PartialEq)]
pub enum RunRequestError {
    /// The request failed validation / lowering.
    Invalid(RequestError),
    /// The cancel token fired before the selection finished.
    Cancelled,
}

impl std::fmt::Display for RunRequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunRequestError::Invalid(e) => write!(f, "invalid request: {e}"),
            RunRequestError::Cancelled => write!(f, "request was cancelled"),
        }
    }
}

impl std::error::Error for RunRequestError {}

/// Validates, lowers and executes a request on `engine`, streaming
/// per-parameter progress and honouring `cancel`.
///
/// The returned selection is bit-identical to
/// `request.realize()?.select(engine)` — the contract the serving smoke
/// tests assert end-to-end over TCP.
pub fn run_selection_request<F>(
    engine: &Engine,
    request: &SelectionRequest,
    cancel: Option<CancelToken>,
    on_progress: F,
) -> Result<CvcpSelection, RunRequestError>
where
    F: FnMut(SelectionProgress) + Send + 'static,
{
    let realized = request.realize().map_err(RunRequestError::Invalid)?;
    realized
        .select_streaming(engine, cancel, on_progress)
        .map_err(|SelectionCancelled| RunRequestError::Cancelled)
}

/// [`run_selection_request`] with a per-job timeline recorded under the
/// request's `id`.  The selection is bit-identical to the untraced run —
/// tracing is timing-only (the serving smoke tests assert this end-to-end
/// over TCP).  The trace covers the full evaluation graph; render it with
/// [`crate::trace_export::write_chrome_trace`] or summarise it via
/// [`cvcp_engine::GraphProfile`].
pub fn run_selection_request_traced<F>(
    engine: &Engine,
    request: &SelectionRequest,
    cancel: Option<CancelToken>,
    on_progress: F,
) -> Result<(CvcpSelection, Option<GraphTrace>), RunRequestError>
where
    F: FnMut(SelectionProgress) + Send + 'static,
{
    let realized = request.realize().map_err(RunRequestError::Invalid)?;
    realized
        .select_streaming_traced(engine, request.id.clone(), cancel, on_progress)
        .map_err(|SelectionCancelled| RunRequestError::Cancelled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    fn request(algorithm: Algorithm, params: Vec<usize>) -> SelectionRequest {
        SelectionRequest {
            id: "req-1".to_string(),
            dataset: "iris_like".to_string(),
            algorithm,
            params,
            side_info: SideInfoSpec::LabelFraction(0.2),
            n_folds: 4,
            stratified: true,
            seed: 21,
            priority: None,
            trace: false,
        }
    }

    #[test]
    fn validation_rejects_bad_requests() {
        let mut r = request(Algorithm::Fosc, vec![3, 6]);
        r.dataset = "nope".into();
        assert!(matches!(r.validate(), Err(RequestError::UnknownDataset(_))));
        let mut r = request(Algorithm::Fosc, vec![3, 6]);
        r.n_folds = 1;
        assert_eq!(r.validate(), Err(RequestError::BadFolds(1)));
        let mut r = request(Algorithm::Fosc, vec![3, 0, 6]);
        assert_eq!(r.validate(), Err(RequestError::BadParam(0)));
        r.params = vec![3, 6];
        r.side_info = SideInfoSpec::LabelFraction(0.0);
        assert!(matches!(
            r.validate(),
            Err(RequestError::BadFraction { .. })
        ));
        let mut r = request(Algorithm::Fosc, vec![3, 6]);
        r.side_info = SideInfoSpec::ConstraintSample {
            pool_fraction: 0.1,
            sample_fraction: 1.5,
        };
        assert!(matches!(
            r.validate(),
            Err(RequestError::BadFraction { .. })
        ));
        assert!(request(Algorithm::MpckMeans, vec![2, 3]).validate().is_ok());
    }

    #[test]
    fn algorithm_names_round_trip() {
        for algo in [Algorithm::Fosc, Algorithm::MpckMeans] {
            assert_eq!(Algorithm::parse(algo.name()), Some(algo));
        }
        assert_eq!(Algorithm::parse("kmeans"), None);
    }

    #[test]
    fn empty_params_fall_back_to_the_default_range() {
        let realized = request(Algorithm::MpckMeans, vec![]).realize().unwrap();
        // iris_like has 3 classes -> default k range 2..=6
        assert_eq!(realized.params, vec![2, 3, 4, 5, 6]);
    }

    #[test]
    fn streaming_request_matches_the_reference_bit_for_bit() {
        for algorithm in [Algorithm::Fosc, Algorithm::MpckMeans] {
            let params = match algorithm {
                Algorithm::Fosc => vec![3, 6, 9],
                Algorithm::MpckMeans => vec![2, 3, 4],
            };
            let req = request(algorithm, params.clone());
            let reference = req.realize().unwrap().select(&Engine::new(4));
            let (tx, rx) = mpsc::channel();
            let streamed = run_selection_request(&Engine::new(4), &req, None, move |p| {
                tx.send(p).expect("progress receiver alive");
            })
            .unwrap();
            assert_eq!(
                streamed, reference,
                "streamed != reference for {algorithm:?}"
            );
            // also across engine shapes
            let sequential = req.realize().unwrap().select(&Engine::sequential());
            assert_eq!(streamed, sequential);
            let events: Vec<_> = rx.iter().collect();
            assert_eq!(events.len(), params.len());
            let mut seen: Vec<usize> = events.iter().map(|e| e.param).collect();
            seen.sort_unstable();
            assert_eq!(seen, params);
            for e in &events {
                assert_eq!(e.total, params.len());
                let eval = reference.evaluations.iter().find(|v| v.param == e.param);
                assert_eq!(eval.map(|v| v.score), Some(e.score), "progress score drift");
            }
        }
    }

    #[test]
    fn traced_request_is_bit_identical_and_yields_a_full_timeline() {
        let req = request(Algorithm::Fosc, vec![3, 6, 9]);
        let reference = req.realize().unwrap().select(&Engine::sequential());
        for threads in [1usize, 2, 8] {
            let (selection, trace) =
                run_selection_request_traced(&Engine::new(threads), &req, None, |_| {}).unwrap();
            assert_eq!(
                selection, reference,
                "tracing must never change results ({threads} threads)"
            );
            let trace = trace.expect("completed traced run yields a trace");
            assert_eq!(trace.name, req.id);
            assert_eq!(
                trace.spans.len(),
                trace.n_jobs,
                "every graph job executed and was recorded ({threads} threads)"
            );
            for p in [3usize, 6, 9] {
                let label = format!("/p{p}/");
                assert!(
                    trace.spans.iter().any(|s| s.label.contains(&label)),
                    "at least one evaluation span per candidate parameter {p}"
                );
            }
        }
    }

    #[test]
    fn explicit_priority_does_not_change_results() {
        let mut batch = request(Algorithm::Fosc, vec![3, 6]);
        batch.priority = Some(Priority::Batch);
        let mut interactive = request(Algorithm::Fosc, vec![3, 6]);
        interactive.priority = Some(Priority::Interactive);
        let a = run_selection_request(&Engine::new(4), &batch, None, |_| {}).unwrap();
        let b = run_selection_request(&Engine::new(4), &interactive, None, |_| {}).unwrap();
        assert_eq!(a, b, "the scheduling lane must never change results");
    }

    #[test]
    fn pre_cancelled_request_is_cancelled_not_run() {
        for threads in [1, 4] {
            let token = CancelToken::new();
            token.cancel();
            let req = request(Algorithm::Fosc, vec![3, 6]);
            let result = run_selection_request(&Engine::new(threads), &req, Some(token), |_| {});
            assert_eq!(result, Err(RunRequestError::Cancelled));
        }
    }
}
