//! The baselines the paper compares CVCP against (Section 4.3).
//!
//! * **Expected quality** ("Exp-x" in the figures and tables): the average
//!   external quality over the whole candidate range — the performance of a
//!   user who has to guess the parameter uniformly at random.
//! * **Silhouette selection** ("Sil-x"): choose the parameter whose resulting
//!   clustering has the best Silhouette coefficient.  Applicable to
//!   MPCKMeans (a centroid-based method); the paper notes no comparable
//!   heuristic exists for the `MinPts` of a density-based method.

use crate::algorithm::ParameterizedMethod;
use cvcp_constraints::SideInformation;
use cvcp_data::distance::Euclidean;
use cvcp_data::rng::SeededRng;
use cvcp_data::{DataMatrix, Partition};
use cvcp_metrics::silhouette_coefficient;

/// The expected (mean) quality over a parameter range, given the per-
/// parameter external quality values.  Returns 0 for an empty slice.
pub fn expected_quality(per_parameter_quality: &[f64]) -> f64 {
    if per_parameter_quality.is_empty() {
        return 0.0;
    }
    per_parameter_quality.iter().sum::<f64>() / per_parameter_quality.len() as f64
}

/// Result of Silhouette-based model selection.
#[derive(Debug, Clone, PartialEq)]
pub struct SilhouetteSelection {
    /// The selected parameter value.
    pub best_param: usize,
    /// The Silhouette coefficient of the selected clustering.
    pub best_silhouette: f64,
    /// Per-parameter Silhouette values (`None` when undefined, e.g. a single
    /// cluster).
    pub silhouettes: Vec<Option<f64>>,
}

/// Selects the parameter whose clustering (run with the full side
/// information) maximises the Silhouette coefficient.
///
/// Parameters whose clustering has fewer than two clusters receive an
/// undefined Silhouette and are only selected if every candidate is
/// undefined (in which case the first candidate is returned).
///
/// # Panics
///
/// Panics if `params` is empty.
pub fn silhouette_selection(
    method: &dyn ParameterizedMethod,
    data: &DataMatrix,
    side: &SideInformation,
    params: &[usize],
    rng: &mut SeededRng,
) -> SilhouetteSelection {
    assert!(
        !params.is_empty(),
        "at least one candidate parameter is required"
    );
    // One salted stream per candidate, so evaluation order cannot leak into
    // the per-parameter clusterings.
    let base = rng.fork(0x5110_E77E);
    let mut silhouettes: Vec<Option<f64>> = Vec::with_capacity(params.len());
    let mut partitions: Vec<Partition> = Vec::with_capacity(params.len());
    for (pi, &p) in params.iter().enumerate() {
        let clusterer = method.instantiate(p);
        let mut param_rng = base.fork_stream(pi as u64);
        let partition = clusterer.cluster(data, side, &mut param_rng);
        let s = silhouette_coefficient(data, &partition, &Euclidean);
        silhouettes.push(s);
        partitions.push(partition);
    }
    let mut best_idx = 0usize;
    let mut best_value = f64::NEG_INFINITY;
    for (i, s) in silhouettes.iter().enumerate() {
        if let Some(v) = s {
            if *v > best_value {
                best_value = *v;
                best_idx = i;
            }
        }
    }
    if best_value == f64::NEG_INFINITY {
        best_idx = 0;
        best_value = 0.0;
    }
    SilhouetteSelection {
        best_param: params[best_idx],
        best_silhouette: best_value,
        silhouettes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::MpckMethod;
    use cvcp_constraints::generate::sample_labeled_subset;
    use cvcp_data::synthetic::separated_blobs;

    #[test]
    fn expected_quality_is_the_mean() {
        assert_eq!(expected_quality(&[0.2, 0.4, 0.9]), 0.5);
        assert_eq!(expected_quality(&[]), 0.0);
    }

    #[test]
    fn silhouette_prefers_the_true_k_on_globular_data() {
        let mut rng = SeededRng::new(1);
        let ds = separated_blobs(3, 25, 4, 12.0, &mut rng);
        let labeled = sample_labeled_subset(ds.labels(), 0.1, 2, &mut rng);
        let side = SideInformation::Labels(labeled);
        let sel = silhouette_selection(
            &MpckMethod::default(),
            ds.matrix(),
            &side,
            &[2, 3, 4, 5, 6],
            &mut rng,
        );
        assert_eq!(sel.best_param, 3, "silhouettes: {:?}", sel.silhouettes);
        assert!(sel.best_silhouette > 0.5);
        assert_eq!(sel.silhouettes.len(), 5);
    }

    #[test]
    fn undefined_silhouettes_fall_back_to_first_candidate() {
        let mut rng = SeededRng::new(2);
        let ds = separated_blobs(2, 10, 2, 8.0, &mut rng);
        let side = SideInformation::none(ds.len());
        // k = 1 always produces a single cluster -> undefined silhouette
        let sel = silhouette_selection(&MpckMethod::default(), ds.matrix(), &side, &[1], &mut rng);
        assert_eq!(sel.best_param, 1);
        assert_eq!(sel.best_silhouette, 0.0);
        assert_eq!(sel.silhouettes, vec![None]);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_range_panics() {
        let mut rng = SeededRng::new(3);
        let ds = separated_blobs(2, 10, 2, 8.0, &mut rng);
        let side = SideInformation::none(ds.len());
        let _ = silhouette_selection(&MpckMethod::default(), ds.matrix(), &side, &[], &mut rng);
    }
}
