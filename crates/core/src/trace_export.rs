//! Chrome `trace_event` export for recorded graph timelines.
//!
//! A traced selection produces a [`GraphTrace`] (see `cvcp_engine::obs`);
//! this module renders it in the Chrome *trace event format* — the JSON
//! array-of-events schema that `chrome://tracing`, Perfetto and `speedscope`
//! all load — using the workspace's own [`Json`] emitter (the container
//! builds offline; there is no serde).
//!
//! Layout: one process (pid 0) per graph, one thread row per pool worker
//! (tid = worker index) plus an `off-pool` row (tid = `n_workers`) for
//! spans executed inline.  Every executed job becomes one complete (`"X"`)
//! event whose `args` carry the job's structural coordinates — job index,
//! lane, queue wait, cache hits/misses, steal attribution — so the timeline
//! can be filtered and aggregated inside the viewer.
//!
//! The companion [`graph_profile_json`] serialises the derived
//! [`GraphProfile`] (critical path, per-worker occupancy, steal ratio) for
//! the serving front-end's `metrics` endpoint and the experiment binaries.

use crate::json::Json;
use cvcp_engine::{GraphProfile, GraphTrace};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Microseconds (the trace-event time unit) from a nanosecond tick.
fn us(ns: u64) -> Json {
    Json::Num(ns as f64 / 1_000.0)
}

/// Renders a recorded trace in Chrome `trace_event` JSON (object form:
/// `{"traceEvents": [...], ...}`).
///
/// The output is deterministic in the trace: metadata events first
/// (process/thread names in tid order), then one `"X"` event per span in
/// job order.
pub fn chrome_trace_json(trace: &GraphTrace) -> Json {
    let mut events = Vec::new();
    events.push(Json::obj([
        ("name", Json::Str("process_name".into())),
        ("ph", Json::Str("M".into())),
        ("pid", Json::Num(0.0)),
        (
            "args",
            Json::obj([("name", Json::Str(format!("cvcp graph: {}", trace.name)))]),
        ),
    ]));
    let off_pool_used = trace.spans.iter().any(|s| s.worker.is_none());
    for tid in 0..trace.n_workers + usize::from(off_pool_used) {
        let label = if tid < trace.n_workers {
            format!("worker {tid}")
        } else {
            "off-pool".to_string()
        };
        events.push(Json::obj([
            ("name", Json::Str("thread_name".into())),
            ("ph", Json::Str("M".into())),
            ("pid", Json::Num(0.0)),
            ("tid", Json::Num(tid as f64)),
            ("args", Json::obj([("name", Json::Str(label))])),
        ]));
    }
    for span in &trace.spans {
        let name = if span.label.is_empty() {
            format!("job {}", span.job)
        } else {
            span.label.clone()
        };
        let tid = span.worker.unwrap_or(trace.n_workers);
        events.push(Json::obj([
            ("name", Json::Str(name)),
            ("cat", Json::Str(format!("lane{}", span.lane))),
            ("ph", Json::Str("X".into())),
            ("ts", us(span.start_ns)),
            ("dur", us(span.duration_ns())),
            ("pid", Json::Num(0.0)),
            ("tid", Json::Num(tid as f64)),
            (
                "args",
                Json::obj([
                    ("job", Json::Num(span.job as f64)),
                    ("lane", Json::Num(span.lane as f64)),
                    ("queue_wait_us", us(span.queue_wait_ns())),
                    ("cache_hits", Json::Num(span.cache_hits as f64)),
                    ("cache_misses", Json::Num(span.cache_misses as f64)),
                    ("stolen", Json::Bool(span.stolen())),
                    (
                        "enqueued_by",
                        span.enqueued_by.map_or(Json::Null, |w| Json::Num(w as f64)),
                    ),
                ]),
            ),
        ]));
    }
    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ms".into())),
        (
            "otherData",
            Json::obj([
                ("graph", Json::Str(trace.name.clone())),
                ("n_jobs", Json::Num(trace.n_jobs as f64)),
                ("n_executed", Json::Num(trace.spans.len() as f64)),
                ("n_workers", Json::Num(trace.n_workers as f64)),
                ("wall_us", us(trace.wall_ns)),
            ]),
        ),
    ])
}

/// Serialises a [`GraphProfile`] — the payload of the serving front-end's
/// `metrics` endpoint and the experiment profiler's report files.
pub fn graph_profile_json(profile: &GraphProfile) -> Json {
    Json::obj([
        ("graph", Json::Str(profile.name.clone())),
        ("n_jobs", Json::Num(profile.n_jobs as f64)),
        ("n_executed", Json::Num(profile.n_executed as f64)),
        ("n_workers", Json::Num(profile.n_workers as f64)),
        ("wall_us", us(profile.wall_ns)),
        ("total_busy_us", us(profile.total_busy_ns)),
        ("critical_path_us", us(profile.critical_path_ns)),
        (
            "critical_path_jobs",
            Json::Arr(
                profile
                    .critical_path_jobs
                    .iter()
                    .map(|&j| Json::Num(j as f64))
                    .collect(),
            ),
        ),
        ("parallelism", Json::Num(profile.parallelism)),
        ("schedule_overhead", Json::Num(profile.schedule_overhead)),
        ("steal_ratio", Json::Num(profile.steal_ratio)),
        ("mean_queue_wait_us", us(profile.mean_queue_wait_ns())),
        ("max_queue_wait_us", us(profile.max_queue_wait_ns)),
        (
            "workers",
            Json::Arr(
                profile
                    .workers
                    .iter()
                    .map(|w| {
                        Json::obj([
                            ("worker", Json::Num(w.worker as f64)),
                            ("tasks", Json::Num(w.tasks as f64)),
                            ("busy_us", us(w.busy_ns)),
                            ("occupancy", Json::Num(w.occupancy)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// A filesystem-safe stem derived from a trace name: alphanumerics, `-`,
/// `_` and `.` pass through, everything else becomes `_`; empty names
/// become `"trace"`.
fn file_stem(name: &str) -> String {
    if name.is_empty() {
        return "trace".to_string();
    }
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Writes the Chrome trace file `<dir>/<stem>.trace.json` (creating `dir`
/// if needed) and returns its path.  The stem is the sanitised trace name.
pub fn write_chrome_trace(trace: &GraphTrace, dir: &Path) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.trace.json", file_stem(&trace.name)));
    let mut file = std::fs::File::create(&path)?;
    file.write_all(chrome_trace_json(trace).pretty().as_bytes())?;
    file.write_all(b"\n")?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvcp_engine::{JobSpan, SpanRecorder};

    fn sample_trace() -> GraphTrace {
        let deps = vec![vec![], vec![0], vec![0, 1]];
        let labels = vec!["artifact/p3".into(), "t0/p3/f0".into(), String::new()];
        let r = SpanRecorder::new("req:1".into(), 2, labels, deps);
        let mut trace = r.finish();
        trace.spans = vec![
            JobSpan {
                job: 0,
                label: "artifact/p3".into(),
                worker: Some(0),
                lane: 0,
                enqueue_ns: 0,
                start_ns: 1_000,
                end_ns: 5_000,
                enqueued_by: None,
                cache_hits: 0,
                cache_misses: 2,
            },
            JobSpan {
                job: 1,
                label: "t0/p3/f0".into(),
                worker: Some(1),
                lane: 1,
                enqueue_ns: 5_000,
                start_ns: 6_000,
                end_ns: 9_000,
                enqueued_by: Some(0),
                cache_hits: 3,
                cache_misses: 0,
            },
            JobSpan {
                job: 2,
                label: String::new(),
                worker: None,
                lane: 0,
                enqueue_ns: 9_000,
                start_ns: 9_500,
                end_ns: 10_000,
                enqueued_by: None,
                cache_hits: 1,
                cache_misses: 0,
            },
        ];
        trace.wall_ns = 10_000;
        trace
    }

    #[test]
    fn chrome_export_round_trips_through_the_parser() {
        let doc = chrome_trace_json(&sample_trace());
        let text = doc.pretty();
        let parsed = Json::parse(&text).expect("export must be valid JSON");
        assert_eq!(parsed, doc);
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        // 1 process_name + 3 thread rows (2 workers + off-pool) + 3 spans.
        assert_eq!(events.len(), 7);
    }

    #[test]
    fn span_events_carry_coordinates_and_nest_in_the_wall_clock() {
        let trace = sample_trace();
        let doc = chrome_trace_json(&trace);
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let spans: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert_eq!(spans.len(), trace.spans.len());
        let wall_us = trace.wall_ns as f64 / 1_000.0;
        for (event, span) in spans.iter().zip(&trace.spans) {
            let ts = event.get("ts").and_then(Json::as_f64).unwrap();
            let dur = event.get("dur").and_then(Json::as_f64).unwrap();
            assert!(ts >= 0.0 && ts + dur <= wall_us + 1e-9);
            let args = event.get("args").unwrap();
            assert_eq!(args.get("job").and_then(Json::as_usize), Some(span.job));
            assert_eq!(args.get("lane").and_then(Json::as_usize), Some(span.lane));
            assert_eq!(
                args.get("stolen").and_then(Json::as_bool),
                Some(span.stolen())
            );
        }
        // The stolen span (enqueued by worker 0, ran on worker 1) is flagged.
        assert_eq!(
            spans[1].get("args").unwrap().get("stolen"),
            Some(&Json::Bool(true))
        );
        // Off-pool spans land on the synthetic tid.
        assert_eq!(spans[2].get("tid").and_then(Json::as_usize), Some(2));
    }

    #[test]
    fn unlabeled_jobs_fall_back_to_their_index() {
        let doc = chrome_trace_json(&sample_trace());
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .filter_map(|e| e.get("name").and_then(Json::as_str))
            .collect();
        assert_eq!(names, vec!["artifact/p3", "t0/p3/f0", "job 2"]);
    }

    #[test]
    fn trace_files_are_written_under_a_sanitised_name() {
        let dir = std::env::temp_dir().join(format!("cvcp-trace-test-{}", std::process::id()));
        let path = write_chrome_trace(&sample_trace(), &dir).expect("write trace");
        assert_eq!(
            path.file_name().and_then(|n| n.to_str()),
            Some("req_1.trace.json")
        );
        let text = std::fs::read_to_string(&path).expect("read back");
        Json::parse(&text).expect("file parses");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn profile_json_mirrors_the_profile() {
        let trace = sample_trace();
        let profile = GraphProfile::from_trace(&trace);
        let doc = graph_profile_json(&profile);
        assert_eq!(doc.get("graph").and_then(Json::as_str), Some("req:1"));
        assert_eq!(doc.get("n_executed").and_then(Json::as_usize), Some(3));
        let workers = doc.get("workers").and_then(Json::as_arr).unwrap();
        assert_eq!(workers.len(), profile.workers.len());
        Json::parse(&doc.compact()).expect("profile serialises to valid JSON");
    }
}
