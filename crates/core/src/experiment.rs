//! The repeated-trial experiment harness behind the paper's evaluation
//! (Section 4).
//!
//! One *trial* corresponds to one random draw of side information (labelled
//! objects or constraints), for which the harness:
//!
//! 1. runs CVCP model selection over the candidate parameter range
//!    (collecting the internal classification scores of Figures 5–8);
//! 2. runs the clustering algorithm with the *full* side information for
//!    every candidate parameter and computes the external Overall F-Measure,
//!    excluding the objects involved in the side information;
//! 3. records the external quality of the CVCP-selected parameter, of the
//!    "expected" baseline (mean over the range) and — for methods that
//!    support it — of the Silhouette-selected parameter;
//! 4. records the Pearson correlation between internal and external scores
//!    (Tables 1–4).
//!
//! The paper repeats every experiment over 50 independent trials.  The
//! harness lowers the **full (trial × parameter × fold) grid** — plus the
//! per-parameter final clusterings of every trial — into one engine
//! [`JobGraph`](cvcp_engine::JobGraph) through the unified
//! [`crate::plan::ExecutionPlan`], so even a few-trial run saturates the
//! pool with (parameter × fold) parallelism.  Every cell derives all of
//! its randomness from the experiment seed and its own (trial, parameter,
//! fold) coordinates — so results are bit-identical at any thread count,
//! on either scheduling lane, and identical to the trial-only reference
//! lowering ([`run_experiment_trialwise`]).  Shareable artifacts
//! (distance matrices, per-`MinPts` density hierarchies) come from the
//! engine's content-keyed cache and are therefore also shared *across*
//! trials and experiments.

use crate::algorithm::{ParameterizedMethod, SemiSupervisedClusterer};
use crate::crossval::{build_folds, CvcpConfig};
use crate::json::{Json, ToJson};
use crate::plan::{evaluate_trial_inline, ExecutionPlan, ExternalStage, PlanOptions, PlanTrial};
use cvcp_constraints::generate::{constraint_pool, sample_constraints, sample_labeled_subset};
use cvcp_constraints::SideInformation;
use cvcp_data::rng::SeededRng;
use cvcp_data::Dataset;
use cvcp_engine::{ArtifactCache, Engine, Priority};
use cvcp_metrics::stats::Summary;
use cvcp_metrics::ttest::{paired_t_test, TTestResult};
use std::sync::Arc;

use crate::selection::SELECTION_STREAM_SALT;

/// Salt of the RNG stream feeding the per-parameter final clusterings of a
/// trial (step 4 + external evaluation).
const EXTERNAL_STREAM_SALT: u64 = 0xE87E_44A1;

/// How the side information of each trial is generated from the ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SideInfoSpec {
    /// Scenario I: reveal the labels of this fraction of all objects
    /// (the paper uses 0.05, 0.10, 0.20).
    LabelFraction(f64),
    /// Scenario II: build a constraint pool from `pool_fraction` of the
    /// objects of each class (0.10 in the paper) and hand `sample_fraction`
    /// of the pool to the algorithm (0.10 / 0.20 / 0.50 in the paper).
    ConstraintSample {
        /// Fraction of each class used to build the pool.
        pool_fraction: f64,
        /// Fraction of the pool given to the algorithm.
        sample_fraction: f64,
    },
}

impl SideInfoSpec {
    /// A short label used in reports, e.g. `labels-10%` or `constraints-20%`.
    pub fn label(&self) -> String {
        match self {
            SideInfoSpec::LabelFraction(f) => format!("labels-{:.0}%", f * 100.0),
            SideInfoSpec::ConstraintSample {
                sample_fraction, ..
            } => format!("constraints-{:.0}%", sample_fraction * 100.0),
        }
    }

    /// Draws one realisation of the side information.
    pub fn generate(&self, dataset: &Dataset, rng: &mut SeededRng) -> SideInformation {
        match self {
            SideInfoSpec::LabelFraction(fraction) => {
                let labeled = sample_labeled_subset(dataset.labels(), *fraction, 2, rng);
                SideInformation::Labels(labeled)
            }
            SideInfoSpec::ConstraintSample {
                pool_fraction,
                sample_fraction,
            } => {
                let pool = constraint_pool(dataset.labels(), *pool_fraction, 2, rng);
                let sampled = sample_constraints(&pool, *sample_fraction, rng);
                SideInformation::Constraints(sampled)
            }
        }
    }
}

/// Configuration of a repeated-trial experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Number of independent trials (50 in the paper).
    pub n_trials: usize,
    /// Cross-validation configuration.
    pub cvcp: CvcpConfig,
    /// Candidate parameter values; when empty, the method's default range is
    /// used (with the data set's class count as a hint).
    pub params: Vec<usize>,
    /// Base random seed; trial `t` uses a generator forked from `seed` and `t`.
    pub seed: u64,
    /// Whether Silhouette-based selection is also evaluated (only honoured
    /// for methods that support it).
    pub with_silhouette: bool,
    /// Number of worker threads (1 = sequential).
    pub n_threads: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            n_trials: 50,
            cvcp: CvcpConfig::default(),
            params: Vec::new(),
            seed: 0xC5C9,
            with_silhouette: true,
            n_threads: 4,
        }
    }
}

/// The outcome of one trial.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialOutcome {
    /// Trial index.
    pub trial: usize,
    /// Candidate parameters, in evaluation order.
    pub params: Vec<usize>,
    /// Internal CVCP scores per candidate.
    pub internal_scores: Vec<f64>,
    /// External Overall F-Measure per candidate (side-information objects
    /// excluded).
    pub external_scores: Vec<f64>,
    /// Parameter selected by CVCP.
    pub selected_param: usize,
    /// External quality at the CVCP-selected parameter.
    pub cvcp_external: f64,
    /// Expected external quality (mean over the range).
    pub expected_external: f64,
    /// Parameter selected by the Silhouette baseline, when evaluated.
    pub silhouette_param: Option<usize>,
    /// External quality at the Silhouette-selected parameter, when evaluated.
    pub silhouette_external: Option<f64>,
    /// Pearson correlation between internal and external scores.
    pub correlation: f64,
}

/// A method prepared for repeated trials: clusterers instantiated once and
/// shared (immutably) by every trial job.
struct PreparedMethod {
    clusterers: Vec<Arc<dyn SemiSupervisedClusterer>>,
    params: Vec<usize>,
    with_silhouette: bool,
}

impl PreparedMethod {
    fn new(method: &dyn ParameterizedMethod, params: &[usize], with_silhouette: bool) -> Self {
        Self {
            clusterers: params
                .iter()
                .map(|&p| Arc::from(method.instantiate(p)))
                .collect(),
            params: params.to_vec(),
            with_silhouette: with_silhouette && method.supports_silhouette(),
        }
    }
}

/// Runs a full repeated-trial experiment of `method` on `dataset` with side
/// information drawn according to `spec`, on a fresh engine with
/// `config.n_threads` workers.
///
/// Returns one [`TrialOutcome`] per trial, in trial order.
pub fn run_experiment(
    method: &dyn ParameterizedMethod,
    dataset: &Dataset,
    spec: SideInfoSpec,
    config: &ExperimentConfig,
) -> Vec<TrialOutcome> {
    let engine = Engine::new(config.n_threads.max(1));
    run_experiment_on(&engine, method, dataset, spec, config)
}

/// Runs a repeated-trial experiment on an existing engine, so many
/// experiments multiplex over one worker pool and share cached artifacts.
///
/// The whole experiment is lowered into **one job graph** through the
/// unified [`ExecutionPlan`]: every (trial × parameter × fold) grid cell
/// and every per-parameter final clustering is its own engine job, queued
/// on the [`Priority::Batch`] lane (so concurrent interactive selections
/// overtake it).  Every cell's randomness derives solely from
/// `config.seed` and its structural coordinates — results are
/// bit-identical for any thread count, either lane, any batch
/// composition, and to the trial-only reference path
/// ([`run_experiment_trialwise`]).
pub fn run_experiment_on(
    engine: &Engine,
    method: &dyn ParameterizedMethod,
    dataset: &Dataset,
    spec: SideInfoSpec,
    config: &ExperimentConfig,
) -> Vec<TrialOutcome> {
    let params = if config.params.is_empty() {
        method.default_parameter_range(dataset.n_classes())
    } else {
        config.params.clone()
    };
    let prepared = PreparedMethod::new(method, &params, config.with_silhouette);
    let n_trials = config.n_trials.max(1);
    let labels = Arc::new(dataset.labels().to_vec());
    let trials: Vec<PlanTrial> = (0..n_trials)
        .map(|trial| {
            realize_trial(
                &prepared,
                dataset,
                &labels,
                spec,
                &config.cvcp,
                config.seed,
                trial,
            )
        })
        .collect();
    // On the sequential engine, skip plan construction entirely — the
    // inline executor works on borrowed data (mirroring the
    // `select_model_prepared` shortcut), so the per-experiment matrix
    // clone and the job-graph Arcs that 'static DAG jobs need are never
    // paid.  It is the same executor the plan's own inline branch uses,
    // so both paths stay bit-identical.
    if engine.n_threads() <= 1 {
        return trials
            .iter()
            .map(|trial| {
                evaluate_trial_inline(
                    &prepared.clusterers,
                    &prepared.params,
                    dataset.matrix(),
                    trial,
                    Some(engine.cache()),
                    None,
                    None,
                )
                .expect("experiment plans run without a cancel token")
                .outcome
                .expect("experiment trials carry an external stage")
            })
            .collect();
    }
    let plan = ExecutionPlan::new(
        Arc::new(dataset.matrix().clone()),
        prepared.clusterers,
        prepared.params,
        trials,
    );
    plan.run(engine, PlanOptions::with_priority(Priority::Batch))
        .expect("experiment plans run without a cancel token")
        .into_iter()
        .map(|r| {
            r.outcome
                .expect("experiment trials carry an external stage")
        })
        .collect()
}

/// The trial-only reference lowering: one engine job per trial with
/// inline intra-trial evaluation — exactly the shape `run_experiment_on`
/// had before the unified plan.
///
/// Kept (a) as the reference the unified full-grid plan is asserted
/// **bit-identical** against in the determinism suite, and (b) as the
/// comparison baseline of `bench_engine`'s few-trial section: with fewer
/// trials than workers this path leaves (parameter × fold) parallelism on
/// the table, which is precisely what the unified plan reclaims.
pub fn run_experiment_trialwise(
    engine: &Engine,
    method: &dyn ParameterizedMethod,
    dataset: &Dataset,
    spec: SideInfoSpec,
    config: &ExperimentConfig,
) -> Vec<TrialOutcome> {
    let params = if config.params.is_empty() {
        method.default_parameter_range(dataset.n_classes())
    } else {
        config.params.clone()
    };
    let prepared = Arc::new(PreparedMethod::new(method, &params, config.with_silhouette));
    let dataset = Arc::new(dataset.clone());
    let n_trials = config.n_trials.max(1);
    let jobs: Vec<_> = (0..n_trials)
        .map(|trial| {
            let prepared = Arc::clone(&prepared);
            let dataset = Arc::clone(&dataset);
            let cvcp = config.cvcp;
            let seed = config.seed;
            move |ctx: &mut cvcp_engine::JobCtx| {
                run_trial_prepared(
                    &prepared,
                    &dataset,
                    spec,
                    &cvcp,
                    seed,
                    trial,
                    Some(&ctx.cache_arc()),
                )
            }
        })
        .collect();
    engine.run_jobs(config.seed, jobs)
}

/// Runs a single trial (exposed for the figure-generating binaries, which
/// need the per-parameter curves of one representative run).
pub fn run_trial(
    method: &dyn ParameterizedMethod,
    dataset: &Dataset,
    spec: SideInfoSpec,
    config: &ExperimentConfig,
    params: &[usize],
    trial: usize,
) -> TrialOutcome {
    let prepared = PreparedMethod::new(method, params, config.with_silhouette);
    run_trial_prepared(
        &prepared,
        dataset,
        spec,
        &config.cvcp,
        config.seed,
        trial,
        None,
    )
}

/// Realizes one trial of the experiment plan: draws the side information,
/// builds the folds and freezes the grid/external RNG bases.  All
/// randomness is derived from `seed` and `trial` in a fixed sequence, so
/// realization is independent of how (or where) the trial later executes.
/// `labels` is the dataset's ground truth, shared across every trial of
/// one experiment.
fn realize_trial(
    prepared: &PreparedMethod,
    dataset: &Dataset,
    labels: &Arc<Vec<usize>>,
    spec: SideInfoSpec,
    cvcp: &CvcpConfig,
    seed: u64,
    trial: usize,
) -> PlanTrial {
    let mut rng = SeededRng::new(
        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(trial as u64),
    );
    let side = spec.generate(dataset, &mut rng);
    let involved = side.involved_objects();
    let splits = build_folds(&side, cvcp, &mut rng);
    let grid_base = rng.fork(SELECTION_STREAM_SALT);
    let external_base = rng.fork(EXTERNAL_STREAM_SALT);
    PlanTrial {
        trial,
        splits: Arc::new(splits),
        grid_base,
        external: Some(ExternalStage {
            side: Arc::new(side),
            involved,
            external_base,
            with_silhouette: prepared.with_silhouette,
            labels: Arc::clone(labels),
        }),
    }
}

/// The body of one trial, evaluated inline through the plan's shared cell
/// helpers.  All randomness is derived from `seed` and `trial`; the
/// optional cache only shares artifacts, never changes results.
fn run_trial_prepared(
    prepared: &PreparedMethod,
    dataset: &Dataset,
    spec: SideInfoSpec,
    cvcp: &CvcpConfig,
    seed: u64,
    trial: usize,
    cache: Option<&ArtifactCache>,
) -> TrialOutcome {
    let labels = Arc::new(dataset.labels().to_vec());
    let plan_trial = realize_trial(prepared, dataset, &labels, spec, cvcp, seed, trial);
    evaluate_trial_inline(
        &prepared.clusterers,
        &prepared.params,
        dataset.matrix(),
        &plan_trial,
        cache,
        None,
        None,
    )
    .expect("inline trials run without a cancel token")
    .outcome
    .expect("experiment trials carry an external stage")
}

/// Aggregated results of an experiment, mirroring one row of the paper's
/// Tables 5–16 plus the correlation entry of Tables 1–4.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSummary {
    /// Data set name.
    pub dataset: String,
    /// Method name.
    pub method: String,
    /// Side-information label (e.g. `labels-10%`).
    pub side_info: String,
    /// CVCP external quality over trials.
    pub cvcp: Summary,
    /// Expected external quality over trials.
    pub expected: Summary,
    /// Silhouette external quality over trials (when evaluated).
    pub silhouette: Option<Summary>,
    /// Mean Pearson correlation between internal and external scores.
    pub mean_correlation: f64,
    /// Paired t-test of CVCP against the expected baseline.
    pub cvcp_vs_expected: Option<TTestResult>,
    /// Paired t-test of CVCP against the Silhouette baseline.
    pub cvcp_vs_silhouette: Option<TTestResult>,
    /// Raw CVCP external values (for box plots, Figures 9–12).
    pub cvcp_values: Vec<f64>,
    /// Raw expected external values.
    pub expected_values: Vec<f64>,
    /// Raw Silhouette external values.
    pub silhouette_values: Vec<f64>,
}

impl ExperimentSummary {
    /// `true` when CVCP's advantage over the expected baseline is significant
    /// at the given level.
    pub fn cvcp_beats_expected_significantly(&self, alpha: f64) -> bool {
        self.cvcp_vs_expected
            .as_ref()
            .is_some_and(|t| t.significant_at(alpha) && t.mean_difference > 0.0)
    }
}

fn summary_json(s: &Summary) -> Json {
    Json::obj([
        ("n", s.n.to_json()),
        ("mean", s.mean.to_json()),
        ("std", s.std.to_json()),
        ("min", s.min.to_json()),
        ("max", s.max.to_json()),
    ])
}

fn ttest_json(t: &TTestResult) -> Json {
    Json::obj([
        ("t_statistic", t.t_statistic.to_json()),
        ("degrees_of_freedom", t.degrees_of_freedom.to_json()),
        ("p_value", t.p_value.to_json()),
        ("mean_difference", t.mean_difference.to_json()),
        ("n", t.n.to_json()),
    ])
}

impl ToJson for ExperimentSummary {
    fn to_json(&self) -> Json {
        Json::obj([
            ("dataset", self.dataset.to_json()),
            ("method", self.method.to_json()),
            ("side_info", self.side_info.to_json()),
            ("cvcp", summary_json(&self.cvcp)),
            ("expected", summary_json(&self.expected)),
            (
                "silhouette",
                match &self.silhouette {
                    Some(s) => summary_json(s),
                    None => Json::Null,
                },
            ),
            ("mean_correlation", self.mean_correlation.to_json()),
            (
                "cvcp_vs_expected",
                match &self.cvcp_vs_expected {
                    Some(t) => ttest_json(t),
                    None => Json::Null,
                },
            ),
            (
                "cvcp_vs_silhouette",
                match &self.cvcp_vs_silhouette {
                    Some(t) => ttest_json(t),
                    None => Json::Null,
                },
            ),
            ("cvcp_values", self.cvcp_values.to_json()),
            ("expected_values", self.expected_values.to_json()),
            ("silhouette_values", self.silhouette_values.to_json()),
        ])
    }
}

/// Summarises the trial outcomes of one (data set, method, side-info) cell.
pub fn summarize(
    dataset: &str,
    method: &str,
    spec: SideInfoSpec,
    outcomes: &[TrialOutcome],
) -> ExperimentSummary {
    let cvcp_values: Vec<f64> = outcomes.iter().map(|o| o.cvcp_external).collect();
    let expected_values: Vec<f64> = outcomes.iter().map(|o| o.expected_external).collect();
    let silhouette_values: Vec<f64> = outcomes
        .iter()
        .filter_map(|o| o.silhouette_external)
        .collect();
    let correlations: Vec<f64> = outcomes.iter().map(|o| o.correlation).collect();

    let silhouette = if silhouette_values.len() == outcomes.len() && !outcomes.is_empty() {
        Some(Summary::of(&silhouette_values))
    } else {
        None
    };
    // All value vectors hold one entry per trial by construction, so a
    // length mismatch cannot occur; if it ever did, report "no test" rather
    // than failing the whole summary.
    let cvcp_vs_silhouette = if silhouette.is_some() {
        paired_t_test(&cvcp_values, &silhouette_values).unwrap_or(None)
    } else {
        None
    };

    ExperimentSummary {
        dataset: dataset.to_string(),
        method: method.to_string(),
        side_info: spec.label(),
        cvcp: Summary::of(&cvcp_values),
        expected: Summary::of(&expected_values),
        silhouette,
        mean_correlation: cvcp_metrics::stats::mean(&correlations),
        cvcp_vs_expected: paired_t_test(&cvcp_values, &expected_values).unwrap_or(None),
        cvcp_vs_silhouette,
        cvcp_values,
        expected_values,
        silhouette_values,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{FoscMethod, MpckMethod};
    use cvcp_data::synthetic::separated_blobs;

    fn quick_config(n_trials: usize) -> ExperimentConfig {
        ExperimentConfig {
            n_trials,
            cvcp: CvcpConfig {
                n_folds: 3,
                stratified: true,
            },
            params: vec![2, 3, 4, 6],
            seed: 11,
            with_silhouette: true,
            n_threads: 2,
        }
    }

    fn blobs() -> Dataset {
        let mut rng = SeededRng::new(99);
        separated_blobs(3, 20, 3, 12.0, &mut rng)
    }

    #[test]
    fn label_scenario_experiment_runs_and_is_ordered() {
        let ds = blobs();
        let outcomes = run_experiment(
            &MpckMethod::default(),
            &ds,
            SideInfoSpec::LabelFraction(0.2),
            &quick_config(4),
        );
        assert_eq!(outcomes.len(), 4);
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.trial, i);
            assert_eq!(o.params, vec![2, 3, 4, 6]);
            assert_eq!(o.internal_scores.len(), 4);
            assert_eq!(o.external_scores.len(), 4);
            assert!(o.params.contains(&o.selected_param));
            assert!((0.0..=1.0).contains(&o.cvcp_external));
            assert!((0.0..=1.0).contains(&o.expected_external));
            assert!(o.silhouette_external.is_some());
            assert!((-1.0..=1.0).contains(&o.correlation));
        }
    }

    #[test]
    fn cvcp_beats_expected_on_easy_data() {
        let ds = blobs();
        let outcomes = run_experiment(
            &MpckMethod::default(),
            &ds,
            SideInfoSpec::LabelFraction(0.2),
            &quick_config(6),
        );
        let summary = summarize(
            "blobs",
            "MPCKMeans",
            SideInfoSpec::LabelFraction(0.2),
            &outcomes,
        );
        assert!(
            summary.cvcp.mean >= summary.expected.mean,
            "CVCP {} should be at least Expected {}",
            summary.cvcp.mean,
            summary.expected.mean
        );
        assert!(summary.silhouette.is_some());
        assert_eq!(summary.cvcp_values.len(), 6);
        assert_eq!(summary.side_info, "labels-20%");
    }

    #[test]
    fn constraint_scenario_with_fosc() {
        let ds = blobs();
        let mut cfg = quick_config(3);
        cfg.params = vec![3, 6, 9, 15];
        cfg.with_silhouette = false;
        let outcomes = run_experiment(
            &FoscMethod::default(),
            &ds,
            SideInfoSpec::ConstraintSample {
                pool_fraction: 0.2,
                sample_fraction: 0.5,
            },
            &cfg,
        );
        assert_eq!(outcomes.len(), 3);
        for o in &outcomes {
            assert!(o.silhouette_external.is_none());
            assert!((0.0..=1.0).contains(&o.cvcp_external));
        }
        let summary = summarize(
            "blobs",
            "FOSC-OPTICSDend",
            SideInfoSpec::ConstraintSample {
                pool_fraction: 0.2,
                sample_fraction: 0.5,
            },
            &outcomes,
        );
        assert!(summary.silhouette.is_none());
        assert_eq!(summary.side_info, "constraints-50%");
    }

    #[test]
    fn experiments_are_reproducible() {
        let ds = blobs();
        let cfg = quick_config(3);
        let a = run_experiment(
            &MpckMethod::default(),
            &ds,
            SideInfoSpec::LabelFraction(0.1),
            &cfg,
        );
        let b = run_experiment(
            &MpckMethod::default(),
            &ds,
            SideInfoSpec::LabelFraction(0.1),
            &cfg,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn unified_plan_matches_the_trialwise_reference_bit_for_bit() {
        // The refactor contract: lowering the full (trial × parameter ×
        // fold) grid into one graph must reproduce the trial-only path —
        // the PR-4 shape — exactly, with and without Silhouette.
        let ds = blobs();
        for with_silhouette in [true, false] {
            let mut cfg = quick_config(4);
            cfg.with_silhouette = with_silhouette;
            let unified = run_experiment_on(
                &Engine::new(4),
                &MpckMethod::default(),
                &ds,
                SideInfoSpec::LabelFraction(0.2),
                &cfg,
            );
            let reference = run_experiment_trialwise(
                &Engine::new(4),
                &MpckMethod::default(),
                &ds,
                SideInfoSpec::LabelFraction(0.2),
                &cfg,
            );
            assert_eq!(unified, reference);
        }
    }

    #[test]
    fn parallel_and_sequential_give_the_same_results() {
        let ds = blobs();
        let mut seq = quick_config(4);
        seq.n_threads = 1;
        let mut par = quick_config(4);
        par.n_threads = 4;
        let a = run_experiment(
            &MpckMethod::default(),
            &ds,
            SideInfoSpec::LabelFraction(0.2),
            &seq,
        );
        let b = run_experiment(
            &MpckMethod::default(),
            &ds,
            SideInfoSpec::LabelFraction(0.2),
            &par,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn spec_labels_are_paper_style() {
        assert_eq!(SideInfoSpec::LabelFraction(0.05).label(), "labels-5%");
        assert_eq!(
            SideInfoSpec::ConstraintSample {
                pool_fraction: 0.1,
                sample_fraction: 0.2
            }
            .label(),
            "constraints-20%"
        );
    }

    #[test]
    fn default_parameter_range_is_used_when_none_given() {
        let ds = blobs();
        let mut cfg = quick_config(2);
        cfg.params = Vec::new();
        let outcomes = run_experiment(
            &MpckMethod::default(),
            &ds,
            SideInfoSpec::LabelFraction(0.2),
            &cfg,
        );
        // blobs() has 3 classes -> default range 2..=6
        assert_eq!(outcomes[0].params, vec![2, 3, 4, 5, 6]);
    }
}
