//! Minimal JSON document model shared by the experiment binaries and the
//! serving front-end.
//!
//! The workspace builds in an offline container, so `serde`/`serde_json`
//! are not available.  This module covers both directions of the wire in a
//! few hundred lines: a pretty emitter (for the experiment result files), a
//! compact single-line emitter (for the newline-delimited serving
//! protocol), and a strict recursive-descent parser ([`Json::parse`]) with
//! a depth limit so arbitrary network input can never overflow the stack.
//!
//! The module used to live in `cvcp-experiments`, which only ever *emitted*
//! JSON; it moved here when the `cvcp-server` front-end started parsing
//! requests, so both crates share one document model.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (non-finite values serialise as `null`, like serde_json).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Pretty-prints with two-space indentation (matching `to_string_pretty`).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, true);
        out
    }

    /// Serialises onto a single line with no whitespace — the framing used
    /// by the newline-delimited serving protocol.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, false);
        out
    }

    fn write(&self, out: &mut String, depth: usize, pretty: bool) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_number(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        out.push('\n');
                        indent(out, depth + 1);
                    }
                    item.write(out, depth + 1, pretty);
                }
                if pretty {
                    out.push('\n');
                    indent(out, depth);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        out.push('\n');
                        indent(out, depth + 1);
                    }
                    write_escaped(out, key);
                    out.push_str(if pretty { ": " } else { ":" });
                    value.write(out, depth + 1, pretty);
                }
                if pretty {
                    out.push('\n');
                    indent(out, depth);
                }
                out.push('}');
            }
        }
    }

    // -- accessors used by the request parser -------------------------------

    /// The value of `key` when this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string content when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer, when this is a number with an
    /// exact `usize` representation.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(x) if x.fract() == 0.0 && *x >= 0.0 && *x < 9e15 => Some(*x as usize),
            _ => None,
        }
    }

    /// The value as a `u64`, when this is a number with an exact
    /// representation.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if x.fract() == 0.0 && *x >= 0.0 && *x < 9e15 => Some(*x as u64),
            _ => None,
        }
    }

    /// The boolean value when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items when this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a complete JSON document (a single value followed only by
    /// whitespace).
    ///
    /// The parser is strict — no trailing commas, no comments, no bare
    /// identifiers — and limits nesting depth so adversarial input cannot
    /// overflow the stack.  It accepts everything the emitters above
    /// produce, so `parse(emit(v)) == v` for every finite document.
    pub fn parse(input: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonParseError::TrailingData { pos: p.pos });
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x.fract() == 0.0 && x.abs() < 9e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum nesting depth accepted by [`Json::parse`].  Recursive descent
/// uses one stack frame per level, so the bound is what keeps arbitrary
/// (possibly adversarial) network input from overflowing the thread stack.
const MAX_DEPTH: usize = 128;

/// Why [`Json::parse`] rejected a document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonParseError {
    /// Input ended in the middle of a value.
    UnexpectedEof,
    /// An unexpected byte at the given offset.
    UnexpectedChar {
        /// Byte offset into the input.
        pos: usize,
        /// The offending byte.
        found: u8,
    },
    /// A malformed number literal at the given offset.
    InvalidNumber {
        /// Byte offset into the input.
        pos: usize,
    },
    /// A malformed `\` escape (or invalid `\u` surrogate pairing).
    InvalidEscape {
        /// Byte offset into the input.
        pos: usize,
    },
    /// A raw control character inside a string literal.
    ControlInString {
        /// Byte offset into the input.
        pos: usize,
    },
    /// Nesting exceeded the supported depth.
    TooDeep,
    /// A complete value was parsed but non-whitespace input remained.
    TrailingData {
        /// Byte offset of the first trailing byte.
        pos: usize,
    },
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsonParseError::UnexpectedEof => write!(f, "unexpected end of input"),
            JsonParseError::UnexpectedChar { pos, found } => {
                write!(f, "unexpected byte 0x{found:02x} at offset {pos}")
            }
            JsonParseError::InvalidNumber { pos } => {
                write!(f, "malformed number at offset {pos}")
            }
            JsonParseError::InvalidEscape { pos } => {
                write!(f, "invalid string escape at offset {pos}")
            }
            JsonParseError::ControlInString { pos } => {
                write!(f, "raw control character in string at offset {pos}")
            }
            JsonParseError::TooDeep => write!(f, "nesting deeper than {MAX_DEPTH} levels"),
            JsonParseError::TrailingData { pos } => {
                write!(f, "trailing data after the document at offset {pos}")
            }
        }
    }
}

impl std::error::Error for JsonParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        match self.peek() {
            Some(b) if b == byte => {
                self.pos += 1;
                Ok(())
            }
            Some(found) => Err(JsonParseError::UnexpectedChar {
                pos: self.pos,
                found,
            }),
            None => Err(JsonParseError::UnexpectedEof),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonParseError::UnexpectedChar {
                pos: self.pos,
                found: self.bytes[self.pos],
            })
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(JsonParseError::TooDeep);
        }
        match self.peek() {
            None => Err(JsonParseError::UnexpectedEof),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(found) => Err(JsonParseError::UnexpectedChar {
                pos: self.pos,
                found,
            }),
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                Some(found) => {
                    return Err(JsonParseError::UnexpectedChar {
                        pos: self.pos,
                        found,
                    })
                }
                None => return Err(JsonParseError::UnexpectedEof),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(fields));
                }
                Some(found) => {
                    return Err(JsonParseError::UnexpectedChar {
                        pos: self.pos,
                        found,
                    })
                }
                None => return Err(JsonParseError::UnexpectedEof),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(JsonParseError::UnexpectedEof),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or(JsonParseError::UnexpectedEof)?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4(start)?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: a \uXXXX low surrogate must
                                // follow immediately.
                                if self.peek() != Some(b'\\') {
                                    return Err(JsonParseError::InvalidEscape { pos: start });
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(JsonParseError::InvalidEscape { pos: start });
                                }
                                self.pos += 1;
                                let lo = self.hex4(start)?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(JsonParseError::InvalidEscape { pos: start });
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or(JsonParseError::InvalidEscape { pos: start })?
                            } else {
                                char::from_u32(hi)
                                    .ok_or(JsonParseError::InvalidEscape { pos: start })?
                            };
                            out.push(c);
                        }
                        _ => return Err(JsonParseError::InvalidEscape { pos: start }),
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(JsonParseError::ControlInString { pos: self.pos })
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input is valid UTF-8");
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self, escape_start: usize) -> Result<u32, JsonParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(JsonParseError::UnexpectedEof);
        }
        let digits = &self.bytes[self.pos..self.pos + 4];
        let s = std::str::from_utf8(digits)
            .map_err(|_| JsonParseError::InvalidEscape { pos: escape_start })?;
        let v = u32::from_str_radix(s, 16)
            .map_err(|_| JsonParseError::InvalidEscape { pos: escape_start })?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one zero, or a non-zero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(JsonParseError::InvalidNumber { pos: start }),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(JsonParseError::InvalidNumber { pos: start });
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(JsonParseError::InvalidNumber { pos: start });
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonParseError::InvalidNumber { pos: start })
    }
}

/// Conversion into the JSON document model.
pub trait ToJson {
    /// Converts `self` into a [`Json`] value.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_printing_matches_expected_shape() {
        let v = Json::obj([
            ("name", "aloi".to_json()),
            ("scores", vec![0.5, 1.0].to_json()),
            ("missing", Json::Null),
        ]);
        let s = v.pretty();
        assert!(s.starts_with("{\n"));
        assert!(s.contains("\"name\": \"aloi\""));
        assert!(s.contains("\"missing\": null"));
        assert!(s.contains("0.5"));
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(Json::Num(3.0).pretty(), "3");
        assert_eq!(Json::Num(0.25).pretty(), "0.25");
        assert_eq!(Json::Num(f64::NAN).pretty(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(
            Json::Str("a\"b\\c\nd".to_string()).pretty(),
            "\"a\\\"b\\\\c\\nd\""
        );
    }

    #[test]
    fn empty_containers_are_compact() {
        assert_eq!(Json::Arr(vec![]).pretty(), "[]");
        assert_eq!(Json::Obj(vec![]).pretty(), "{}");
    }

    #[test]
    fn compact_emits_a_single_line() {
        let v = Json::obj([
            ("a", 1.0.to_json()),
            ("b", vec![true, false].to_json()),
            ("c", Json::obj([("d", "x\ny".to_json())])),
        ]);
        let s = v.compact();
        assert!(!s.contains('\n'), "compact output must be one line: {s}");
        assert_eq!(s, r#"{"a":1,"b":[true,false],"c":{"d":"x\ny"}}"#);
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-0.5e2").unwrap(), Json::Num(-50.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_containers_and_accessors_work() {
        let v = Json::parse(r#"{"a": [1, 2.5, "x"], "b": {"c": true}, "n": 7}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("n").unwrap().as_usize(), Some(7));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_str(), Some("x"));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        assert_eq!(
            Json::parse(r#""a\"b\\c\nd\u0041\u00e9""#).unwrap(),
            Json::Str("a\"b\\c\ndAé".into())
        );
        // surrogate pair
        assert_eq!(
            Json::parse(r#""\ud834\udd1e""#).unwrap(),
            Json::Str("\u{1D11E}".into())
        );
        // lone surrogate is rejected
        assert!(Json::parse(r#""\ud834""#).is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[",
            "\"",
            "nul",
            "tru",
            "+1",
            "01",
            "1.",
            "1e",
            "--1",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{a:1}",
            "[1] garbage",
            "\u{1}",
            "\"\u{1}\"",
            "\"\\q\"",
        ] {
            assert!(
                Json::parse(bad).is_err(),
                "expected parse error for {bad:?}"
            );
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert_eq!(Json::parse(&deep), Err(JsonParseError::TooDeep));
    }

    #[test]
    fn emit_parse_round_trips() {
        let v = Json::obj([
            ("name", "aloi_like".to_json()),
            ("scores", vec![0.5, 1.0, 0.3333333333333333].to_json()),
            ("count", 125usize.to_json()),
            ("nested", Json::Arr(vec![Json::Null, Json::Bool(true)])),
            ("text", "line\nbreak \"quoted\" \\ \u{1F600}".to_json()),
        ]);
        assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
        assert_eq!(Json::parse(&v.compact()).unwrap(), v);
    }
}
