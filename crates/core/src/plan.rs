//! Unified execution plans: **one** description of the full
//! (trial × parameter × fold) CVCP evaluation grid — plus its reduce
//! stages — and **one** lowering onto the execution engine.
//!
//! Every public evaluation entry point is a thin wrapper over this module:
//!
//! * [`crate::selection::select_model_with`] /
//!   [`crate::selection::select_model_streaming`] build a single-trial
//!   plan (no external stage);
//! * [`crate::experiment::run_experiment_on`] builds a multi-trial plan
//!   whose trials carry an [`ExternalStage`] (step 4 of the framework +
//!   the external quality measurements), so the *whole* experiment — every
//!   (trial × parameter × fold) cell and every per-parameter final
//!   clustering — fans out as one [`JobGraph`] instead of one opaque job
//!   per trial.
//!
//! ## Determinism
//!
//! Every grid cell derives its RNG stream *inside the job* from the
//! trial's frozen `grid_base` generator and the cell's structural
//! coordinates (`fork_stream(grid_salt(parameter, fold))`); external
//! cells fork from the trial's `external_base` and the parameter index.
//! Streams are pure functions of (plan inputs, coordinates), never of
//! execution order, thread count or scheduling lane — so the DAG lowering
//! and the inline (sequential) executor are **bit-identical**, as are runs
//! at any thread count and either [`Priority`] lane.
//!
//! ## Reduce stages
//!
//! Per trial, the grid reduces to per-parameter [`ParameterEvaluation`]s
//! and the argmax [`CvcpSelection`]; experiment trials additionally
//! finalize a [`TrialOutcome`] (expected/Silhouette baselines, Pearson
//! correlation of internal vs external scores — the t-test inputs of the
//! paper's Tables 5–16).  A final report job collects every trial in trial
//! order.
//!
//! ## Streaming progress
//!
//! Single-trial plans may carry a progress sink: one progress job per
//! candidate parameter is *chained* on its predecessor, so events are
//! emitted exactly once per candidate **in ascending candidate order**
//! even when fold jobs complete out of order (the regression
//! `streaming_progress_events_are_deterministic_in_parameter_order`
//! pins this).

use crate::algorithm::SemiSupervisedClusterer;
use crate::baselines::expected_quality;
use crate::crossval::{
    evaluate_param_inline, grid_salt, reduce_fold_scores, score_fold, FoldScore,
    ParameterEvaluation,
};
use crate::experiment::TrialOutcome;
use crate::selection::{reduce_evaluations, CvcpSelection, ProgressSink, SelectionCancelled};
use cvcp_constraints::folds::FoldSplit;
use cvcp_constraints::SideInformation;
use cvcp_data::distance::{pairwise_matrix, Euclidean};
use cvcp_data::rng::SeededRng;
use cvcp_data::DataMatrix;
use cvcp_engine::{
    fingerprint_matrix, ArtifactCache, ArtifactKey, CancelToken, Engine, GraphTrace, JobGraph,
    JobId, JobOutcome, Priority,
};
use cvcp_metrics::{
    overall_fmeasure_excluding, pearson, silhouette_coefficient, silhouette_from_pairwise,
};
use std::sync::{Arc, Mutex};

/// One finished external cell: the candidate's external F-measure and its
/// Silhouette value (when evaluated and defined).
type ExternalCell = (f64, Option<f64>);

/// The external-evaluation stage of an experiment trial: run every
/// candidate with the trial's *full* side information and measure the
/// external quality (step 4 of the framework plus the paper's baselines).
pub struct ExternalStage {
    /// The trial's full side-information draw.
    pub side: Arc<SideInformation>,
    /// Objects involved in the side information (excluded from the
    /// external F-measure).
    pub involved: Vec<usize>,
    /// Frozen RNG state the per-parameter final clusterings fork from
    /// (stream `pi` for candidate index `pi`).
    pub external_base: SeededRng,
    /// Whether the Silhouette baseline is evaluated.
    pub with_silhouette: bool,
    /// Ground-truth labels of the data set.
    pub labels: Arc<Vec<usize>>,
}

/// One fully-realized trial of an execution plan: the cross-validation
/// folds, the frozen grid RNG base and (for experiment trials) the
/// external stage.
pub struct PlanTrial {
    /// Trial index, echoed into the [`TrialOutcome`].
    pub trial: usize,
    /// The trial's cross-validation splits (folds with empty test
    /// constraint sets are skipped by the grid).
    pub splits: Arc<Vec<FoldSplit>>,
    /// Frozen RNG state the grid cells fork from
    /// (`fork_stream(grid_salt(parameter, fold))` per cell).
    pub grid_base: SeededRng,
    /// The external-evaluation stage; `None` for pure selection plans.
    pub external: Option<ExternalStage>,
}

/// The result of one plan trial: the selection, plus the finalized
/// [`TrialOutcome`] when the trial carried an [`ExternalStage`].
pub struct TrialEvaluation {
    /// Steps 1–3: the per-parameter evaluations and the argmax.
    pub selection: CvcpSelection,
    /// Step 4 + baselines, for experiment trials.
    pub outcome: Option<TrialOutcome>,
}

/// Job granularity of the grid lowering: how many grid cells one
/// engine job evaluates.
///
/// Cheap cells (small data sets, warm caches) are dominated by per-job
/// overhead — queueing, dependency bookkeeping, a pool wake-up — so
/// lowering each (trial × parameter × fold) cell as its own job makes
/// 4 workers *slower* than 1.  Fusing a trial's folds into one job per
/// (trial × parameter) chunk amortizes that overhead while keeping the
/// parameter sweep parallel.  Granularity is pure scheduling: every
/// fused cell still forks its RNG stream from the trial's frozen base
/// and its structural coordinates, so fused and per-fold lowerings are
/// **bit-identical** (pinned by the suite's granularity-identity
/// regression at 1/2/8 threads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Granularity {
    /// Decide per plan from the cost model: fuse when the estimated
    /// per-cell work (a static fold-size heuristic refined by the
    /// cache's [`CostProfile`](cvcp_engine::CostProfile) EWMAs) is
    /// below the per-job overhead threshold.  Overridable at run time
    /// via `CVCP_GRANULARITY` / `CVCP_FUSE_THRESHOLD` (see
    /// EXPERIMENTS.md).
    #[default]
    Auto,
    /// Always one job per (trial × parameter × fold) cell — the
    /// finest-grained lowering, best when single cells are expensive.
    PerFold,
    /// Always one job per (trial × parameter) chunk of fold cells.
    Fused,
}

/// Execution knobs of [`ExecutionPlan::run`].
#[derive(Default)]
pub struct PlanOptions {
    /// The scheduling lane the plan's jobs are queued on (pure
    /// scheduling — results are bit-identical across lanes).
    pub priority: Priority,
    /// Job granularity of the grid lowering (pure scheduling — results
    /// are bit-identical across granularities).
    pub granularity: Granularity,
    /// Optional cancellation token: jobs that have not started are
    /// skipped and [`ExecutionPlan::run`] returns
    /// `Err(`[`SelectionCancelled`]`)`.
    pub cancel: Option<CancelToken>,
    /// Progress sink for single-trial streaming selections.
    pub(crate) sink: Option<Arc<ProgressSink>>,
    /// When set, the plan records a per-job timeline ([`GraphTrace`])
    /// under this name.  Tracing is timing-only — the salted RNG streams
    /// are untouched, so traced and untraced runs are bit-identical.  Use
    /// [`ExecutionPlan::run_traced`] to receive the recorded trace.
    pub trace: Option<String>,
}

impl PlanOptions {
    /// Options for the given scheduling lane, no cancellation.
    pub fn with_priority(priority: Priority) -> Self {
        Self {
            priority,
            ..Self::default()
        }
    }
}

/// Default per-job overhead threshold in **microseconds**: cells whose
/// estimated work falls below it are fused.  The PR 6 profiler put the
/// engine's per-job overhead (queue push, dependency bookkeeping, pool
/// wake-up) in the tens of microseconds; 2 ms leaves two orders of
/// magnitude of headroom, so only genuinely cheap grids fuse.
const DEFAULT_FUSE_THRESHOLD_MICROS: u64 = 2_000;

/// The fuse threshold in nanoseconds, honouring `CVCP_FUSE_THRESHOLD`
/// (microseconds; malformed values fall back to the default).
fn fuse_threshold_nanos() -> u64 {
    std::env::var("CVCP_FUSE_THRESHOLD")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(DEFAULT_FUSE_THRESHOLD_MICROS)
        .saturating_mul(1_000)
}

/// The `CVCP_GRANULARITY` override, when set to a recognised value
/// (`fold`/`per-fold` or `fused`; `auto` and anything else defer to the
/// cost model).
fn env_granularity() -> Option<Granularity> {
    let raw = std::env::var("CVCP_GRANULARITY").ok()?;
    match raw.trim().to_ascii_lowercase().as_str() {
        "fold" | "per-fold" | "per_fold" => Some(Granularity::PerFold),
        "fused" => Some(Granularity::Fused),
        _ => None,
    }
}

/// Cost-model estimate of one grid cell's marginal work, in
/// nanoseconds.  Two ingredients:
///
/// * a **static fold-size heuristic** — with warm artifact caches a
///   cell is dominated by O(rows²) passes over shared structures
///   (hierarchy walks, assignment scoring), calibrated here at
///   rows²/4 ns — plus
/// * the **amortized share of the most expensive artifact build** seen
///   by the cache's cost profile (EWMA per artifact kind): artifacts
///   are computed once and shared by the whole grid, so each cell
///   carries `max_ewma / n_cells` of that cost.
///
/// Deliberately clock-free: the estimate is a pure function of plan
/// shape and previously recorded profile state, so lowering decisions
/// never read timers on the result path.
fn estimated_cell_nanos(rows: usize, n_cells: usize, cache: &ArtifactCache) -> u64 {
    let rows = rows as u64;
    let static_est = rows.saturating_mul(rows) / 4;
    let max_ewma = cache
        .cost_profile()
        .entries
        .iter()
        .map(|e| e.ewma_nanos.max(0.0) as u64)
        .max()
        .unwrap_or(0);
    static_est.saturating_add(max_ewma / n_cells.max(1) as u64)
}

/// A full (trial × parameter × fold) evaluation grid plus its reduce
/// stages, ready to be lowered onto an [`Engine`].
pub struct ExecutionPlan {
    data: Arc<DataMatrix>,
    clusterers: Vec<Arc<dyn SemiSupervisedClusterer>>,
    params: Vec<usize>,
    trials: Vec<PlanTrial>,
}

impl ExecutionPlan {
    /// Builds a plan over pre-instantiated clusterers (one per candidate
    /// parameter) and fully-realized trials.
    ///
    /// # Panics
    ///
    /// Panics if `params` is empty, `trials` is empty, or `clusterers`
    /// and `params` disagree in length.
    pub fn new(
        data: Arc<DataMatrix>,
        clusterers: Vec<Arc<dyn SemiSupervisedClusterer>>,
        params: Vec<usize>,
        trials: Vec<PlanTrial>,
    ) -> Self {
        assert!(
            !params.is_empty(),
            "at least one candidate parameter is required"
        );
        assert!(!trials.is_empty(), "at least one trial is required");
        assert_eq!(
            clusterers.len(),
            params.len(),
            "one clusterer per candidate parameter"
        );
        Self {
            data,
            clusterers,
            params,
            trials,
        }
    }

    /// Number of trials in the plan.
    pub fn n_trials(&self) -> usize {
        self.trials.len()
    }

    /// Whether the lowering fuses each trial's fold cells into one job
    /// per (trial × parameter) chunk.
    ///
    /// Precedence: an explicit caller request ([`Granularity::PerFold`]
    /// / [`Granularity::Fused`]) wins outright; under
    /// [`Granularity::Auto`] a recognised `CVCP_GRANULARITY` value wins
    /// over the cost model, which fuses when the estimated per-cell
    /// work is below the per-job overhead threshold
    /// (`CVCP_FUSE_THRESHOLD` µs).
    fn should_fuse(&self, requested: Granularity, cache: &ArtifactCache) -> bool {
        match requested {
            Granularity::PerFold => false,
            Granularity::Fused => true,
            Granularity::Auto => match env_granularity() {
                Some(Granularity::PerFold) => false,
                Some(Granularity::Fused) => true,
                _ => {
                    let folds = self
                        .trials
                        .iter()
                        .map(|t| t.splits.len())
                        .max()
                        .unwrap_or(1);
                    let n_cells = (self.trials.len() * self.params.len() * folds).max(1);
                    estimated_cell_nanos(self.data.n_rows(), n_cells, cache)
                        < fuse_threshold_nanos()
                }
            },
        }
    }

    /// Runs the plan on `engine` and returns one [`TrialEvaluation`] per
    /// trial, in trial order.
    ///
    /// On a one-thread engine the plan executes inline on the calling
    /// thread; otherwise it is lowered into one [`JobGraph`] covering the
    /// full (trial × parameter × fold) grid.  Both paths are
    /// **bit-identical**.
    ///
    /// # Panics
    ///
    /// Panics if any evaluation job panics (and the plan was not
    /// cancelled).
    pub fn run(
        self,
        engine: &Engine,
        options: PlanOptions,
    ) -> Result<Vec<TrialEvaluation>, SelectionCancelled> {
        if engine.n_threads() <= 1 && options.trace.is_none() {
            self.run_inline(engine.cache(), options)
        } else {
            // Tracing needs the graph lowering (the timeline is recorded
            // per job); the engine executes it inline on one thread, so
            // results stay bit-identical either way.
            self.run_on_graph(engine, options).map(|(out, _)| out)
        }
    }

    /// Like [`run`](Self::run), but always lowers onto a [`JobGraph`] and
    /// returns the recorded [`GraphTrace`] alongside the evaluations when
    /// `options.trace` is set.
    pub fn run_traced(
        self,
        engine: &Engine,
        options: PlanOptions,
    ) -> Result<(Vec<TrialEvaluation>, Option<GraphTrace>), SelectionCancelled> {
        self.run_on_graph(engine, options)
    }

    /// The sequential executor: trials, then candidates, in order — with
    /// the same salted streams as the DAG lowering.
    fn run_inline(
        self,
        cache: &ArtifactCache,
        options: PlanOptions,
    ) -> Result<Vec<TrialEvaluation>, SelectionCancelled> {
        let mut out = Vec::with_capacity(self.trials.len());
        for trial in &self.trials {
            out.push(evaluate_trial_inline(
                &self.clusterers,
                &self.params,
                &self.data,
                trial,
                Some(cache),
                options.sink.as_deref(),
                options.cancel.as_ref(),
            )?);
        }
        Ok(out)
    }

    /// The lowering: the full grid as one [`JobGraph`].
    ///
    /// Per candidate parameter one plan-level artifact job (densities /
    /// hierarchies are trial-invariant); per (trial, fold) one fold
    /// artifact job; per (trial, parameter, fold) one evaluation job —
    /// or, when the [`Granularity`] cost model says per-job overhead
    /// dominates, one **fused** evaluation job per (trial, parameter)
    /// chunk of folds; per (trial, parameter) one external job when the
    /// trial has an [`ExternalStage`]; per trial one reduce job; one
    /// final report job.
    fn run_on_graph(
        self,
        engine: &Engine,
        options: PlanOptions,
    ) -> Result<(Vec<TrialEvaluation>, Option<GraphTrace>), SelectionCancelled> {
        let fuse = self.should_fuse(options.granularity, engine.cache());
        let ExecutionPlan {
            data,
            clusterers,
            params,
            trials,
        } = self;
        let PlanOptions {
            priority,
            cancel,
            sink,
            trace,
            granularity: _,
        } = options;
        let n_trials = trials.len();
        let n_params = params.len();
        let params = Arc::new(params);

        let mut graph: JobGraph<Option<Vec<TrialEvaluation>>> = JobGraph::new(0);
        graph.set_priority(priority);
        if let Some(token) = cancel.clone() {
            graph.set_cancel_token(token);
        }
        // Labels are only materialised on traced graphs — the untraced
        // path allocates nothing per job.
        let tracing = trace.is_some();
        if let Some(name) = trace {
            graph.enable_trace(name);
        }

        // Plan-level artifact jobs: the per-parameter artifacts (pairwise
        // matrix, density hierarchies) depend only on (clusterer, data),
        // so one job warms them for every trial of the plan.
        let artifact_ids: Vec<JobId> = clusterers
            .iter()
            .enumerate()
            .map(|(pi, clusterer)| {
                let clusterer = Arc::clone(clusterer);
                let data = Arc::clone(&data);
                let id = graph.add_job(&[], move |ctx| {
                    clusterer.prepare_artifacts(&data, ctx.cache());
                    None
                });
                if tracing {
                    graph.set_job_label(id, format!("artifact/p{}", params[pi]));
                }
                id
            })
            .collect();

        let results: Arc<Mutex<Vec<Option<TrialEvaluation>>>> =
            Arc::new(Mutex::new((0..n_trials).map(|_| None).collect()));
        let mut finalize_ids = Vec::with_capacity(n_trials);
        debug_assert!(
            sink.is_none() || n_trials == 1,
            "progress sinks apply to single-trial plans"
        );
        let mut prev_progress: Option<JobId> = None;

        for (t, trial) in trials.into_iter().enumerate() {
            let trial = Arc::new(trial);
            let splits = Arc::clone(&trial.splits);
            // One artifact job per fold precomputes the structures shared
            // by every parameter evaluated on that fold's training
            // information (MPCKMeans' transitive closure and seeding
            // neighbourhoods are k-invariant), so a whole parameter sweep
            // warms up behind a single computation instead of racing on
            // the first evaluation of each fold.
            let mut fold_artifact_ids: Vec<Option<JobId>> = vec![None; splits.len()];
            for (si, split) in splits.iter().enumerate() {
                if split.test_constraints.is_empty() {
                    continue;
                }
                let clusterer = Arc::clone(&clusterers[0]);
                let data = Arc::clone(&data);
                let splits = Arc::clone(&splits);
                let id = graph.add_job(&[], move |ctx| {
                    clusterer.prepare_fold_artifacts(&data, &splits[si].training, ctx.cache());
                    None
                });
                if tracing {
                    graph.set_job_label(id, format!("t{t}/fold{}", split.fold));
                }
                fold_artifact_ids[si] = Some(id);
            }

            // Grid accumulator: [param][split] fold scores, written by
            // evaluation jobs, read by this trial's reduce job.
            let grid: Arc<Mutex<Vec<Vec<Option<FoldScore>>>>> = Arc::new(Mutex::new(
                (0..n_params).map(|_| vec![None; splits.len()]).collect(),
            ));
            let mut eval_ids = Vec::new();
            let mut per_param_eval_ids: Vec<Vec<JobId>> = vec![Vec::new(); n_params];
            if fuse {
                // Fused granularity: one chunk job per (trial,
                // parameter) evaluates that parameter's folds in fold
                // order.  Each cell still forks its stream from the
                // trial's frozen base and its (parameter, fold)
                // coordinates, so fused and per-fold lowerings are
                // bit-identical by construction.
                for pi in 0..n_params {
                    let clusterer = Arc::clone(&clusterers[pi]);
                    let data = Arc::clone(&data);
                    let splits = Arc::clone(&splits);
                    let grid = Arc::clone(&grid);
                    let trial = Arc::clone(&trial);
                    let deps: Vec<JobId> = std::iter::once(artifact_ids[pi])
                        .chain(fold_artifact_ids.iter().copied().flatten())
                        .collect();
                    let id = graph.add_job(&deps, move |ctx| {
                        let cache = ctx.cache_arc();
                        for (si, split) in splits.iter().enumerate() {
                            if split.test_constraints.is_empty() {
                                continue;
                            }
                            let mut rng = trial.grid_base.fork_stream(grid_salt(pi, split.fold));
                            let score =
                                score_fold(&*clusterer, &data, &splits[si], &mut rng, Some(&cache));
                            grid.lock().expect("grid lock")[pi][si] = Some(score);
                        }
                        None
                    });
                    if tracing {
                        graph.set_job_label(id, format!("t{t}/p{}/fused", params[pi]));
                    }
                    eval_ids.push(id);
                    per_param_eval_ids[pi].push(id);
                }
            } else {
                for pi in 0..n_params {
                    for (si, split) in splits.iter().enumerate() {
                        if split.test_constraints.is_empty() {
                            continue;
                        }
                        let clusterer = Arc::clone(&clusterers[pi]);
                        let data = Arc::clone(&data);
                        let splits = Arc::clone(&splits);
                        let grid = Arc::clone(&grid);
                        let trial = Arc::clone(&trial);
                        let deps: Vec<JobId> = std::iter::once(artifact_ids[pi])
                            .chain(fold_artifact_ids[si])
                            .collect();
                        let fold = split.fold;
                        let id = graph.add_job(&deps, move |ctx| {
                            // The cell's stream is a pure function of the
                            // trial's frozen base and its (parameter, fold)
                            // coordinates — identical to the inline executor.
                            let mut rng = trial.grid_base.fork_stream(grid_salt(pi, fold));
                            let cache = ctx.cache_arc();
                            let score =
                                score_fold(&*clusterer, &data, &splits[si], &mut rng, Some(&cache));
                            grid.lock().expect("grid lock")[pi][si] = Some(score);
                            None
                        });
                        if tracing {
                            graph.set_job_label(id, format!("t{t}/p{}/f{fold}", params[pi]));
                        }
                        eval_ids.push(id);
                        per_param_eval_ids[pi].push(id);
                    }
                }
            }

            // Streaming: one progress job per candidate, chained on its
            // predecessor so events are emitted in ascending candidate
            // order no matter how the fold jobs interleave.  Progress jobs
            // only read the grid — no randomness — so their presence
            // cannot perturb the evaluation streams.
            if let Some(sink) = &sink {
                for pi in 0..n_params {
                    let sink = Arc::clone(sink);
                    let grid = Arc::clone(&grid);
                    let param = params[pi];
                    let mut deps = per_param_eval_ids[pi].clone();
                    deps.extend(prev_progress);
                    let id = graph.add_job(&deps, move |_ctx| {
                        let folds: Vec<FoldScore> = grid.lock().expect("grid lock")[pi]
                            .iter()
                            .flatten()
                            .cloned()
                            .collect();
                        let eval = reduce_fold_scores(param, folds);
                        sink.emit(eval.param, eval.score);
                        None
                    });
                    if tracing {
                        graph.set_job_label(id, format!("progress/p{param}"));
                    }
                    prev_progress = Some(id);
                }
            }

            // External stage: one job per candidate parameter, sharing
            // the candidate's plan-level artifacts.
            let externals: Arc<Mutex<Vec<Option<ExternalCell>>>> =
                Arc::new(Mutex::new(vec![None; n_params]));
            let mut external_ids = Vec::new();
            if trial.external.is_some() {
                for pi in 0..n_params {
                    let clusterer = Arc::clone(&clusterers[pi]);
                    let data = Arc::clone(&data);
                    let trial = Arc::clone(&trial);
                    let externals = Arc::clone(&externals);
                    let id = graph.add_job(&[artifact_ids[pi]], move |ctx| {
                        let ext = trial.external.as_ref().expect("external stage present");
                        let cell = external_cell(&*clusterer, pi, &data, ext, Some(ctx.cache()));
                        externals.lock().expect("externals lock")[pi] = Some(cell);
                        None
                    });
                    if tracing {
                        graph.set_job_label(id, format!("external/t{t}/p{}", params[pi]));
                    }
                    external_ids.push(id);
                }
            }

            // Per-trial reduce: fold scores → parameter evaluations →
            // argmax selection, plus the external finalisation (baselines
            // + correlation) for experiment trials.
            {
                let grid = Arc::clone(&grid);
                let params = Arc::clone(&params);
                let results = Arc::clone(&results);
                let trial = Arc::clone(&trial);
                let externals = Arc::clone(&externals);
                let deps: Vec<JobId> = eval_ids
                    .iter()
                    .copied()
                    .chain(external_ids.iter().copied())
                    .collect();
                let id = graph.add_job(&deps, move |_ctx| {
                    let evaluations: Vec<ParameterEvaluation> = {
                        let grid = grid.lock().expect("grid lock");
                        params
                            .iter()
                            .enumerate()
                            .map(|(pi, &p)| {
                                reduce_fold_scores(p, grid[pi].iter().flatten().cloned().collect())
                            })
                            .collect()
                    };
                    let selection = reduce_evaluations(evaluations);
                    let outcome = trial.external.as_ref().map(|ext| {
                        let cells: Vec<ExternalCell> = externals
                            .lock()
                            .expect("externals lock")
                            .iter()
                            .copied()
                            .map(|c| c.expect("external cell completed"))
                            .collect();
                        finalize_trial(trial.trial, &params, &selection, ext, &cells)
                    });
                    results.lock().expect("plan results lock")[t] =
                        Some(TrialEvaluation { selection, outcome });
                    None
                });
                if tracing {
                    graph.set_job_label(id, format!("reduce/t{t}"));
                }
                finalize_ids.push(id);
            }
        }

        // Report stage: collect every trial, in trial order.
        {
            let results = Arc::clone(&results);
            let id = graph.add_job(&finalize_ids, move |_ctx| {
                Some(
                    results
                        .lock()
                        .expect("plan results lock")
                        .iter_mut()
                        .map(|slot| slot.take().expect("trial finalized"))
                        .collect(),
                )
            });
            if tracing {
                graph.set_job_label(id, "report".to_string());
            }
        }

        let mut result = engine.run_graph(graph);
        let trace = result.trace.take();
        match result.outcomes.pop() {
            Some(JobOutcome::Completed(Some(evaluations))) => Ok((evaluations, trace)),
            _ if cancel.as_ref().is_some_and(CancelToken::is_cancelled) => Err(SelectionCancelled),
            _ => {
                let failure = result
                    .first_failure()
                    .unwrap_or("the report job did not run")
                    .to_string();
                panic!("execution plan failed on the engine: {failure}");
            }
        }
    }
}

/// Inline evaluation of one plan trial with the *same* salted streams as
/// the DAG lowering — shared by the sequential executor and the
/// figure-generating [`crate::experiment::run_trial`] path (which has no
/// engine and may have no cache).
pub(crate) fn evaluate_trial_inline(
    clusterers: &[Arc<dyn SemiSupervisedClusterer>],
    params: &[usize],
    data: &DataMatrix,
    trial: &PlanTrial,
    cache: Option<&ArtifactCache>,
    sink: Option<&ProgressSink>,
    cancel: Option<&CancelToken>,
) -> Result<TrialEvaluation, SelectionCancelled> {
    let is_cancelled = || cancel.is_some_and(CancelToken::is_cancelled);
    let mut evaluations = Vec::with_capacity(params.len());
    for (pi, clusterer) in clusterers.iter().enumerate() {
        if is_cancelled() {
            return Err(SelectionCancelled);
        }
        let eval = evaluate_param_inline(
            &**clusterer,
            pi,
            params[pi],
            data,
            &trial.splits,
            &trial.grid_base,
            cache,
        );
        if let Some(sink) = sink {
            sink.emit(eval.param, eval.score);
        }
        evaluations.push(eval);
    }
    let selection = reduce_evaluations(evaluations);
    let outcome = match &trial.external {
        Some(ext) => {
            let cells: Vec<ExternalCell> = clusterers
                .iter()
                .enumerate()
                .map(|(pi, clusterer)| external_cell(&**clusterer, pi, data, ext, cache))
                .collect();
            Some(finalize_trial(trial.trial, params, &selection, ext, &cells))
        }
        None => None,
    };
    Ok(TrialEvaluation { selection, outcome })
}

/// One external cell: run candidate `pi` with the trial's full side
/// information and measure the external F-measure (plus the Silhouette
/// when requested).  The candidate's stream is `external_base` forked by
/// the candidate index, so parameter order cannot influence results; the
/// Silhouette's pairwise matrix comes from the cache when one is present
/// (bit-identical to the direct computation — see
/// [`silhouette_from_pairwise`]).
fn external_cell(
    clusterer: &dyn SemiSupervisedClusterer,
    pi: usize,
    data: &DataMatrix,
    ext: &ExternalStage,
    cache: Option<&ArtifactCache>,
) -> ExternalCell {
    let mut rng = ext.external_base.fork_stream(pi as u64);
    let partition = match cache {
        Some(cache) => clusterer.cluster_with_cache(data, &ext.side, &mut rng, cache),
        None => clusterer.cluster(data, &ext.side, &mut rng),
    };
    let f = overall_fmeasure_excluding(&partition, &ext.labels, &ext.involved);
    let silhouette = if ext.with_silhouette {
        match cache {
            Some(cache) => {
                let dist = cache.get_or_compute(
                    ArtifactKey::PairwiseDistances {
                        data: fingerprint_matrix(data),
                    },
                    || pairwise_matrix(data, &Euclidean),
                );
                silhouette_from_pairwise(&dist, &partition)
            }
            None => silhouette_coefficient(data, &partition, &Euclidean),
        }
    } else {
        None
    };
    (f, silhouette)
}

/// Folds a trial's selection and external cells into its [`TrialOutcome`]
/// (the per-trial reduce of the experiment harness: CVCP vs expected vs
/// Silhouette, plus the internal/external Pearson correlation).
fn finalize_trial(
    trial: usize,
    params: &[usize],
    selection: &CvcpSelection,
    ext: &ExternalStage,
    cells: &[ExternalCell],
) -> TrialOutcome {
    let internal_scores = selection.scores();
    let external_scores: Vec<f64> = cells.iter().map(|c| c.0).collect();
    let silhouettes: Vec<Option<f64>> = cells.iter().map(|c| c.1).collect();
    let selected_idx = params
        .iter()
        .position(|&p| p == selection.best_param)
        .expect("selected parameter is in the range");
    let cvcp_external = external_scores[selected_idx];
    let expected_external = expected_quality(&external_scores);

    let (silhouette_param, silhouette_external) = if ext.with_silhouette {
        let mut best: Option<(usize, f64)> = None;
        for (i, s) in silhouettes.iter().enumerate() {
            if let Some(v) = s {
                if best.is_none_or(|(_, bv)| *v > bv) {
                    best = Some((i, *v));
                }
            }
        }
        match best {
            Some((i, _)) => (Some(params[i]), Some(external_scores[i])),
            None => (Some(params[0]), Some(external_scores[0])),
        }
    } else {
        (None, None)
    };

    let correlation = pearson(&internal_scores, &external_scores);

    TrialOutcome {
        trial,
        params: params.to_vec(),
        internal_scores,
        external_scores,
        selected_param: selection.best_param,
        cvcp_external,
        expected_external,
        silhouette_param,
        silhouette_external,
        correlation,
    }
}
