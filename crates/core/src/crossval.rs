//! Step 1 of the CVCP framework: estimating the quality of one parameter
//! value by n-fold cross-validation over the side information.
//!
//! For every fold (constructed by `cvcp-constraints::folds` so that training
//! and test information are independent even under the transitive closure),
//! the clustering algorithm is run on the *whole* data set using only the
//! training side information, and the resulting partition is scored as a
//! classifier over the held-out test constraints (average F-measure of the
//! must-link / cannot-link classes).  The parameter's quality is the mean
//! score over folds — exactly Figure 1 of the paper.

use crate::algorithm::{ParameterizedMethod, SemiSupervisedClusterer};
use cvcp_constraints::folds::{constraint_scenario_folds, label_scenario_folds, FoldSplit};
use cvcp_constraints::SideInformation;
use cvcp_data::rng::SeededRng;
use cvcp_data::DataMatrix;
use cvcp_engine::ArtifactCache;
use cvcp_metrics::constraint_fmeasure;

/// Configuration of the CVCP cross-validation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CvcpConfig {
    /// Requested number of folds (the paper uses 10; the effective number is
    /// reduced when fewer labelled/constrained objects are available).
    pub n_folds: usize,
    /// Whether Scenario-I fold assignment is stratified by class label.
    pub stratified: bool,
}

impl Default for CvcpConfig {
    fn default() -> Self {
        Self {
            n_folds: 10,
            stratified: true,
        }
    }
}

/// Score of a single fold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FoldScore {
    /// Fold index.
    pub fold: usize,
    /// Average F-measure over the test constraints of this fold.
    pub f_measure: f64,
    /// Number of test constraints evaluated.
    pub n_test_constraints: usize,
}

/// Full evaluation of one parameter value.
#[derive(Debug, Clone, PartialEq)]
pub struct ParameterEvaluation {
    /// The evaluated parameter value.
    pub param: usize,
    /// Mean F-measure over the non-empty folds — the CVCP quality score.
    pub score: f64,
    /// Per-fold scores.
    pub folds: Vec<FoldScore>,
}

/// Builds the cross-validation splits for the given side information,
/// clamping the fold count to what the available information supports.
pub(crate) fn build_folds(
    side: &SideInformation,
    config: &CvcpConfig,
    rng: &mut SeededRng,
) -> Vec<FoldSplit> {
    match side {
        SideInformation::Labels(labeled) => {
            let n_folds = config.n_folds.clamp(2, labeled.len().max(2));
            label_scenario_folds(labeled, n_folds, config.stratified, rng)
        }
        SideInformation::Constraints(constraints) => {
            let involved = constraints.involved_objects().len();
            let n_folds = config.n_folds.clamp(2, involved.max(2));
            constraint_scenario_folds(constraints, n_folds, rng)
        }
    }
}

/// Evaluates a single parameter value of `method` on `data` with the given
/// side information (Figure 1 / step 1 of the framework).
///
/// Folds whose test constraint set is empty are skipped; if every fold is
/// empty the score is 0.
pub fn evaluate_parameter(
    method: &dyn ParameterizedMethod,
    data: &DataMatrix,
    side: &SideInformation,
    param: usize,
    config: &CvcpConfig,
    rng: &mut SeededRng,
) -> ParameterEvaluation {
    let splits = build_folds(side, config, rng);
    evaluate_parameter_on_folds(method, data, &splits, param, rng)
}

/// Evaluates a parameter on pre-built folds (used by
/// [`crate::selection::select_model`] so that every parameter sees the same
/// folds, as in the paper's setup).
///
/// Each fold draws from its own salted [`SeededRng::fork_stream`] (derived
/// from one fork of `rng`), so the per-fold results do not depend on the
/// order in which folds are evaluated.
pub fn evaluate_parameter_on_folds(
    method: &dyn ParameterizedMethod,
    data: &DataMatrix,
    splits: &[FoldSplit],
    param: usize,
    rng: &mut SeededRng,
) -> ParameterEvaluation {
    let clusterer = method.instantiate(param);
    let base = rng.fork(param as u64);
    let folds = splits
        .iter()
        .filter(|split| !split.test_constraints.is_empty())
        .map(|split| {
            let mut fold_rng = base.fork_stream(split.fold as u64);
            score_fold(&*clusterer, data, split, &mut fold_rng, None)
        })
        .collect();
    reduce_fold_scores(param, folds)
}

/// The RNG-stream salt of one (parameter, fold) cell of the evaluation
/// grid.  Both the engine's job DAG and the inline evaluation path use this
/// salt, which is what makes them bit-identical.
pub(crate) fn grid_salt(param_idx: usize, fold: usize) -> u64 {
    ((param_idx as u64) << 32) | fold as u64
}

/// Runs one grid cell: cluster on the fold's training information, score as
/// a classifier over its held-out constraints.
pub(crate) fn score_fold(
    clusterer: &dyn SemiSupervisedClusterer,
    data: &DataMatrix,
    split: &FoldSplit,
    rng: &mut SeededRng,
    cache: Option<&ArtifactCache>,
) -> FoldScore {
    let partition = match cache {
        Some(cache) => clusterer.cluster_with_cache(data, &split.training, rng, cache),
        None => clusterer.cluster(data, &split.training, rng),
    };
    FoldScore {
        fold: split.fold,
        f_measure: constraint_fmeasure(&partition, &split.test_constraints),
        n_test_constraints: split.test_constraints.len(),
    }
}

/// Folds per-fold scores into a [`ParameterEvaluation`] (mean over the
/// non-empty folds; 0 when every fold was empty).
pub(crate) fn reduce_fold_scores(param: usize, folds: Vec<FoldScore>) -> ParameterEvaluation {
    let score = if folds.is_empty() {
        0.0
    } else {
        folds.iter().map(|f| f.f_measure).sum::<f64>() / folds.len() as f64
    };
    ParameterEvaluation {
        param,
        score,
        folds,
    }
}

/// One column of the inline grid: evaluates candidate `pi` (value `param`)
/// over every non-empty fold, drawing from the same salted streams as the
/// engine's job DAG (what makes the plan's inline executor and its DAG
/// lowering bit-identical).
pub(crate) fn evaluate_param_inline(
    clusterer: &dyn SemiSupervisedClusterer,
    pi: usize,
    param: usize,
    data: &DataMatrix,
    splits: &[FoldSplit],
    base: &SeededRng,
    cache: Option<&ArtifactCache>,
) -> ParameterEvaluation {
    let folds = splits
        .iter()
        .filter(|split| !split.test_constraints.is_empty())
        .map(|split| {
            let mut rng = base.fork_stream(grid_salt(pi, split.fold));
            score_fold(clusterer, data, split, &mut rng, cache)
        })
        .collect();
    reduce_fold_scores(param, folds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{FoscMethod, MpckMethod};
    use cvcp_constraints::generate::{constraint_pool, sample_constraints, sample_labeled_subset};
    use cvcp_data::synthetic::separated_blobs;

    #[test]
    fn good_parameter_scores_higher_than_bad_for_mpck() {
        let mut rng = SeededRng::new(1);
        let ds = separated_blobs(3, 25, 4, 12.0, &mut rng);
        let labeled = sample_labeled_subset(ds.labels(), 0.25, 2, &mut rng);
        let side = SideInformation::Labels(labeled);
        let method = MpckMethod::default();
        let cfg = CvcpConfig {
            n_folds: 5,
            stratified: true,
        };

        let good = evaluate_parameter(&method, ds.matrix(), &side, 3, &cfg, &mut rng);
        let bad = evaluate_parameter(&method, ds.matrix(), &side, 8, &cfg, &mut rng);
        assert!(
            good.score > bad.score,
            "k=3 should beat k=8: {} vs {}",
            good.score,
            bad.score
        );
        assert!(
            good.score > 0.8,
            "score for the right k should be high: {}",
            good.score
        );
    }

    #[test]
    fn fosc_evaluation_in_constraint_scenario() {
        let mut rng = SeededRng::new(2);
        let ds = separated_blobs(3, 25, 3, 14.0, &mut rng);
        let pool = constraint_pool(ds.labels(), 0.2, 2, &mut rng);
        let sampled = sample_constraints(&pool, 0.5, &mut rng);
        let side = SideInformation::Constraints(sampled);
        let method = FoscMethod::default();
        let cfg = CvcpConfig {
            n_folds: 4,
            stratified: true,
        };

        let eval = evaluate_parameter(&method, ds.matrix(), &side, 6, &cfg, &mut rng);
        assert!(eval.score > 0.7, "score = {}", eval.score);
        assert!(!eval.folds.is_empty());
        for f in &eval.folds {
            assert!((0.0..=1.0).contains(&f.f_measure));
            assert!(f.n_test_constraints > 0);
        }
    }

    #[test]
    fn fold_count_is_clamped_to_available_information() {
        let mut rng = SeededRng::new(3);
        let ds = separated_blobs(2, 10, 2, 10.0, &mut rng);
        // only 4 labelled objects but 10 folds requested
        let labeled = sample_labeled_subset(ds.labels(), 0.2, 2, &mut rng);
        assert!(labeled.len() < 10);
        let side = SideInformation::Labels(labeled.clone());
        let cfg = CvcpConfig::default();
        let splits = build_folds(&side, &cfg, &mut rng);
        assert!(splits.len() <= labeled.len());
        assert!(splits.len() >= 2);
    }

    #[test]
    fn scores_are_bounded() {
        let mut rng = SeededRng::new(4);
        let ds = separated_blobs(2, 15, 2, 6.0, &mut rng);
        let labeled = sample_labeled_subset(ds.labels(), 0.3, 2, &mut rng);
        let side = SideInformation::Labels(labeled);
        let cfg = CvcpConfig {
            n_folds: 3,
            stratified: true,
        };
        for param in [2usize, 4, 7] {
            let eval = evaluate_parameter(
                &MpckMethod::default(),
                ds.matrix(),
                &side,
                param,
                &cfg,
                &mut rng,
            );
            assert!(
                (0.0..=1.0).contains(&eval.score),
                "score {} out of bounds",
                eval.score
            );
        }
    }

    #[test]
    fn same_folds_are_reused_across_parameters() {
        let mut rng = SeededRng::new(5);
        let ds = separated_blobs(3, 20, 3, 12.0, &mut rng);
        let labeled = sample_labeled_subset(ds.labels(), 0.3, 2, &mut rng);
        let side = SideInformation::Labels(labeled);
        let cfg = CvcpConfig {
            n_folds: 4,
            stratified: true,
        };
        let splits = build_folds(&side, &cfg, &mut rng);
        let a =
            evaluate_parameter_on_folds(&MpckMethod::default(), ds.matrix(), &splits, 3, &mut rng);
        let b =
            evaluate_parameter_on_folds(&MpckMethod::default(), ds.matrix(), &splits, 5, &mut rng);
        // both evaluations saw the same folds
        assert_eq!(
            a.folds
                .iter()
                .map(|f| f.n_test_constraints)
                .collect::<Vec<_>>(),
            b.folds
                .iter()
                .map(|f| f.n_test_constraints)
                .collect::<Vec<_>>()
        );
    }
}
