//! Steps 2–4 of the CVCP framework: sweep the parameter range, pick the
//! highest-scoring value, and re-run the algorithm with all side information.
//!
//! Both entry points are thin wrappers over the unified
//! [`crate::plan::ExecutionPlan`]: they realize a single-trial plan (folds
//! + frozen grid RNG base) and hand it to the plan's one lowering.

use crate::algorithm::{ParameterizedMethod, SemiSupervisedClusterer};
use crate::crossval::{build_folds, CvcpConfig, ParameterEvaluation};
use crate::plan::{ExecutionPlan, Granularity, PlanOptions, PlanTrial};
use cvcp_constraints::folds::FoldSplit;
use cvcp_constraints::SideInformation;
use cvcp_data::rng::SeededRng;
use cvcp_data::{DataMatrix, Partition};
use cvcp_engine::{CancelToken, Engine, GraphTrace, Priority};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Salt of the RNG stream that feeds the evaluation grid (applied as one
/// `fork` of the caller's generator after the folds are built).
pub(crate) const SELECTION_STREAM_SALT: u64 = 0x5E1E_C710;

/// Result of a CVCP model-selection run.
#[derive(Debug, Clone, PartialEq)]
pub struct CvcpSelection {
    /// The selected (highest-scoring) parameter value.
    pub best_param: usize,
    /// The CVCP score of the selected parameter.
    pub best_score: f64,
    /// The full evaluation of every candidate parameter, in the order given.
    pub evaluations: Vec<ParameterEvaluation>,
}

impl CvcpSelection {
    /// The internal CVCP scores in candidate order (the series plotted in
    /// Figures 5–8 of the paper).
    pub fn scores(&self) -> Vec<f64> {
        self.evaluations.iter().map(|e| e.score).collect()
    }

    /// The candidate parameter values in evaluation order.
    pub fn params(&self) -> Vec<usize> {
        self.evaluations.iter().map(|e| e.param).collect()
    }
}

/// Argmax with "first wins" tie-breaking (the paper does not specify a
/// rule; candidates are conventionally listed in increasing order, so this
/// prefers the simpler model).
pub(crate) fn reduce_evaluations(evaluations: Vec<ParameterEvaluation>) -> CvcpSelection {
    let mut best_idx = 0usize;
    for (i, eval) in evaluations.iter().enumerate() {
        if eval.score > evaluations[best_idx].score {
            best_idx = i;
        }
    }
    CvcpSelection {
        best_param: evaluations[best_idx].param,
        best_score: evaluations[best_idx].score,
        evaluations,
    }
}

/// Runs CVCP model selection: evaluates every candidate parameter with the
/// same cross-validation folds and returns the scores and the argmax.
///
/// This is the sequential entry point — equivalent to
/// [`select_model_with`] on a one-thread [`Engine`] (which is exactly how
/// it is implemented).  Each (parameter × fold) grid cell draws from its
/// own salted RNG stream, so the result does not depend on evaluation
/// order.
///
/// # Panics
///
/// Panics if `params` is empty.
pub fn select_model(
    method: &dyn ParameterizedMethod,
    data: &DataMatrix,
    side: &SideInformation,
    params: &[usize],
    config: &CvcpConfig,
    rng: &mut SeededRng,
) -> CvcpSelection {
    select_model_with(
        &Engine::sequential(),
        method,
        data,
        side,
        params,
        config,
        rng,
    )
}

/// One per-parameter completion event of a streaming selection.
///
/// Exactly one event is emitted per candidate parameter, **in ascending
/// candidate order** — deterministically, even on a multi-threaded engine
/// where fold jobs complete out of order (the plan chains each
/// candidate's progress job on its predecessor's).  `completed` therefore
/// counts `1..=total` in emission order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectionProgress {
    /// The candidate parameter that just finished.
    pub param: usize,
    /// Its CVCP score (mean F-measure over the folds).
    pub score: f64,
    /// How many candidates have finished so far (including this one).
    pub completed: usize,
    /// Total number of candidates.
    pub total: usize,
}

/// Error returned by [`select_model_streaming`] when its [`CancelToken`]
/// was cancelled before the selection finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectionCancelled;

impl std::fmt::Display for SelectionCancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "model selection was cancelled")
    }
}

impl std::error::Error for SelectionCancelled {}

/// Shared progress state: the caller's callback plus the completion
/// counter.  Lives behind an `Arc` so per-parameter DAG jobs (which must be
/// `'static`) can emit into it.
pub(crate) struct ProgressSink {
    callback: Mutex<Box<dyn FnMut(SelectionProgress) + Send>>,
    completed: AtomicUsize,
    total: usize,
}

impl ProgressSink {
    pub(crate) fn emit(&self, param: usize, score: f64) {
        let completed = self.completed.fetch_add(1, Ordering::SeqCst) + 1;
        (self.callback.lock().expect("progress callback lock"))(SelectionProgress {
            param,
            score,
            completed,
            total: self.total,
        });
    }
}

/// Runs CVCP model selection on an execution engine.
///
/// The request is modelled as a job DAG: one artifact job per candidate
/// parameter (precomputing shareable structures such as the per-`MinPts`
/// density hierarchy into the engine's cache), one evaluation job per
/// (parameter × fold) grid cell, and a final reduction job producing the
/// [`CvcpSelection`].  Results are **bit-identical** to the sequential path
/// at any thread count: every grid cell draws from a salted
/// [`SeededRng::fork_stream`] keyed by its (parameter, fold) coordinates,
/// never from execution order.
///
/// # Panics
///
/// Panics if `params` is empty, or if an evaluation job panics.
pub fn select_model_with(
    engine: &Engine,
    method: &dyn ParameterizedMethod,
    data: &DataMatrix,
    side: &SideInformation,
    params: &[usize],
    config: &CvcpConfig,
    rng: &mut SeededRng,
) -> CvcpSelection {
    assert!(
        !params.is_empty(),
        "at least one candidate parameter is required"
    );
    let splits = build_folds(side, config, rng);
    let base = rng.fork(SELECTION_STREAM_SALT);
    let clusterers: Vec<Arc<dyn SemiSupervisedClusterer>> = params
        .iter()
        .map(|&p| Arc::from(method.instantiate(p)))
        .collect();
    select_model_prepared(
        engine,
        &clusterers,
        params,
        data,
        splits,
        base,
        Priority::Interactive,
        Granularity::Auto,
        None,
        None,
        None,
    )
    .expect("selection without a cancel token cannot be cancelled")
    .0
}

/// Like [`select_model_with`], but pins the job [`Granularity`] of the
/// grid lowering instead of deferring to the cost model.
///
/// Granularity is pure scheduling: the returned [`CvcpSelection`] is
/// **bit-identical** to [`select_model_with`] for the same inputs at any
/// thread count — fused chunk jobs fork exactly the per-cell salted
/// streams the per-fold lowering does.  Benchmarks and regression tests
/// use this to compare lowerings without racing on `CVCP_GRANULARITY`.
///
/// # Panics
///
/// Panics if `params` is empty, or if an evaluation job panics.
#[allow(clippy::too_many_arguments)]
pub fn select_model_with_granularity(
    engine: &Engine,
    method: &dyn ParameterizedMethod,
    data: &DataMatrix,
    side: &SideInformation,
    params: &[usize],
    config: &CvcpConfig,
    rng: &mut SeededRng,
    granularity: Granularity,
) -> CvcpSelection {
    assert!(
        !params.is_empty(),
        "at least one candidate parameter is required"
    );
    let splits = build_folds(side, config, rng);
    let base = rng.fork(SELECTION_STREAM_SALT);
    let clusterers: Vec<Arc<dyn SemiSupervisedClusterer>> = params
        .iter()
        .map(|&p| Arc::from(method.instantiate(p)))
        .collect();
    select_model_prepared(
        engine,
        &clusterers,
        params,
        data,
        splits,
        base,
        Priority::Interactive,
        granularity,
        None,
        None,
        None,
    )
    .expect("selection without a cancel token cannot be cancelled")
    .0
}

/// Like [`select_model_with`], but emits a [`SelectionProgress`] event as
/// each candidate parameter finishes, honours an optional [`CancelToken`]
/// and queues its jobs on the given [`Priority`] lane — the serving
/// front-end's entry point.
///
/// The final [`CvcpSelection`] is **bit-identical** to the one
/// [`select_model_with`] returns for the same inputs, on either lane:
/// progress jobs only observe the evaluation grid, they never draw
/// randomness, so the salted RNG streams of the grid cells are unchanged.
/// Events arrive exactly once per candidate, in ascending candidate
/// order (see [`SelectionProgress`]).
///
/// Cancellation skips jobs that have not started; the function then
/// returns `Err(SelectionCancelled)`.  When the token fires after the
/// final reduction has already run, the completed selection is returned.
///
/// # Panics
///
/// Panics if `params` is empty, or if an evaluation job panics.
#[allow(clippy::too_many_arguments)]
pub fn select_model_streaming<F>(
    engine: &Engine,
    method: &dyn ParameterizedMethod,
    data: &DataMatrix,
    side: &SideInformation,
    params: &[usize],
    config: &CvcpConfig,
    rng: &mut SeededRng,
    priority: Priority,
    cancel: Option<CancelToken>,
    on_progress: F,
) -> Result<CvcpSelection, SelectionCancelled>
where
    F: FnMut(SelectionProgress) + Send + 'static,
{
    select_model_streaming_traced(
        engine,
        method,
        data,
        side,
        params,
        config,
        rng,
        priority,
        cancel,
        None,
        on_progress,
    )
    .map(|(selection, _)| selection)
}

/// Like [`select_model_streaming`], but optionally records a per-job
/// timeline ([`GraphTrace`]) of the evaluation graph under `trace_name`.
///
/// Tracing is timing-only: it forces the DAG lowering (even on a
/// one-thread engine, where the graph executes inline) but never touches
/// the salted RNG streams, so the returned [`CvcpSelection`] is
/// **bit-identical** to the untraced run at any thread count.  When
/// `trace_name` is `None` this *is* [`select_model_streaming`] and the
/// returned trace is `None`.
///
/// # Panics
///
/// Panics if `params` is empty, or if an evaluation job panics.
#[allow(clippy::too_many_arguments)]
pub fn select_model_streaming_traced<F>(
    engine: &Engine,
    method: &dyn ParameterizedMethod,
    data: &DataMatrix,
    side: &SideInformation,
    params: &[usize],
    config: &CvcpConfig,
    rng: &mut SeededRng,
    priority: Priority,
    cancel: Option<CancelToken>,
    trace_name: Option<String>,
    on_progress: F,
) -> Result<(CvcpSelection, Option<GraphTrace>), SelectionCancelled>
where
    F: FnMut(SelectionProgress) + Send + 'static,
{
    assert!(
        !params.is_empty(),
        "at least one candidate parameter is required"
    );
    let splits = build_folds(side, config, rng);
    let base = rng.fork(SELECTION_STREAM_SALT);
    let clusterers: Vec<Arc<dyn SemiSupervisedClusterer>> = params
        .iter()
        .map(|&p| Arc::from(method.instantiate(p)))
        .collect();
    let sink = Arc::new(ProgressSink {
        callback: Mutex::new(Box::new(on_progress)),
        completed: AtomicUsize::new(0),
        total: params.len(),
    });
    select_model_prepared(
        engine,
        &clusterers,
        params,
        data,
        splits,
        base,
        priority,
        Granularity::Auto,
        cancel,
        Some(sink),
        trace_name,
    )
}

/// Grid evaluation on pre-instantiated clusterers: realizes a
/// single-trial [`ExecutionPlan`] and runs it through the unified
/// lowering (shared by [`select_model_with`] and
/// [`select_model_streaming`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn select_model_prepared(
    engine: &Engine,
    clusterers: &[Arc<dyn SemiSupervisedClusterer>],
    params: &[usize],
    data: &DataMatrix,
    splits: Vec<FoldSplit>,
    base: SeededRng,
    priority: Priority,
    granularity: Granularity,
    cancel: Option<CancelToken>,
    sink: Option<Arc<ProgressSink>>,
    trace: Option<String>,
) -> Result<(CvcpSelection, Option<GraphTrace>), SelectionCancelled> {
    let trial = PlanTrial {
        trial: 0,
        splits: Arc::new(splits),
        grid_base: base,
        external: None,
    };
    // On the sequential engine, skip plan construction entirely — the
    // inline executor works on borrowed data, so the per-request
    // O(objects²·dims) matrix clone that 'static DAG jobs need is never
    // paid (it is the same executor the plan's own inline branch uses,
    // so both paths stay bit-identical).  A traced run takes the plan
    // path regardless: the timeline is recorded per graph job, and the
    // graph executes inline on a one-thread engine anyway.
    if engine.n_threads() <= 1 && trace.is_none() {
        return crate::plan::evaluate_trial_inline(
            clusterers,
            params,
            data,
            &trial,
            Some(engine.cache()),
            sink.as_deref(),
            cancel.as_ref(),
        )
        .map(|result| (result.selection, None));
    }
    let plan = ExecutionPlan::new(
        Arc::new(data.clone()),
        clusterers.to_vec(),
        params.to_vec(),
        vec![trial],
    );
    let (mut results, trace) = plan.run_traced(
        engine,
        PlanOptions {
            priority,
            granularity,
            cancel,
            sink,
            trace,
        },
    )?;
    Ok((results.pop().expect("single-trial plan").selection, trace))
}

/// Step 4 of the framework: run the algorithm with the selected parameter and
/// *all* available side information, producing the final partition.
pub fn final_clustering(
    method: &dyn ParameterizedMethod,
    data: &DataMatrix,
    side: &SideInformation,
    selection: &CvcpSelection,
    rng: &mut SeededRng,
) -> (Box<dyn SemiSupervisedClusterer>, Partition) {
    let clusterer = method.instantiate(selection.best_param);
    let partition = clusterer.cluster(data, side, rng);
    (clusterer, partition)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{FoscMethod, MpckMethod};
    use cvcp_constraints::generate::{constraint_pool, sample_constraints, sample_labeled_subset};
    use cvcp_data::synthetic::separated_blobs;
    use cvcp_metrics::overall_fmeasure_excluding;

    #[test]
    fn selects_true_k_on_separable_data() {
        let mut rng = SeededRng::new(1);
        let ds = separated_blobs(4, 20, 4, 12.0, &mut rng);
        let labeled = sample_labeled_subset(ds.labels(), 0.25, 2, &mut rng);
        let side = SideInformation::Labels(labeled);
        let cfg = CvcpConfig {
            n_folds: 5,
            stratified: true,
        };
        let sel = select_model(
            &MpckMethod::default(),
            ds.matrix(),
            &side,
            &[2, 3, 4, 5, 6],
            &cfg,
            &mut rng,
        );
        assert_eq!(sel.best_param, 4, "scores: {:?}", sel.scores());
        assert_eq!(sel.params(), vec![2, 3, 4, 5, 6]);
        assert_eq!(sel.evaluations.len(), 5);
    }

    #[test]
    fn selects_a_reasonable_min_pts_for_fosc() {
        let mut rng = SeededRng::new(2);
        let ds = separated_blobs(5, 12, 3, 12.0, &mut rng);
        let pool = constraint_pool(ds.labels(), 0.3, 2, &mut rng);
        let sampled = sample_constraints(&pool, 0.6, &mut rng);
        let side = SideInformation::Constraints(sampled);
        let cfg = CvcpConfig {
            n_folds: 4,
            stratified: true,
        };
        let params = vec![3usize, 6, 9, 12, 15, 18, 21, 24];
        let sel = select_model(
            &FoscMethod::default(),
            ds.matrix(),
            &side,
            &params,
            &cfg,
            &mut rng,
        );
        // Clusters have only 12 objects; MinPts above 12 cannot work well.
        assert!(
            sel.best_param <= 9,
            "selected {} (scores {:?})",
            sel.best_param,
            sel.scores()
        );
    }

    #[test]
    fn selection_quality_transfers_to_external_measure() {
        // CVCP-selected parameter should give an external quality at least as
        // good as the average over the range (the "expected" baseline).
        let mut rng = SeededRng::new(3);
        let ds = separated_blobs(3, 25, 4, 10.0, &mut rng);
        let labeled = sample_labeled_subset(ds.labels(), 0.2, 2, &mut rng);
        let side = SideInformation::Labels(labeled.clone());
        let cfg = CvcpConfig {
            n_folds: 5,
            stratified: true,
        };
        let params = vec![2usize, 3, 4, 5, 6, 7, 8];
        let method = MpckMethod::default();
        let sel = select_model(&method, ds.matrix(), &side, &params, &cfg, &mut rng);

        let mut externals = Vec::new();
        let mut selected_external = 0.0;
        for &p in &params {
            let clusterer = method.instantiate(p);
            let partition = clusterer.cluster(ds.matrix(), &side, &mut rng);
            let f = overall_fmeasure_excluding(&partition, ds.labels(), labeled.indices());
            if p == sel.best_param {
                selected_external = f;
            }
            externals.push(f);
        }
        let expected = externals.iter().sum::<f64>() / externals.len() as f64;
        assert!(
            selected_external >= expected - 0.02,
            "CVCP external {selected_external} should be at least the expected {expected}"
        );
    }

    #[test]
    fn final_clustering_uses_selected_parameter() {
        let mut rng = SeededRng::new(4);
        let ds = separated_blobs(3, 15, 3, 12.0, &mut rng);
        let labeled = sample_labeled_subset(ds.labels(), 0.3, 2, &mut rng);
        let side = SideInformation::Labels(labeled);
        let cfg = CvcpConfig {
            n_folds: 4,
            stratified: true,
        };
        let sel = select_model(
            &MpckMethod::default(),
            ds.matrix(),
            &side,
            &[2, 3, 4],
            &cfg,
            &mut rng,
        );
        let (clusterer, partition) =
            final_clustering(&MpckMethod::default(), ds.matrix(), &side, &sel, &mut rng);
        assert!(clusterer.name().contains(&format!("k={}", sel.best_param)));
        assert_eq!(partition.len(), ds.len());
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_parameter_range_panics() {
        let mut rng = SeededRng::new(5);
        let ds = separated_blobs(2, 10, 2, 10.0, &mut rng);
        let labeled = sample_labeled_subset(ds.labels(), 0.4, 2, &mut rng);
        let side = SideInformation::Labels(labeled);
        let _ = select_model(
            &MpckMethod::default(),
            ds.matrix(),
            &side,
            &[],
            &CvcpConfig::default(),
            &mut rng,
        );
    }

    #[test]
    fn streaming_progress_events_are_deterministic_in_parameter_order() {
        // The regression this pins: on a multi-threaded engine, fold jobs
        // of later candidates can finish before earlier candidates', yet
        // exactly one event must arrive per candidate, in ascending
        // candidate order, with `completed` counting 1..=total — no
        // duplicates, no reordering.
        use std::sync::mpsc;
        let mut rng = SeededRng::new(8);
        let ds = separated_blobs(3, 18, 3, 11.0, &mut rng);
        let labeled = sample_labeled_subset(ds.labels(), 0.3, 2, &mut rng);
        let side = SideInformation::Labels(labeled);
        let cfg = CvcpConfig {
            n_folds: 4,
            stratified: true,
        };
        let params = vec![2usize, 3, 4, 5, 6, 7];
        let engine = Engine::new(8);
        for round in 0..5u64 {
            let (tx, rx) = mpsc::channel();
            let mut rng = SeededRng::new(100 + round);
            let sel = select_model_streaming(
                &engine,
                &MpckMethod::default(),
                ds.matrix(),
                &side,
                &params,
                &cfg,
                &mut rng,
                Priority::Interactive,
                None,
                move |p| tx.send(p).expect("receiver alive"),
            )
            .expect("no cancellation");
            let events: Vec<SelectionProgress> = rx.iter().collect();
            assert_eq!(
                events.iter().map(|e| e.param).collect::<Vec<_>>(),
                params,
                "round {round}: events must arrive exactly once per candidate, in order"
            );
            assert_eq!(
                events.iter().map(|e| e.completed).collect::<Vec<_>>(),
                (1..=params.len()).collect::<Vec<_>>(),
                "round {round}: completed must count 1..=total in order"
            );
            assert!(events.iter().all(|e| e.total == params.len()));
            assert!(params.contains(&sel.best_param));
        }
    }

    #[test]
    fn selection_is_bit_identical_across_priority_lanes() {
        let mut rng = SeededRng::new(9);
        let ds = separated_blobs(3, 16, 3, 11.0, &mut rng);
        let labeled = sample_labeled_subset(ds.labels(), 0.3, 2, &mut rng);
        let side = SideInformation::Labels(labeled);
        let cfg = CvcpConfig {
            n_folds: 3,
            stratified: true,
        };
        let params = vec![2usize, 3, 4];
        let run = |priority: Priority| {
            let engine = Engine::new(4);
            let mut rng = SeededRng::new(55);
            select_model_streaming(
                &engine,
                &MpckMethod::default(),
                ds.matrix(),
                &side,
                &params,
                &cfg,
                &mut rng,
                priority,
                None,
                |_| {},
            )
            .expect("no cancellation")
        };
        assert_eq!(run(Priority::Interactive), run(Priority::Batch));
    }

    #[test]
    fn ties_prefer_the_first_candidate() {
        // With no usable constraints every parameter scores 0; the first
        // candidate must win.
        let mut rng = SeededRng::new(6);
        let ds = separated_blobs(2, 10, 2, 10.0, &mut rng);
        // two labelled objects of the same class in each of 2 folds produce
        // must-link-only test sets that any clustering trivially satisfies or
        // not — use a tiny labelled set to force near-ties.
        let labeled = sample_labeled_subset(ds.labels(), 0.1, 1, &mut rng);
        let side = SideInformation::Labels(labeled);
        let cfg = CvcpConfig {
            n_folds: 2,
            stratified: true,
        };
        let sel = select_model(
            &MpckMethod::default(),
            ds.matrix(),
            &side,
            &[2, 3, 4],
            &cfg,
            &mut rng,
        );
        let scores = sel.scores();
        if scores.iter().all(|&s| (s - scores[0]).abs() < 1e-12) {
            assert_eq!(sel.best_param, 2);
        }
    }
}
