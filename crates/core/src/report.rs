//! Plain-text report formatting for the experiment binaries.
//!
//! The experiment binaries print tables whose rows mirror the paper's tables
//! (mean / std per data set, significance marks) and numeric series that
//! correspond to its figures (parameter curves, box-plot summaries).

use crate::experiment::ExperimentSummary;
use cvcp_metrics::stats::BoxplotStats;

/// Formats a correlation-table row (Tables 1–4): one data set, one value.
pub fn correlation_row(dataset: &str, correlation: f64) -> String {
    format!("{dataset:<18} {correlation:>8.4}")
}

/// Formats a performance-table row for the FOSC tables (Tables 5–7, 11–13):
/// CVCP mean/std and Expected mean/std, with a `*` on the CVCP mean when the
/// difference is statistically significant at `alpha`.
pub fn fosc_performance_row(summary: &ExperimentSummary, alpha: f64) -> String {
    let star = if summary.cvcp_beats_expected_significantly(alpha) {
        "*"
    } else {
        " "
    };
    format!(
        "{:<18} {:>8.4}{} {:>8.4}  {:>8.4} {:>8.4}",
        summary.dataset,
        summary.cvcp.mean,
        star,
        summary.expected.mean,
        summary.cvcp.std,
        summary.expected.std
    )
}

/// Formats a performance-table row for the MPCKMeans tables (Tables 8–10,
/// 14–16): CVCP / Expected / Silhouette means and standard deviations.
pub fn mpck_performance_row(summary: &ExperimentSummary, alpha: f64) -> String {
    let star = if summary.cvcp_beats_expected_significantly(alpha) {
        "*"
    } else {
        " "
    };
    let (sil_mean, sil_std) = summary
        .silhouette
        .as_ref()
        .map_or((f64::NAN, f64::NAN), |s| (s.mean, s.std));
    format!(
        "{:<18} {:>8.4}{} {:>8.4} {:>8.4}  {:>8.4} {:>8.4} {:>8.4}",
        summary.dataset,
        summary.cvcp.mean,
        star,
        summary.expected.mean,
        sil_mean,
        summary.cvcp.std,
        summary.expected.std,
        sil_std
    )
}

/// Formats a figure curve (Figures 5–8) as aligned columns:
/// parameter, internal score, external score.
pub fn curve_table(
    param_name: &str,
    params: &[usize],
    internal: &[f64],
    external: &[f64],
) -> String {
    let mut out = format!("{param_name:>8}  {:>10}  {:>10}\n", "internal", "external");
    for ((p, i), e) in params.iter().zip(internal).zip(external) {
        out.push_str(&format!("{p:>8}  {i:>10.4}  {e:>10.4}\n"));
    }
    out
}

/// Formats a box-plot summary line (Figures 9–12): label, whiskers, quartiles
/// and median.
pub fn boxplot_row(label: &str, values: &[f64]) -> String {
    if values.is_empty() {
        return format!("{label:<12} (no data)");
    }
    let b = BoxplotStats::of(values);
    format!(
        "{label:<12} n={:<4} whiskers=[{:.4}, {:.4}] box=[{:.4}, {:.4}] median={:.4} outliers={}",
        b.n, b.whisker_low, b.whisker_high, b.q1, b.q3, b.median, b.n_outliers
    )
}

/// A header + separator for the experiment tables.
pub fn table_header(title: &str, columns: &str) -> String {
    format!(
        "{title}\n{columns}\n{}\n",
        "-".repeat(columns.len().max(title.len()))
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{summarize, SideInfoSpec, TrialOutcome};

    fn fake_outcomes() -> Vec<TrialOutcome> {
        (0..6)
            .map(|t| TrialOutcome {
                trial: t,
                params: vec![2, 3, 4],
                internal_scores: vec![0.5, 0.9, 0.6],
                external_scores: vec![0.55, 0.92, 0.61],
                selected_param: 3,
                cvcp_external: 0.92,
                expected_external: 0.69,
                silhouette_param: Some(4),
                silhouette_external: Some(0.61 + t as f64 * 0.001),
                correlation: 0.98,
            })
            .collect()
    }

    #[test]
    fn rows_contain_the_numbers() {
        let s = summarize(
            "iris_like",
            "MPCKMeans",
            SideInfoSpec::LabelFraction(0.1),
            &fake_outcomes(),
        );
        let row = mpck_performance_row(&s, 0.05);
        assert!(row.contains("iris_like"));
        assert!(row.contains("0.9200"));
        assert!(row.contains("0.6900"));
        let frow = fosc_performance_row(&s, 0.05);
        assert!(frow.contains("0.9200"));
    }

    #[test]
    fn significance_star_appears_for_clear_differences() {
        let s = summarize(
            "iris_like",
            "MPCKMeans",
            SideInfoSpec::LabelFraction(0.1),
            &fake_outcomes(),
        );
        // CVCP (0.92) vs expected (0.69) with tiny variance is significant —
        // but all differences are identical so the t-test may be degenerate;
        // either way the row formats without panicking.
        let _ = fosc_performance_row(&s, 0.05);
        let _ = mpck_performance_row(&s, 0.05);
    }

    #[test]
    fn correlation_row_formats() {
        let row = correlation_row("zyeast_like", -0.7123);
        assert!(row.contains("zyeast_like"));
        assert!(row.contains("-0.7123"));
    }

    #[test]
    fn curve_table_has_one_line_per_parameter() {
        let t = curve_table("MinPts", &[3, 6, 9], &[0.5, 0.7, 0.6], &[0.55, 0.75, 0.62]);
        assert_eq!(t.lines().count(), 4);
        assert!(t.contains("MinPts"));
    }

    #[test]
    fn boxplot_row_handles_empty_and_regular_input() {
        assert!(boxplot_row("CVCP-10", &[]).contains("no data"));
        let row = boxplot_row("CVCP-10", &[0.5, 0.6, 0.7, 0.8, 0.9]);
        assert!(row.contains("median=0.7000"));
    }

    #[test]
    fn header_contains_title_and_underline() {
        let h = table_header("Table 5", "dataset  cvcp  expected");
        assert!(h.starts_with("Table 5\n"));
        assert!(h.contains("---"));
    }
}
