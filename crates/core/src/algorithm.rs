//! Abstractions over semi-supervised clustering algorithms.
//!
//! CVCP treats the clustering algorithm as a black box with a single
//! integer-valued parameter: `MinPts` for FOSC-OPTICSDend and `k` for
//! MPCKMeans in the paper.  [`SemiSupervisedClusterer`] is one concrete
//! parameterisation; [`ParameterizedMethod`] is the family over which CVCP
//! searches.

use cvcp_constraints::{ConstraintKind, ConstraintSet, SideInformation};
use cvcp_data::distance::{pairwise_matrix, Euclidean};
use cvcp_data::rng::SeededRng;
use cvcp_data::{DataMatrix, Partition};
use cvcp_density::{CondensedTree, FoscOpticsDend};
use cvcp_engine::{
    fingerprint_matrix, ArtifactCache, ArtifactKey, Fingerprint, FingerprintBuilder,
};
use cvcp_kmeans::{MpckMeans, MpckSeeding};
use std::sync::Arc;

/// Content fingerprint of a constraint set (object count + every
/// constraint's endpoints and kind, in the set's deterministic order).
pub fn fingerprint_constraints(set: &ConstraintSet) -> Fingerprint {
    let mut h = FingerprintBuilder::new();
    h.write_u64(set.n_objects() as u64);
    h.write_u64(set.len() as u64);
    for c in set.iter() {
        h.write_u64(c.a as u64);
        h.write_u64(c.b as u64);
        h.write_u64(match c.kind {
            ConstraintKind::MustLink => 0,
            ConstraintKind::CannotLink => 1,
        });
    }
    h.finish()
}

/// A semi-supervised clustering algorithm with all parameters fixed.
pub trait SemiSupervisedClusterer: Send + Sync {
    /// Human-readable name (used in reports).
    fn name(&self) -> String;

    /// Clusters the *whole* data set using the given side information.
    ///
    /// Implementations must accept empty side information (fully
    /// unsupervised operation).
    fn cluster(&self, data: &DataMatrix, side: &SideInformation, rng: &mut SeededRng) -> Partition;

    /// Like [`Self::cluster`], but allowed to reuse (and populate) shared
    /// artifacts from the engine's cache.  Must return exactly the same
    /// partition as [`Self::cluster`] for the same inputs — the cache trades
    /// time, never results.  The default implementation ignores the cache.
    fn cluster_with_cache(
        &self,
        data: &DataMatrix,
        side: &SideInformation,
        rng: &mut SeededRng,
        cache: &ArtifactCache,
    ) -> Partition {
        let _ = cache;
        self.cluster(data, side, rng)
    }

    /// Precomputes this clusterer's shareable artifacts into `cache` so
    /// subsequent [`Self::cluster_with_cache`] calls hit.  Used by the
    /// engine's artifact jobs; the default is a no-op for algorithms with
    /// nothing to share.
    fn prepare_artifacts(&self, data: &DataMatrix, cache: &ArtifactCache) {
        let _ = (data, cache);
    }

    /// Precomputes the artifacts shared by every parameter value evaluated
    /// on one cross-validation fold's `training` side information (e.g.
    /// MPCKMeans' transitive closure and seeding neighbourhoods, which do
    /// not depend on `k`).  The default is a no-op.
    fn prepare_fold_artifacts(
        &self,
        data: &DataMatrix,
        training: &SideInformation,
        cache: &ArtifactCache,
    ) {
        let _ = (data, training, cache);
    }
}

/// A family of semi-supervised clustering algorithms indexed by an integer
/// parameter (the quantity CVCP selects).
pub trait ParameterizedMethod: Send + Sync {
    /// Name of the family, e.g. `"FOSC-OPTICSDend"`.
    fn name(&self) -> String;

    /// Name of the free parameter, e.g. `"MinPts"` or `"k"`.
    fn parameter_name(&self) -> String;

    /// Instantiates the algorithm for a concrete parameter value.
    fn instantiate(&self, param: usize) -> Box<dyn SemiSupervisedClusterer>;

    /// The default parameter range used by the paper's experiments for this
    /// family (`MinPts ∈ {3,…,24}` in steps of 3; `k ∈ {2,…,10}`).
    fn default_parameter_range(&self, n_classes_hint: usize) -> Vec<usize>;

    /// Whether the Silhouette baseline is applicable (it is defined for
    /// centroid-based methods like MPCKMeans, not for density-based methods;
    /// the paper notes no comparable heuristic exists for `MinPts`).
    fn supports_silhouette(&self) -> bool {
        false
    }

    /// The artifact-kind names (see `ArtifactKey::KIND_NAMES`) that
    /// [`SemiSupervisedClusterer::prepare_artifacts`] materialises for this
    /// family from the data alone — the kinds a startup cache warmup can
    /// precompute before any side information exists.  Families whose
    /// shareable artifacts all depend on side information (e.g. MPCKMeans'
    /// fold closures and seedings) return the empty slice: warming them
    /// ahead of traffic is impossible, so warmup skips the family.
    fn artifact_kinds(&self) -> &'static [&'static str] {
        &[]
    }
}

// ---------------------------------------------------------------------------
// FOSC-OPTICSDend adapter
// ---------------------------------------------------------------------------

/// The FOSC-OPTICSDend family (parameter: `MinPts`).
#[derive(Debug, Clone)]
pub struct FoscMethod {
    /// Whether stability is used as a tie-break in the FOSC extraction.
    pub stability_tiebreak: bool,
}

impl Default for FoscMethod {
    fn default() -> Self {
        Self {
            stability_tiebreak: true,
        }
    }
}

/// FOSC-OPTICSDend at a fixed `MinPts`.
#[derive(Debug, Clone)]
pub struct FoscClusterer {
    min_pts: usize,
    stability_tiebreak: bool,
}

impl FoscClusterer {
    fn algorithm(&self) -> FoscOpticsDend {
        FoscOpticsDend::new(self.min_pts).with_stability_tiebreak(self.stability_tiebreak)
    }

    /// The condensed hierarchy for this `MinPts`, computed once per engine
    /// and shared across every fold / trial / request on the same data.  The
    /// `O(n²·d)` pairwise distance matrix is itself cached and shared across
    /// *all* `MinPts` values.
    fn cached_tree(&self, data: &DataMatrix, cache: &ArtifactCache) -> Arc<CondensedTree> {
        let algo = self.algorithm();
        let data_key = fingerprint_matrix(data);
        cache.get_or_compute(
            ArtifactKey::DensityHierarchy {
                data: data_key,
                min_pts: algo.min_pts,
                min_cluster_size: algo.effective_min_cluster_size(),
            },
            || {
                let dist: Arc<Vec<Vec<f64>>> = cache
                    .get_or_compute(ArtifactKey::PairwiseDistances { data: data_key }, || {
                        pairwise_matrix(data, &Euclidean)
                    });
                algo.build_tree_from_pairwise(&dist)
            },
        )
    }
}

impl SemiSupervisedClusterer for FoscClusterer {
    fn name(&self) -> String {
        format!("FOSC-OPTICSDend(MinPts={})", self.min_pts)
    }

    fn cluster(
        &self,
        data: &DataMatrix,
        side: &SideInformation,
        _rng: &mut SeededRng,
    ) -> Partition {
        let constraints = side.as_constraints();
        self.algorithm().fit(data, &constraints).partition
    }

    fn cluster_with_cache(
        &self,
        data: &DataMatrix,
        side: &SideInformation,
        _rng: &mut SeededRng,
        cache: &ArtifactCache,
    ) -> Partition {
        let constraints = side.as_constraints();
        let tree = self.cached_tree(data, cache);
        self.algorithm()
            .extract_on_tree(&tree, &constraints)
            .partition
    }

    fn prepare_artifacts(&self, data: &DataMatrix, cache: &ArtifactCache) {
        if data.n_rows() >= 2 {
            let _ = self.cached_tree(data, cache);
        }
    }
}

impl ParameterizedMethod for FoscMethod {
    fn name(&self) -> String {
        "FOSC-OPTICSDend".to_string()
    }

    fn parameter_name(&self) -> String {
        "MinPts".to_string()
    }

    fn instantiate(&self, param: usize) -> Box<dyn SemiSupervisedClusterer> {
        Box::new(FoscClusterer {
            min_pts: param.max(2),
            stability_tiebreak: self.stability_tiebreak,
        })
    }

    fn default_parameter_range(&self, _n_classes_hint: usize) -> Vec<usize> {
        // The range used throughout the paper's experiments.
        vec![3, 6, 9, 12, 15, 18, 21, 24]
    }

    fn artifact_kinds(&self) -> &'static [&'static str] {
        // `FoscClusterer::prepare_artifacts` builds the condensed tree,
        // which caches the full chain of data-only artifacts.
        &[
            "pairwise_distances",
            "core_distances",
            "mutual_reachability_mst",
            "density_hierarchy",
        ]
    }
}

// ---------------------------------------------------------------------------
// MPCKMeans adapter
// ---------------------------------------------------------------------------

/// The MPCKMeans family (parameter: `k`).
#[derive(Debug, Clone)]
pub struct MpckMethod {
    /// Constraint-violation weight (must-link and cannot-link alike).
    pub violation_weight: f64,
    /// Whether per-cluster diagonal metrics are learned.
    pub learn_metric: bool,
    /// Maximum EM iterations per run.
    pub max_iter: usize,
}

impl Default for MpckMethod {
    fn default() -> Self {
        Self {
            violation_weight: 1.0,
            learn_metric: true,
            max_iter: 30,
        }
    }
}

/// MPCKMeans at a fixed `k`.
#[derive(Debug, Clone)]
pub struct MpckClusterer {
    k: usize,
    violation_weight: f64,
    learn_metric: bool,
    max_iter: usize,
}

impl MpckClusterer {
    /// The configured algorithm with `k` clamped to the data size.
    fn algorithm(&self, n_rows: usize) -> MpckMeans {
        let k = self.k.min(n_rows).max(1);
        MpckMeans::new(k)
            .with_weights(self.violation_weight, self.violation_weight)
            .with_metric_learning(self.learn_metric)
            .with_max_iter(self.max_iter)
    }

    /// The `k`-invariant seeding structures (transitive closure + must-link
    /// neighbourhood centroids) for one constraint realisation, computed
    /// once per engine and shared by every `k` of the parameter sweep —
    /// and by every trial that draws the same realisation.
    fn cached_seeding(
        &self,
        data: &DataMatrix,
        constraints: &ConstraintSet,
        cache: &ArtifactCache,
    ) -> Arc<MpckSeeding> {
        // The flag comes from the configured algorithm (not a literal) and
        // participates in the key, so a closure-based and a closure-free
        // seeding can never be served for one another.
        let use_closure = self.algorithm(data.n_rows()).use_closure;
        cache.get_or_compute(
            ArtifactKey::MpckSeeding {
                data: fingerprint_matrix(data),
                constraints: fingerprint_constraints(constraints),
                use_closure,
            },
            || MpckSeeding::compute(data, constraints, use_closure),
        )
    }
}

impl SemiSupervisedClusterer for MpckClusterer {
    fn name(&self) -> String {
        format!("MPCKMeans(k={})", self.k)
    }

    fn cluster(&self, data: &DataMatrix, side: &SideInformation, rng: &mut SeededRng) -> Partition {
        let constraints = side.as_constraints();
        self.algorithm(data.n_rows())
            .fit(data, &constraints, rng)
            .partition
    }

    fn cluster_with_cache(
        &self,
        data: &DataMatrix,
        side: &SideInformation,
        rng: &mut SeededRng,
        cache: &ArtifactCache,
    ) -> Partition {
        let constraints = side.as_constraints();
        let seeding = self.cached_seeding(data, &constraints, cache);
        self.algorithm(data.n_rows())
            .fit_seeded(data, &seeding, rng)
            .partition
    }

    fn prepare_fold_artifacts(
        &self,
        data: &DataMatrix,
        training: &SideInformation,
        cache: &ArtifactCache,
    ) {
        if data.n_rows() == 0 {
            return;
        }
        let constraints = training.as_constraints();
        let _ = self.cached_seeding(data, &constraints, cache);
    }
}

impl ParameterizedMethod for MpckMethod {
    fn name(&self) -> String {
        "MPCKMeans".to_string()
    }

    fn parameter_name(&self) -> String {
        "k".to_string()
    }

    fn instantiate(&self, param: usize) -> Box<dyn SemiSupervisedClusterer> {
        Box::new(MpckClusterer {
            k: param.max(1),
            violation_weight: self.violation_weight,
            learn_metric: self.learn_metric,
            max_iter: self.max_iter,
        })
    }

    fn default_parameter_range(&self, n_classes_hint: usize) -> Vec<usize> {
        // k ∈ {2, …, M} where M is a reasonable upper bound on the number of
        // clusters; the paper uses up to 2× the true number of classes
        // (capped at 10, as in Figures 6/8).
        let upper = (2 * n_classes_hint.max(2)).clamp(3, 10);
        (2..=upper).collect()
    }

    fn supports_silhouette(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvcp_constraints::generate::sample_labeled_subset;
    use cvcp_data::synthetic::separated_blobs;
    use cvcp_metrics::adjusted_rand_index;

    #[test]
    fn fosc_adapter_clusters_via_labels() {
        let mut rng = SeededRng::new(1);
        let ds = separated_blobs(3, 20, 3, 12.0, &mut rng);
        let labeled = sample_labeled_subset(ds.labels(), 0.2, 2, &mut rng);
        let side = SideInformation::Labels(labeled);
        let clusterer = FoscMethod::default().instantiate(5);
        let p = clusterer.cluster(ds.matrix(), &side, &mut rng);
        let ari = adjusted_rand_index(&p, ds.labels());
        assert!(ari > 0.85, "ARI = {ari}");
        assert!(clusterer.name().contains("MinPts=5"));
    }

    #[test]
    fn mpck_adapter_clusters_via_labels() {
        let mut rng = SeededRng::new(2);
        let ds = separated_blobs(3, 20, 3, 12.0, &mut rng);
        let labeled = sample_labeled_subset(ds.labels(), 0.2, 2, &mut rng);
        let side = SideInformation::Labels(labeled);
        let clusterer = MpckMethod::default().instantiate(3);
        let p = clusterer.cluster(ds.matrix(), &side, &mut rng);
        let ari = adjusted_rand_index(&p, ds.labels());
        assert!(ari > 0.85, "ARI = {ari}");
        assert!(clusterer.name().contains("k=3"));
    }

    #[test]
    fn adapters_accept_empty_side_information() {
        let mut rng = SeededRng::new(3);
        let ds = separated_blobs(2, 15, 2, 10.0, &mut rng);
        let side = SideInformation::none(ds.len());
        let f = FoscMethod::default()
            .instantiate(4)
            .cluster(ds.matrix(), &side, &mut rng);
        let m = MpckMethod::default()
            .instantiate(2)
            .cluster(ds.matrix(), &side, &mut rng);
        assert_eq!(f.len(), ds.len());
        assert_eq!(m.len(), ds.len());
    }

    #[test]
    fn default_parameter_ranges_match_the_paper() {
        let fosc = FoscMethod::default();
        assert_eq!(
            fosc.default_parameter_range(5),
            vec![3, 6, 9, 12, 15, 18, 21, 24]
        );
        assert_eq!(fosc.parameter_name(), "MinPts");
        assert!(!fosc.supports_silhouette());

        let mpck = MpckMethod::default();
        assert_eq!(
            mpck.default_parameter_range(5),
            (2..=10).collect::<Vec<_>>()
        );
        assert_eq!(mpck.default_parameter_range(3), (2..=6).collect::<Vec<_>>());
        assert_eq!(mpck.parameter_name(), "k");
        assert!(mpck.supports_silhouette());
    }

    #[test]
    fn mpck_cache_path_is_bit_identical_and_shares_seeding() {
        let mut rng = SeededRng::new(5);
        let ds = separated_blobs(3, 20, 3, 12.0, &mut rng);
        let labeled = sample_labeled_subset(ds.labels(), 0.25, 2, &mut rng);
        let side = SideInformation::Labels(labeled);
        let cache = ArtifactCache::new();
        for k in [2usize, 3, 4] {
            let clusterer = MpckMethod::default().instantiate(k);
            let direct = clusterer.cluster(ds.matrix(), &side, &mut SeededRng::new(31));
            let cached =
                clusterer.cluster_with_cache(ds.matrix(), &side, &mut SeededRng::new(31), &cache);
            assert_eq!(direct, cached, "cache changed the MPCK result at k={k}");
        }
        let stats = cache.stats();
        // One seeding computed for the realisation, reused by the other k's.
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 2);
    }

    #[test]
    fn prepare_fold_artifacts_warms_the_mpck_cache() {
        let mut rng = SeededRng::new(6);
        let ds = separated_blobs(2, 15, 2, 10.0, &mut rng);
        let labeled = sample_labeled_subset(ds.labels(), 0.3, 2, &mut rng);
        let side = SideInformation::Labels(labeled);
        let cache = ArtifactCache::new();
        let clusterer = MpckMethod::default().instantiate(2);
        clusterer.prepare_fold_artifacts(ds.matrix(), &side, &cache);
        assert_eq!(cache.stats().misses, 1);
        let _ = clusterer.cluster_with_cache(ds.matrix(), &side, &mut rng, &cache);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "clustering must hit the prepared seeding");
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn constraint_fingerprints_detect_content_changes() {
        let mut a = ConstraintSet::new(5);
        a.add_must_link(0, 1);
        a.add_cannot_link(2, 3);
        let b = a.clone();
        assert_eq!(fingerprint_constraints(&a), fingerprint_constraints(&b));
        a.add_must_link(3, 4);
        assert_ne!(fingerprint_constraints(&a), fingerprint_constraints(&b));
        // kind participates
        let mut ml = ConstraintSet::new(3);
        ml.add_must_link(0, 1);
        let mut cl = ConstraintSet::new(3);
        cl.add_cannot_link(0, 1);
        assert_ne!(fingerprint_constraints(&ml), fingerprint_constraints(&cl));
    }

    #[test]
    fn k_larger_than_data_is_clamped() {
        let mut rng = SeededRng::new(4);
        let ds = separated_blobs(2, 3, 2, 10.0, &mut rng);
        let side = SideInformation::none(ds.len());
        let clusterer = MpckMethod::default().instantiate(50);
        let p = clusterer.cluster(ds.matrix(), &side, &mut rng);
        assert_eq!(p.len(), ds.len());
    }
}
