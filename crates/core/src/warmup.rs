//! Startup cache warmup: precompute the highest-benefit artifacts before a
//! serving engine accepts traffic.
//!
//! A freshly started server begins with an empty [`ArtifactCache`], so its
//! first requests pay the full recompute cost of every shared artifact
//! (pairwise matrices, density hierarchies) even when the operator knows
//! exactly which data sets the fleet serves.  [`CacheWarmup`] closes that
//! gap: given the expected data sets and method families, it ranks each
//! (data set × family) cell by *expected benefit* — the number of
//! parameters the family's default sweep evaluates times the learned
//! per-kind recompute cost (the [`CostProfile`] EWMAs, preloaded from a
//! persisted profile via `CVCP_CACHE_COST_PROFILE`) — and runs the
//! families' [`SemiSupervisedClusterer::prepare_artifacts`] jobs on the
//! engine's batch lane, highest benefit first.
//!
//! Warmup is a pure cache population pass: it computes exactly the
//! artifacts normal selections would compute on first touch, through the
//! same `prepare_artifacts` entry point the [`crate::plan::ExecutionPlan`]
//! lowering uses, so it can never change any result — it only moves
//! recompute cost from the first requests to startup.  Families whose
//! shareable artifacts all require side information (empty
//! [`ParameterizedMethod::artifact_kinds`], e.g. MPCKMeans) are skipped:
//! there is nothing to compute for them before a request arrives.
//!
//! Ranking and job order are deterministic functions of the targets,
//! families and the cost profile — no clocks, no randomness — so a given
//! configuration always warms the same artifacts in the same order (ties
//! rank by data-set then family name).

use crate::algorithm::ParameterizedMethod;
#[cfg(doc)]
use crate::algorithm::SemiSupervisedClusterer;
use cvcp_data::{DataMatrix, Dataset};
#[cfg(doc)]
use cvcp_engine::ArtifactCache;
use cvcp_engine::{CostProfile, Engine, JobGraph, Priority};
use std::sync::Arc;

/// One data set a warmup pass should prepare artifacts for.
#[derive(Clone)]
struct WarmupTarget {
    name: String,
    data: Arc<DataMatrix>,
    n_classes_hint: usize,
}

/// One ranked (data set × method family) cell of a warmup plan.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmupEntry {
    /// Data-set name.
    pub dataset: String,
    /// Method-family name.
    pub method: String,
    /// The parameter values whose artifacts the cell precomputes (the
    /// family's default sweep for the data set).
    pub params: Vec<usize>,
    /// Expected benefit in EWMA-nanoseconds: `params.len() ×` the summed
    /// learned recompute cost of the family's artifact kinds.  Zero on a
    /// cold profile — cells are still warmed, in name order.
    pub benefit_nanos: f64,
}

/// What a [`CacheWarmup::run`] pass did, for startup logging.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmupReport {
    /// The executed plan, in rank order (after any job-budget truncation).
    pub entries: Vec<WarmupEntry>,
    /// Total `prepare_artifacts` jobs run (one per entry parameter).
    pub jobs: usize,
    /// Artifacts resident in the cache after the pass.
    pub resident_entries: usize,
    /// Bytes resident in the cache after the pass.
    pub resident_bytes: usize,
}

/// A startup cache-warmup plan: data sets × method families, ranked by
/// expected recompute-cost benefit and executed on the batch lane.
///
/// ```
/// use cvcp_core::prelude::*;
/// use cvcp_core::warmup::CacheWarmup;
/// use cvcp_data::rng::SeededRng;
/// use cvcp_data::synthetic::separated_blobs;
/// use std::sync::Arc;
///
/// let ds = separated_blobs(3, 20, 4, 10.0, &mut SeededRng::new(7));
/// let engine = Engine::new(2);
/// let report = CacheWarmup::new()
///     .add_dataset(&ds)
///     .add_method(Arc::new(FoscMethod::default()))
///     .run(&engine);
/// assert!(report.jobs > 0);
/// assert!(report.resident_entries > 0);
/// ```
#[derive(Default)]
pub struct CacheWarmup {
    targets: Vec<WarmupTarget>,
    methods: Vec<Arc<dyn ParameterizedMethod>>,
    max_jobs: Option<usize>,
}

impl CacheWarmup {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a data set (its matrix is shared, not copied per job).
    pub fn add_dataset(self, dataset: &Dataset) -> Self {
        self.add_target(
            dataset.name(),
            Arc::new(dataset.matrix().clone()),
            dataset.n_classes(),
        )
    }

    /// Adds a raw warmup target: a named matrix plus the class-count hint
    /// its parameter sweeps are sized from.
    pub fn add_target(
        mut self,
        name: impl Into<String>,
        data: Arc<DataMatrix>,
        n_classes_hint: usize,
    ) -> Self {
        self.targets.push(WarmupTarget {
            name: name.into(),
            data,
            n_classes_hint,
        });
        self
    }

    /// Adds a method family.  Families with no data-only artifacts (empty
    /// [`ParameterizedMethod::artifact_kinds`]) are skipped at plan time.
    pub fn add_method(mut self, method: Arc<dyn ParameterizedMethod>) -> Self {
        self.methods.push(method);
        self
    }

    /// Caps the total number of `prepare_artifacts` jobs; the lowest-ranked
    /// cells lose their tail parameters first.
    pub fn with_max_jobs(mut self, max_jobs: usize) -> Self {
        self.max_jobs = Some(max_jobs);
        self
    }

    /// The ranked plan under a given cost profile: every (data set ×
    /// family) cell with at least one data-only artifact kind, highest
    /// [`WarmupEntry::benefit_nanos`] first, name order on ties.
    pub fn plan(&self, profile: &CostProfile) -> Vec<WarmupEntry> {
        let kind_cost = |kind: &str| -> f64 {
            profile
                .entries
                .iter()
                .find(|e| e.kind == kind)
                .map_or(0.0, |e| e.ewma_nanos)
        };
        let mut entries: Vec<WarmupEntry> = Vec::new();
        for target in &self.targets {
            for method in &self.methods {
                let kinds = method.artifact_kinds();
                if kinds.is_empty() {
                    continue;
                }
                let params = method.default_parameter_range(target.n_classes_hint);
                if params.is_empty() {
                    continue;
                }
                let per_sweep: f64 = kinds.iter().map(|k| kind_cost(k)).sum();
                entries.push(WarmupEntry {
                    dataset: target.name.clone(),
                    method: method.name(),
                    benefit_nanos: per_sweep * params.len() as f64,
                    params,
                });
            }
        }
        entries.sort_by(|a, b| {
            b.benefit_nanos
                .total_cmp(&a.benefit_nanos)
                .then_with(|| a.dataset.cmp(&b.dataset))
                .then_with(|| a.method.cmp(&b.method))
        });
        entries
    }

    /// Ranks the plan against the engine cache's current cost profile and
    /// runs it on the batch lane, returning what was warmed.
    ///
    /// # Panics
    ///
    /// Panics if a `prepare_artifacts` implementation panics.
    pub fn run(&self, engine: &Engine) -> WarmupReport {
        let mut entries = self.plan(&engine.cache().cost_profile());

        // Apply the job budget: rank order is benefit order, so the cap
        // drops the cheapest-to-skip work first (tail parameters of the
        // lowest-ranked cells).
        let mut remaining = self.max_jobs.unwrap_or(usize::MAX);
        for entry in &mut entries {
            entry.params.truncate(remaining);
            remaining -= entry.params.len();
        }
        entries.retain(|e| !e.params.is_empty());

        let mut graph: JobGraph<()> = JobGraph::new(0);
        graph.set_priority(Priority::Batch);
        let mut jobs = 0usize;
        for entry in &entries {
            let target = self
                .targets
                .iter()
                .find(|t| t.name == entry.dataset)
                .expect("plan entries come from targets");
            let method = self
                .methods
                .iter()
                .find(|m| m.name() == entry.method)
                .expect("plan entries come from methods");
            for &param in &entry.params {
                let clusterer = method.instantiate(param);
                let data = Arc::clone(&target.data);
                graph.add_job(&[], move |ctx| {
                    clusterer.prepare_artifacts(&data, ctx.cache());
                });
                jobs += 1;
            }
        }
        if jobs > 0 {
            engine.run_graph(graph).expect_all("cache warmup");
        }
        let stats = engine.cache_stats();
        WarmupReport {
            entries,
            jobs,
            resident_entries: stats.resident_entries,
            resident_bytes: stats.resident_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{FoscMethod, MpckMethod};
    use crate::crossval::CvcpConfig;
    use crate::selection::select_model_with;
    use cvcp_constraints::generate::sample_labeled_subset;
    use cvcp_constraints::SideInformation;
    use cvcp_data::rng::SeededRng;
    use cvcp_data::synthetic::separated_blobs;
    use cvcp_engine::CostProfileEntry;

    fn blobs(seed: u64) -> Dataset {
        separated_blobs(3, 20, 4, 10.0, &mut SeededRng::new(seed))
    }

    #[test]
    fn warmup_populates_the_cache_and_later_sweeps_hit_it() {
        let ds = blobs(7);
        let engine = Engine::new(2);
        let report = CacheWarmup::new()
            .add_dataset(&ds)
            .add_method(Arc::new(FoscMethod::default()))
            .run(&engine);

        let range = FoscMethod::default().default_parameter_range(ds.n_classes());
        assert_eq!(report.jobs, range.len());
        assert_eq!(report.entries.len(), 1);
        assert_eq!(report.entries[0].dataset, ds.name());
        assert!(report.resident_entries > 0);
        assert!(report.resident_bytes > 0);

        // Re-preparing the same artifacts is now pure cache hits.
        let misses_after_warmup = engine.cache_stats().misses;
        for &p in &range {
            FoscMethod::default()
                .instantiate(p)
                .prepare_artifacts(ds.matrix(), engine.cache());
        }
        assert_eq!(engine.cache_stats().misses, misses_after_warmup);
        assert!(engine.cache_stats().hits > 0);
    }

    #[test]
    fn side_information_only_families_are_skipped() {
        let ds = blobs(8);
        let engine = Engine::new(1);
        let report = CacheWarmup::new()
            .add_dataset(&ds)
            .add_method(Arc::new(MpckMethod::default()))
            .run(&engine);
        assert_eq!(report.jobs, 0);
        assert!(report.entries.is_empty());
        assert_eq!(report.resident_entries, 0);
    }

    #[test]
    fn plan_ranks_by_learned_benefit_with_name_order_ties() {
        let warmup = CacheWarmup::new()
            .add_target("b_set", Arc::new(blobs(1).matrix().clone()), 3)
            .add_target("a_set", Arc::new(blobs(2).matrix().clone()), 3)
            .add_method(Arc::new(FoscMethod::default()));

        // Cold profile: equal (zero) benefit, name order decides.
        let cold = warmup.plan(&CostProfile::default());
        assert_eq!(cold.len(), 2);
        assert_eq!(cold[0].dataset, "a_set");
        assert!(cold.iter().all(|e| e.benefit_nanos == 0.0));

        // A learned profile prices the sweep: benefit = |params| × Σ kinds.
        let profile = CostProfile {
            entries: vec![
                CostProfileEntry {
                    kind: "pairwise_distances",
                    ewma_nanos: 1_000.0,
                    samples: 4,
                },
                CostProfileEntry {
                    kind: "density_hierarchy",
                    ewma_nanos: 500.0,
                    samples: 4,
                },
            ],
        };
        let priced = warmup.plan(&profile);
        let expected = priced[0].params.len() as f64 * 1_500.0;
        assert_eq!(priced[0].benefit_nanos, expected);
    }

    #[test]
    fn max_jobs_truncates_the_lowest_ranked_tail() {
        let ds = blobs(9);
        let engine = Engine::new(1);
        let report = CacheWarmup::new()
            .add_dataset(&ds)
            .add_method(Arc::new(FoscMethod::default()))
            .with_max_jobs(3)
            .run(&engine);
        assert_eq!(report.jobs, 3);
        assert_eq!(report.entries[0].params.len(), 3);
    }

    #[test]
    fn warmup_never_changes_selection_results() {
        let ds = blobs(11);
        let labeled = sample_labeled_subset(ds.labels(), 0.3, 2, &mut SeededRng::new(5));
        let side = SideInformation::Labels(labeled);
        let params = [3usize, 6, 9];
        let config = CvcpConfig::default();

        let select = |engine: &Engine| {
            select_model_with(
                engine,
                &FoscMethod::default(),
                ds.matrix(),
                &side,
                &params,
                &config,
                &mut SeededRng::new(42),
            )
        };

        let cold_engine = Engine::new(2);
        let cold = select(&cold_engine);

        let warm_engine = Engine::new(2);
        CacheWarmup::new()
            .add_dataset(&ds)
            .add_method(Arc::new(FoscMethod::default()))
            .run(&warm_engine);
        let warm = select(&warm_engine);

        assert_eq!(cold.best_param, warm.best_param);
        assert_eq!(cold.scores(), warm.scores());
    }
}
