//! # cvcp-core
//!
//! **CVCP — Cross-Validation for finding Clustering Parameters**, the model
//! selection framework for semi-supervised clustering proposed by
//! Pourrajabi, Moulavi, Campello, Zimek, Sander & Goebel (EDBT 2014).
//!
//! The framework (Section 3 of the paper):
//!
//! 1. the quality of a parameter value `p` is estimated by n-fold
//!    cross-validation over the available side information, treating the
//!    produced partition as a classifier over held-out constraints and
//!    scoring it with the average F-measure of the must-link / cannot-link
//!    classes ([`crossval`]);
//! 2. step 1 is repeated for every candidate parameter value;
//! 3. the parameter with the highest score is selected ([`selection`]);
//! 4. the algorithm is re-run with the selected parameter using *all*
//!    available side information.
//!
//! The crate also implements the two baselines the paper compares against —
//! the *expected* quality when guessing the parameter and Silhouette-based
//! selection ([`baselines`]) — and the repeated-trial experiment harness
//! that regenerates the paper's tables and figures ([`experiment`]).
//!
//! ```
//! use cvcp_core::prelude::*;
//! use cvcp_data::synthetic::separated_blobs;
//! use cvcp_data::rng::SeededRng;
//! use cvcp_constraints::generate::sample_labeled_subset;
//! use cvcp_constraints::SideInformation;
//!
//! let mut rng = SeededRng::new(7);
//! let ds = separated_blobs(3, 25, 4, 10.0, &mut rng);
//! let labeled = sample_labeled_subset(ds.labels(), 0.2, 2, &mut rng);
//! let side = SideInformation::Labels(labeled);
//!
//! let method = MpckMethod::default();
//! let selection = select_model(
//!     &method,
//!     ds.matrix(),
//!     &side,
//!     &[2, 3, 4, 5],
//!     &CvcpConfig::default(),
//!     &mut rng,
//! );
//! // Every candidate received a bounded internal score and the selected
//! // parameter is one of the candidates.
//! assert!(selection.scores().iter().all(|s| (0.0..=1.0).contains(s)));
//! assert!([2, 3, 4, 5].contains(&selection.best_param));
//! ```

#![warn(missing_docs)]

pub mod algorithm;
pub mod baselines;
pub mod crossval;
pub mod experiment;
pub mod json;
pub mod plan;
pub mod report;
pub mod request;
pub mod selection;
pub mod trace_export;
pub mod warmup;

pub use algorithm::{FoscMethod, MpckMethod, ParameterizedMethod, SemiSupervisedClusterer};
pub use baselines::{expected_quality, silhouette_selection, SilhouetteSelection};
pub use crossval::{evaluate_parameter, CvcpConfig, FoldScore, ParameterEvaluation};
pub use cvcp_engine::{ArtifactCache, Engine, GraphProfile, GraphTrace, Priority};
pub use experiment::{
    run_experiment, run_experiment_on, run_experiment_trialwise, summarize, ExperimentConfig,
    ExperimentSummary, SideInfoSpec, TrialOutcome,
};
pub use json::{Json, JsonParseError, ToJson};
pub use plan::{
    ExecutionPlan, ExternalStage, Granularity, PlanOptions, PlanTrial, TrialEvaluation,
};
pub use request::{
    run_selection_request, run_selection_request_traced, Algorithm, RealizedSelection,
    RequestError, RunRequestError, SelectionRequest,
};
pub use selection::{
    select_model, select_model_streaming, select_model_streaming_traced, select_model_with,
    select_model_with_granularity, CvcpSelection, SelectionCancelled, SelectionProgress,
};
pub use trace_export::{chrome_trace_json, graph_profile_json, write_chrome_trace};
pub use warmup::{CacheWarmup, WarmupEntry, WarmupReport};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::algorithm::{
        FoscMethod, MpckMethod, ParameterizedMethod, SemiSupervisedClusterer,
    };
    pub use crate::baselines::{expected_quality, silhouette_selection};
    pub use crate::crossval::{evaluate_parameter, CvcpConfig};
    pub use crate::experiment::{
        run_experiment, run_experiment_on, summarize, ExperimentConfig, SideInfoSpec,
    };
    pub use crate::selection::{select_model, select_model_with, CvcpSelection};
    pub use cvcp_engine::Engine;
}
