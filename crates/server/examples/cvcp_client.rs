//! `cvcp-client` — drives a full request round-trip against a running
//! `cvcp-server` (see the `serve` binary in `cvcp-experiments`).
//!
//! Modes:
//!
//! * `--mode select` (default): sends a model-selection request, prints the
//!   streamed progress events and the final ranked result.  With `--verify`
//!   (default on) the same request is also lowered and run **in-process**
//!   via `select_model_with`, and the two results are compared
//!   **bit-for-bit** — the end-to-end contract the CI smoke job asserts.
//! * `--mode cancel`: sends a selection request and immediately drops the
//!   connection, then polls `stats` until the server reports the request
//!   as cancelled — proving client disconnects cancel the job DAG.
//! * `--mode trace`: like `select`, but the request opts into per-job
//!   tracing (`"trace": true`) and the returned critical-path profile is
//!   printed after the ranking.  `--trace` adds the same opt-in to a
//!   plain `select`.
//! * `--mode metrics`: fetches the engine-wide metrics payload (latency
//!   histograms, per-worker counters, cache latencies, queue admission
//!   waits, last traced profile) and prints it as JSON.
//! * `--mode stats` / `--mode ping` / `--mode shutdown`: the corresponding
//!   control requests.
//!
//! Exit code 0 on success, 1 on verification/protocol failure, 2 on I/O
//! errors.
//!
//! ```text
//! cvcp-client --addr 127.0.0.1:7878 --mode select --algorithm fosc \
//!     --dataset aloi:0 --params 3,6,9,12 --labels 0.2 --folds 5 --seed 42
//! ```
//!
//! `--priority interactive|batch` picks the request's scheduling lane
//! (omitted: the server's default, normally interactive).  Batch requests
//! are overtaken by interactive ones at the server queue and inside the
//! engine's worker pool; the lane never changes results.

use cvcp_core::{Algorithm, Engine, Priority, SelectionRequest, SideInfoSpec};
use cvcp_server::{RankedSelection, Request, Response};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::{Duration, Instant};

struct Options {
    addr: String,
    mode: String,
    algorithm: Algorithm,
    dataset: String,
    params: Vec<usize>,
    side_info: SideInfoSpec,
    n_folds: usize,
    seed: u64,
    id: String,
    verify: bool,
    threads: usize,
    priority: Option<Priority>,
    trace: bool,
}

fn parse_options() -> Result<Options, String> {
    let mut opts = Options {
        addr: std::env::var("CVCP_ADDR").unwrap_or_else(|_| "127.0.0.1:7878".to_string()),
        mode: "select".to_string(),
        algorithm: Algorithm::Fosc,
        dataset: "aloi:0".to_string(),
        params: Vec::new(),
        side_info: SideInfoSpec::LabelFraction(0.2),
        n_folds: 5,
        seed: 20_140_324,
        id: String::new(),
        verify: true,
        threads: 4,
        priority: None,
        trace: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = || -> Result<&str, String> {
            i += 1;
            args.get(i)
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag {
            "--addr" => opts.addr = value()?.to_string(),
            "--mode" => opts.mode = value()?.to_string(),
            "--algorithm" => {
                let name = value()?;
                opts.algorithm = Algorithm::parse(name)
                    .ok_or_else(|| format!("unknown algorithm {name:?} (fosc|mpck)"))?;
            }
            "--dataset" => opts.dataset = value()?.to_string(),
            "--params" => {
                opts.params = value()?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.trim().parse().map_err(|_| "bad params list".to_string()))
                    .collect::<Result<_, _>>()?;
            }
            "--labels" => {
                let f: f64 = value()?.parse().map_err(|_| "bad --labels fraction")?;
                opts.side_info = SideInfoSpec::LabelFraction(f);
            }
            "--constraints" => {
                let spec = value()?;
                let (pool, sample) = spec
                    .split_once(',')
                    .ok_or("--constraints expects POOL,SAMPLE")?;
                opts.side_info = SideInfoSpec::ConstraintSample {
                    pool_fraction: pool.trim().parse().map_err(|_| "bad pool fraction")?,
                    sample_fraction: sample.trim().parse().map_err(|_| "bad sample fraction")?,
                };
            }
            "--folds" => opts.n_folds = value()?.parse().map_err(|_| "bad --folds")?,
            "--seed" => opts.seed = value()?.parse().map_err(|_| "bad --seed")?,
            "--id" => opts.id = value()?.to_string(),
            "--verify" => opts.verify = value()?.parse().map_err(|_| "bad --verify")?,
            "--trace" => opts.trace = true,
            "--threads" => opts.threads = value()?.parse().map_err(|_| "bad --threads")?,
            "--priority" => {
                let name = value()?;
                opts.priority = Some(
                    Priority::parse(name)
                        .ok_or_else(|| format!("unknown priority {name:?} (interactive|batch)"))?,
                );
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 1;
    }
    if opts.id.is_empty() {
        opts.id = format!(
            "{}-{}-{}",
            opts.algorithm.name(),
            opts.dataset.replace(':', "_"),
            opts.seed
        );
    }
    Ok(opts)
}

fn selection_request(opts: &Options) -> SelectionRequest {
    SelectionRequest {
        id: opts.id.clone(),
        dataset: opts.dataset.clone(),
        algorithm: opts.algorithm,
        params: opts.params.clone(),
        side_info: opts.side_info,
        n_folds: opts.n_folds,
        stratified: true,
        seed: opts.seed,
        priority: opts.priority,
        trace: opts.trace,
    }
}

fn send_request(addr: &str, request: &Request) -> std::io::Result<TcpStream> {
    let mut stream = TcpStream::connect(addr)?;
    let mut line = request.to_line();
    line.push('\n');
    stream.write_all(line.as_bytes())?;
    stream.flush()?;
    Ok(stream)
}

fn read_responses(stream: TcpStream, mut each: impl FnMut(Response) -> bool) -> Result<(), String> {
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line.map_err(|e| format!("read failed: {e}"))?;
        let response =
            Response::from_line(&line).map_err(|e| format!("bad response line: {}", e.message))?;
        if !each(response) {
            return Ok(());
        }
    }
    Ok(())
}

fn one_shot(addr: &str, request: &Request) -> Result<Response, String> {
    let stream = send_request(addr, request).map_err(|e| format!("connect failed: {e}"))?;
    let mut out = None;
    read_responses(stream, |r| {
        out = Some(r);
        false
    })?;
    out.ok_or_else(|| "server closed the connection without responding".to_string())
}

fn run_select(opts: &Options) -> Result<(), String> {
    let request = selection_request(opts);
    let stream = send_request(&opts.addr, &Request::Select(request.clone()))
        .map_err(|e| format!("connect failed: {e}"))?;
    let mut result: Option<RankedSelection> = None;
    let mut profile = None;
    let mut error: Option<String> = None;
    read_responses(stream, |response| match response {
        Response::Progress {
            param,
            score,
            completed,
            total,
            ..
        } => {
            println!("progress: param {param} -> {score:.6} ({completed}/{total})");
            true
        }
        Response::Result {
            selection,
            profile: p,
            ..
        } => {
            result = Some(selection);
            profile = p;
            false
        }
        Response::Error { error: e, .. } => {
            error = Some(format!("{}: {}", e.code, e.message));
            false
        }
        other => {
            error = Some(format!("unexpected response: {other:?}"));
            false
        }
    })?;
    if let Some(e) = error {
        return Err(format!("server error: {e}"));
    }
    let served = result.ok_or("connection closed before a result arrived")?;
    println!(
        "result: best {} = {} (score {:.6})",
        request.algorithm.method().parameter_name(),
        served.best_param,
        served.best_score
    );
    for entry in &served.ranking {
        println!("  ranked: param {} score {:.6}", entry.param, entry.score);
    }
    if opts.trace {
        match profile {
            Some(profile) => println!("profile: {}", profile.pretty()),
            None => return Err("traced request returned no profile".to_string()),
        }
    }
    if opts.verify {
        let realized = request
            .realize()
            .map_err(|e| format!("local lowering failed: {e}"))?;
        let local = RankedSelection::from_selection(&realized.select(&Engine::new(opts.threads)));
        verify_bit_identical(&served, &local)?;
        println!("verified: served result is bit-identical to in-process select_model_with");
    }
    Ok(())
}

/// Compares the served and the in-process selections bit-for-bit (float
/// equality via `to_bits`, so even sign/NaN payload differences would
/// fail).
fn verify_bit_identical(served: &RankedSelection, local: &RankedSelection) -> Result<(), String> {
    if served.best_param != local.best_param {
        return Err(format!(
            "best_param mismatch: served {} vs local {}",
            served.best_param, local.best_param
        ));
    }
    if served.best_score.to_bits() != local.best_score.to_bits() {
        return Err(format!(
            "best_score bits mismatch: served {} vs local {}",
            served.best_score, local.best_score
        ));
    }
    for (kind, a, b) in [
        ("ranking", &served.ranking, &local.ranking),
        ("evaluations", &served.evaluations, &local.evaluations),
    ] {
        if a.len() != b.len() {
            return Err(format!(
                "{kind} length mismatch: {} vs {}",
                a.len(),
                b.len()
            ));
        }
        for (x, y) in a.iter().zip(b) {
            if x.param != y.param || x.score.to_bits() != y.score.to_bits() {
                return Err(format!(
                    "{kind} entry mismatch: served ({}, {}) vs local ({}, {})",
                    x.param, x.score, y.param, y.score
                ));
            }
        }
    }
    Ok(())
}

fn cancelled_count(addr: &str) -> Result<u64, String> {
    match one_shot(addr, &Request::Stats)? {
        Response::Stats(stats) => Ok(stats.requests.cancelled),
        other => Err(format!("unexpected stats response: {other:?}")),
    }
}

fn run_cancel(opts: &Options) -> Result<(), String> {
    let before = cancelled_count(&opts.addr)?;
    let request = selection_request(opts);
    // Send the request and immediately drop the connection: the server's
    // disconnect watcher must cancel the request's DAG.
    {
        let stream = send_request(&opts.addr, &Request::Select(request))
            .map_err(|e| format!("connect failed: {e}"))?;
        drop(stream);
    }
    println!("request sent and connection dropped; polling stats for the cancellation…");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let now = cancelled_count(&opts.addr)?;
        if now > before {
            println!("cancelled count rose {before} -> {now}: DAG cancellation confirmed");
            return Ok(());
        }
        if Instant::now() > deadline {
            return Err(format!(
                "server never reported the cancellation (cancelled count stuck at {now})"
            ));
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

fn main() -> ExitCode {
    let mut opts = match parse_options() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("cvcp-client: {e}");
            return ExitCode::from(2);
        }
    };
    let outcome = match opts.mode.as_str() {
        "select" => run_select(&opts),
        "trace" => {
            opts.trace = true;
            run_select(&opts)
        }
        "cancel" => run_cancel(&opts),
        "metrics" => one_shot(&opts.addr, &Request::Metrics).and_then(|r| match r {
            Response::Metrics(ref metrics) => {
                println!("{}", r.to_json().pretty());
                let tasks: u64 = metrics.workers.iter().map(|w| w.tasks).sum();
                println!(
                    "engine: {} thread(s), {} pool worker(s) | {} task(s) executed, \
                     steal ratio {:.3}",
                    metrics.engine_threads, metrics.pool_workers, tasks, metrics.steal_ratio,
                );
                Ok(())
            }
            other => Err(format!("unexpected metrics response: {other:?}")),
        }),
        "stats" => one_shot(&opts.addr, &Request::Stats).map(|r| match r {
            Response::Stats(ref stats) => {
                println!("{}", r.to_json().pretty());
                println!(
                    "cache: {} shard(s), hit rate {:.1}%, {} resident entries / {} bytes",
                    stats.cache.shards,
                    stats.cache.hit_rate() * 100.0,
                    stats.cache.resident_entries,
                    stats.cache.resident_bytes,
                );
                println!(
                    "queue: {}/{} queued (interactive {}, batch {}) | {} worker(s)",
                    stats.queue_depth,
                    stats.queue_capacity,
                    stats.queue_interactive,
                    stats.queue_batch,
                    stats.workers,
                );
                for (i, s) in stats.cache_shards.iter().enumerate() {
                    println!(
                        "  shard {i}: {} hits / {} misses | {} evictions ({} B) | \
                         resident {} entries / {} B (peak {} B)",
                        s.hits,
                        s.misses,
                        s.evictions,
                        s.evicted_bytes,
                        s.resident_entries,
                        s.resident_bytes,
                        s.peak_resident_bytes,
                    );
                }
            }
            other => println!("{other:?}"),
        }),
        "ping" => one_shot(&opts.addr, &Request::Ping).and_then(|r| match r {
            Response::Pong => {
                println!("pong");
                Ok(())
            }
            other => Err(format!("unexpected ping response: {other:?}")),
        }),
        "shutdown" => one_shot(&opts.addr, &Request::Shutdown).and_then(|r| match r {
            Response::ShutdownAck => {
                println!("server acknowledged shutdown");
                Ok(())
            }
            other => Err(format!("unexpected shutdown response: {other:?}")),
        }),
        other => Err(format!("unknown mode {other:?}")),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cvcp-client: {e}");
            ExitCode::FAILURE
        }
    }
}
