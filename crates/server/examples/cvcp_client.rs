//! `cvcp-client` — drives request round-trips against a running
//! `cvcp-server` (see the `serve` binary in `cvcp-experiments`), built on
//! the persistent [`Connection`] handle from `cvcp_server::client`.
//!
//! Modes:
//!
//! * `--mode select` (default): a thin one-shot wrapper kept for backward
//!   compatibility — connects, sends one model-selection request, prints
//!   the streamed progress events and the final ranked result.  With
//!   `--verify` (default on) the same request is also lowered and run
//!   **in-process** via `select_model_with`, and the two results are
//!   compared **bit-for-bit** — the end-to-end contract the CI smoke job
//!   asserts.
//! * `--mode pipeline`: sends two selections with different seeds
//!   *pipelined on one v2 connection*, demultiplexes their interleaved
//!   responses by id, and verifies each result bit-for-bit against a
//!   fresh one-request-per-connection v1 baseline — the multiplexing
//!   probe the CI smoke job runs.
//! * `--mode bench`: load generator — `--connections N` v2 connections ×
//!   `--requests M` pipelined requests each (window-capped by the
//!   server's advertised `max_in_flight`), reporting sustained
//!   throughput and p50/p99 latency, written to
//!   `target/bench/bench_server.json`.
//! * `--mode cancel`: sends a selection request and immediately drops the
//!   connection, then polls `stats` until the server reports the request
//!   as cancelled — proving client disconnects cancel the job DAG.
//! * `--mode trace`: like `select`, but the request opts into per-job
//!   tracing (`"trace": true`) and the returned critical-path profile is
//!   printed after the ranking.  `--trace` adds the same opt-in to a
//!   plain `select`.
//! * `--mode metrics`: fetches the engine-wide metrics payload (latency
//!   histograms, per-worker counters, cache latencies, queue admission
//!   waits, last traced profile) and prints it as JSON.
//! * `--mode stats` / `--mode ping` / `--mode shutdown`: the
//!   corresponding control requests (plain v1 one-shots).
//!
//! Exit code 0 on success, 1 on verification/protocol failure, 2 on I/O
//! errors.
//!
//! ```text
//! cvcp-client --addr 127.0.0.1:7878 --mode select --algorithm fosc \
//!     --dataset aloi:0 --params 3,6,9,12 --labels 0.2 --folds 5 --seed 42
//! ```
//!
//! `--priority interactive|batch` picks the request's scheduling lane
//! (omitted: the server's default, normally interactive).  Batch requests
//! are overtaken by interactive ones at the server queue and inside the
//! engine's worker pool; the lane never changes results.

use cvcp_core::json::{Json, ToJson};
use cvcp_core::{Algorithm, Engine, Priority, SelectionRequest, SideInfoSpec};
use cvcp_server::client::{one_shot, Connection};
use cvcp_server::{RankedSelection, Request, Response};
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::{Duration, Instant};

struct Options {
    addr: String,
    mode: String,
    algorithm: Algorithm,
    dataset: String,
    params: Vec<usize>,
    side_info: SideInfoSpec,
    n_folds: usize,
    seed: u64,
    id: String,
    verify: bool,
    threads: usize,
    priority: Option<Priority>,
    trace: bool,
    connections: usize,
    requests: usize,
}

fn parse_options() -> Result<Options, String> {
    let mut opts = Options {
        addr: std::env::var("CVCP_ADDR").unwrap_or_else(|_| "127.0.0.1:7878".to_string()),
        mode: "select".to_string(),
        algorithm: Algorithm::Fosc,
        dataset: "aloi:0".to_string(),
        params: Vec::new(),
        side_info: SideInfoSpec::LabelFraction(0.2),
        n_folds: 5,
        seed: 20_140_324,
        id: String::new(),
        verify: true,
        threads: 4,
        priority: None,
        trace: false,
        connections: 2,
        requests: 4,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = || -> Result<&str, String> {
            i += 1;
            args.get(i)
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag {
            "--addr" => opts.addr = value()?.to_string(),
            "--mode" => opts.mode = value()?.to_string(),
            "--algorithm" => {
                let name = value()?;
                opts.algorithm = Algorithm::parse(name)
                    .ok_or_else(|| format!("unknown algorithm {name:?} (fosc|mpck)"))?;
            }
            "--dataset" => opts.dataset = value()?.to_string(),
            "--params" => {
                opts.params = value()?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.trim().parse().map_err(|_| "bad params list".to_string()))
                    .collect::<Result<_, _>>()?;
            }
            "--labels" => {
                let f: f64 = value()?.parse().map_err(|_| "bad --labels fraction")?;
                opts.side_info = SideInfoSpec::LabelFraction(f);
            }
            "--constraints" => {
                let spec = value()?;
                let (pool, sample) = spec
                    .split_once(',')
                    .ok_or("--constraints expects POOL,SAMPLE")?;
                opts.side_info = SideInfoSpec::ConstraintSample {
                    pool_fraction: pool.trim().parse().map_err(|_| "bad pool fraction")?,
                    sample_fraction: sample.trim().parse().map_err(|_| "bad sample fraction")?,
                };
            }
            "--folds" => opts.n_folds = value()?.parse().map_err(|_| "bad --folds")?,
            "--seed" => opts.seed = value()?.parse().map_err(|_| "bad --seed")?,
            "--id" => opts.id = value()?.to_string(),
            "--verify" => opts.verify = value()?.parse().map_err(|_| "bad --verify")?,
            "--trace" => opts.trace = true,
            "--threads" => opts.threads = value()?.parse().map_err(|_| "bad --threads")?,
            "--priority" => {
                let name = value()?;
                opts.priority = Some(
                    Priority::parse(name)
                        .ok_or_else(|| format!("unknown priority {name:?} (interactive|batch)"))?,
                );
            }
            "--connections" => {
                opts.connections = value()?.parse().map_err(|_| "bad --connections")?
            }
            "--requests" => opts.requests = value()?.parse().map_err(|_| "bad --requests")?,
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 1;
    }
    if opts.id.is_empty() {
        opts.id = format!(
            "{}-{}-{}",
            opts.algorithm.name(),
            opts.dataset.replace(':', "_"),
            opts.seed
        );
    }
    Ok(opts)
}

fn selection_request(opts: &Options) -> SelectionRequest {
    SelectionRequest {
        id: opts.id.clone(),
        dataset: opts.dataset.clone(),
        algorithm: opts.algorithm,
        params: opts.params.clone(),
        side_info: opts.side_info,
        n_folds: opts.n_folds,
        stratified: true,
        seed: opts.seed,
        priority: opts.priority,
        trace: opts.trace,
    }
}

/// Pumps events on `conn` until `id`'s terminal response, printing
/// progress when `print` is set.  Events of other ids are ignored (the
/// one-shot paths have none).
fn stream_selection(
    conn: &mut Connection,
    id: &str,
    print: bool,
) -> Result<(RankedSelection, Option<Json>), String> {
    loop {
        match conn.next_event().map_err(|e| format!("read failed: {e}"))? {
            Response::Progress {
                id: event_id,
                param,
                score,
                completed,
                total,
            } if event_id == id && print => {
                println!("progress: param {param} -> {score:.6} ({completed}/{total})");
            }
            Response::Result {
                id: event_id,
                selection,
                profile,
            } if event_id == id => return Ok((selection, profile)),
            Response::Error {
                id: event_id,
                error,
            } if event_id.as_deref() == Some(id) || event_id.is_none() => {
                return Err(format!("server error: {}: {}", error.code, error.message));
            }
            _ => {}
        }
    }
}

/// Runs one selection on a fresh v1 connection — the
/// one-request-per-connection baseline the pipeline mode verifies
/// against.
fn v1_baseline(addr: &str, request: &SelectionRequest) -> Result<RankedSelection, String> {
    let mut conn = Connection::connect_v1(addr).map_err(|e| format!("connect failed: {e}"))?;
    let id = conn
        .send(request)
        .map_err(|e| format!("send failed: {e}"))?;
    stream_selection(&mut conn, &id, false).map(|(selection, _)| selection)
}

fn run_select(opts: &Options) -> Result<(), String> {
    let request = selection_request(opts);
    let mut conn = Connection::connect(&opts.addr).map_err(|e| format!("connect failed: {e}"))?;
    let id = conn
        .send(&request)
        .map_err(|e| format!("send failed: {e}"))?;
    let (served, profile) = stream_selection(&mut conn, &id, true)?;
    println!(
        "result: best {} = {} (score {:.6})",
        request.algorithm.method().parameter_name(),
        served.best_param,
        served.best_score
    );
    for entry in &served.ranking {
        println!("  ranked: param {} score {:.6}", entry.param, entry.score);
    }
    if opts.trace {
        match profile {
            Some(profile) => println!("profile: {}", profile.pretty()),
            None => return Err("traced request returned no profile".to_string()),
        }
    }
    if opts.verify {
        let realized = request
            .realize()
            .map_err(|e| format!("local lowering failed: {e}"))?;
        let local = RankedSelection::from_selection(&realized.select(&Engine::new(opts.threads)));
        verify_bit_identical(&served, &local)?;
        println!("verified: served result is bit-identical to in-process select_model_with");
    }
    Ok(())
}

/// Two selections pipelined on one v2 connection, each verified
/// bit-for-bit against its own one-connection-per-request v1 baseline.
fn run_pipeline(opts: &Options) -> Result<(), String> {
    let mut first = selection_request(opts);
    first.id = "pipe-a".to_string();
    let mut second = selection_request(opts);
    second.id = "pipe-b".to_string();
    // A different seed gives the second request a genuinely different
    // answer stream, so crossed wires could not go unnoticed.
    second.seed = opts.seed.wrapping_add(1);

    let mut conn = Connection::connect(&opts.addr).map_err(|e| format!("connect failed: {e}"))?;
    println!(
        "negotiated v{} (max_in_flight {}, max_frame_bytes {})",
        conn.version(),
        conn.max_in_flight(),
        conn.max_frame_bytes()
    );
    conn.send(&first).map_err(|e| format!("send failed: {e}"))?;
    conn.send(&second)
        .map_err(|e| format!("send failed: {e}"))?;

    let mut results: BTreeMap<String, RankedSelection> = BTreeMap::new();
    let mut progress: BTreeMap<String, usize> = BTreeMap::new();
    while results.len() < 2 {
        match conn.next_event().map_err(|e| format!("read failed: {e}"))? {
            Response::Progress { id, .. } => *progress.entry(id).or_insert(0) += 1,
            Response::Result { id, selection, .. } => {
                println!("result for {id}: best param {}", selection.best_param);
                results.insert(id, selection);
            }
            Response::Error { id, error } => {
                return Err(format!(
                    "server error for {id:?}: {}: {}",
                    error.code, error.message
                ));
            }
            other => return Err(format!("unexpected response: {other:?}")),
        }
    }
    for (request, label) in [(&first, "pipe-a"), (&second, "pipe-b")] {
        let served = results
            .get(label)
            .ok_or_else(|| format!("no result for {label}"))?;
        let baseline = v1_baseline(&opts.addr, request)?;
        verify_bit_identical(served, &baseline)?;
    }
    println!(
        "verified: both pipelined results are bit-identical to per-connection v1 baselines \
         (progress events: {:?})",
        progress
    );
    Ok(())
}

/// Latency/throughput summary of one bench run.
struct BenchOutcome {
    latencies_ms: Vec<f64>,
    errors: usize,
}

/// Drives `--requests` selections over one v2 connection, windowed by
/// the server's advertised in-flight cap, recording per-request
/// send-to-terminal latency.
fn bench_connection(
    addr: &str,
    base: &SelectionRequest,
    conn_index: usize,
    requests: usize,
) -> Result<BenchOutcome, String> {
    let mut conn = Connection::connect(addr).map_err(|e| format!("connect failed: {e}"))?;
    let window = conn.max_in_flight().max(1);
    let mut outcome = BenchOutcome {
        latencies_ms: Vec::with_capacity(requests),
        errors: 0,
    };
    let mut sent: BTreeMap<String, Instant> = BTreeMap::new();
    let mut next = 0usize;
    while next < requests || !sent.is_empty() {
        while next < requests && sent.len() < window {
            let mut request = base.clone();
            request.id = format!("bench-c{conn_index}-r{next}");
            let started = Instant::now();
            let id = conn
                .send(&request)
                .map_err(|e| format!("send failed: {e}"))?;
            sent.insert(id, started);
            next += 1;
        }
        match conn.next_event().map_err(|e| format!("read failed: {e}"))? {
            Response::Result { id, .. } => {
                if let Some(started) = sent.remove(&id) {
                    outcome
                        .latencies_ms
                        .push(started.elapsed().as_secs_f64() * 1e3);
                }
            }
            Response::Error { id, error } => {
                outcome.errors += 1;
                match id.and_then(|id| sent.remove(&id)) {
                    Some(_) => {}
                    // An uncorrelated error leaves the window stuck;
                    // treat it as fatal for the run.
                    None => {
                        return Err(format!(
                            "uncorrelated server error: {}: {}",
                            error.code, error.message
                        ))
                    }
                }
            }
            _ => {}
        }
    }
    Ok(outcome)
}

fn percentile_ms(sorted: &[f64], fraction: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * fraction).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// `--mode bench`: N connections × M pipelined requests, sustained
/// throughput + latency percentiles, written to
/// `target/bench/bench_server.json`.
fn run_bench(opts: &Options) -> Result<(), String> {
    let mut base = selection_request(opts);
    base.trace = false;
    if base.params.is_empty() {
        base.params = vec![3, 6];
    }
    let started = Instant::now();
    let handles: Vec<_> = (0..opts.connections.max(1))
        .map(|conn_index| {
            let addr = opts.addr.clone();
            let base = base.clone();
            let requests = opts.requests.max(1);
            std::thread::spawn(move || bench_connection(&addr, &base, conn_index, requests))
        })
        .collect();
    let mut latencies: Vec<f64> = Vec::new();
    let mut errors = 0usize;
    for handle in handles {
        let outcome = handle.join().map_err(|_| "bench thread panicked")??;
        latencies.extend(outcome.latencies_ms);
        errors += outcome.errors;
    }
    let wall_s = started.elapsed().as_secs_f64();
    let total = opts.connections.max(1) * opts.requests.max(1);
    let completed = latencies.len();
    let throughput = if wall_s > 0.0 {
        completed as f64 / wall_s
    } else {
        0.0
    };
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let mean = if completed > 0 {
        latencies.iter().sum::<f64>() / completed as f64
    } else {
        0.0
    };
    let report = Json::obj([
        ("connections", opts.connections.max(1).to_json()),
        ("requests_per_connection", opts.requests.max(1).to_json()),
        ("total_requests", total.to_json()),
        ("completed", completed.to_json()),
        ("errors", errors.to_json()),
        ("wall_s", wall_s.to_json()),
        ("throughput_rps", throughput.to_json()),
        (
            "latency_ms",
            Json::obj([
                ("mean", mean.to_json()),
                ("p50", percentile_ms(&latencies, 0.50).to_json()),
                ("p90", percentile_ms(&latencies, 0.90).to_json()),
                ("p99", percentile_ms(&latencies, 0.99).to_json()),
                ("max", latencies.last().copied().unwrap_or(0.0).to_json()),
            ]),
        ),
    ]);
    std::fs::create_dir_all("target/bench").map_err(|e| format!("mkdir target/bench: {e}"))?;
    std::fs::write("target/bench/bench_server.json", report.pretty())
        .map_err(|e| format!("write bench_server.json: {e}"))?;
    println!("{}", report.pretty());
    println!(
        "bench: {completed}/{total} requests over {} connection(s) in {wall_s:.2}s \
         -> {throughput:.1} req/s (p50 {:.1} ms, p99 {:.1} ms)",
        opts.connections.max(1),
        percentile_ms(&latencies, 0.50),
        percentile_ms(&latencies, 0.99),
    );
    if errors > 0 {
        return Err(format!("{errors} request(s) answered with errors"));
    }
    if completed != total {
        return Err(format!("only {completed}/{total} requests completed"));
    }
    Ok(())
}

/// Compares the served and the in-process selections bit-for-bit (float
/// equality via `to_bits`, so even sign/NaN payload differences would
/// fail).
fn verify_bit_identical(served: &RankedSelection, local: &RankedSelection) -> Result<(), String> {
    if served.best_param != local.best_param {
        return Err(format!(
            "best_param mismatch: served {} vs local {}",
            served.best_param, local.best_param
        ));
    }
    if served.best_score.to_bits() != local.best_score.to_bits() {
        return Err(format!(
            "best_score bits mismatch: served {} vs local {}",
            served.best_score, local.best_score
        ));
    }
    for (kind, a, b) in [
        ("ranking", &served.ranking, &local.ranking),
        ("evaluations", &served.evaluations, &local.evaluations),
    ] {
        if a.len() != b.len() {
            return Err(format!(
                "{kind} length mismatch: {} vs {}",
                a.len(),
                b.len()
            ));
        }
        for (x, y) in a.iter().zip(b) {
            if x.param != y.param || x.score.to_bits() != y.score.to_bits() {
                return Err(format!(
                    "{kind} entry mismatch: served ({}, {}) vs local ({}, {})",
                    x.param, x.score, y.param, y.score
                ));
            }
        }
    }
    Ok(())
}

fn cancelled_count(addr: &str) -> Result<u64, String> {
    match one_shot(addr, &Request::Stats).map_err(|e| format!("stats failed: {e}"))? {
        Response::Stats(stats) => Ok(stats.requests.cancelled),
        other => Err(format!("unexpected stats response: {other:?}")),
    }
}

fn run_cancel(opts: &Options) -> Result<(), String> {
    let before = cancelled_count(&opts.addr)?;
    let request = selection_request(opts);
    // Send the request and immediately drop the connection: the server's
    // event loop must cancel the request's DAG on the disconnect.
    {
        let mut conn =
            Connection::connect_v1(&opts.addr).map_err(|e| format!("connect failed: {e}"))?;
        conn.send(&request)
            .map_err(|e| format!("send failed: {e}"))?;
    }
    println!("request sent and connection dropped; polling stats for the cancellation…");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let now = cancelled_count(&opts.addr)?;
        if now > before {
            println!("cancelled count rose {before} -> {now}: DAG cancellation confirmed");
            return Ok(());
        }
        if Instant::now() > deadline {
            return Err(format!(
                "server never reported the cancellation (cancelled count stuck at {now})"
            ));
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

fn main() -> ExitCode {
    let mut opts = match parse_options() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("cvcp-client: {e}");
            return ExitCode::from(2);
        }
    };
    let outcome = match opts.mode.as_str() {
        "select" => run_select(&opts),
        "pipeline" => run_pipeline(&opts),
        "bench" => run_bench(&opts),
        "trace" => {
            opts.trace = true;
            run_select(&opts)
        }
        "cancel" => run_cancel(&opts),
        "metrics" => one_shot(&opts.addr, &Request::Metrics)
            .map_err(|e| format!("metrics failed: {e}"))
            .and_then(|r| match r {
                Response::Metrics(ref metrics) => {
                    println!("{}", r.to_json().pretty());
                    let tasks: u64 = metrics.workers.iter().map(|w| w.tasks).sum();
                    println!(
                        "engine: {} thread(s), {} pool worker(s) | {} task(s) executed, \
                         steal ratio {:.3}",
                        metrics.engine_threads, metrics.pool_workers, tasks, metrics.steal_ratio,
                    );
                    Ok(())
                }
                other => Err(format!("unexpected metrics response: {other:?}")),
            }),
        "stats" => one_shot(&opts.addr, &Request::Stats)
            .map_err(|e| format!("stats failed: {e}"))
            .map(|r| match r {
                Response::Stats(ref stats) => {
                    println!("{}", r.to_json().pretty());
                    println!(
                        "cache: {} shard(s), hit rate {:.1}%, {} resident entries / {} bytes",
                        stats.cache.shards,
                        stats.cache.hit_rate() * 100.0,
                        stats.cache.resident_entries,
                        stats.cache.resident_bytes,
                    );
                    println!(
                        "queue: {}/{} queued (interactive {}, batch {}) | {} worker(s)",
                        stats.queue_depth,
                        stats.queue_capacity,
                        stats.queue_interactive,
                        stats.queue_batch,
                        stats.workers,
                    );
                    println!(
                        "connections: {} open ({} idle, {} active) | {} request(s) in flight",
                        stats.connections.open,
                        stats.connections.idle,
                        stats.connections.active,
                        stats.connections.in_flight_requests,
                    );
                    for (i, s) in stats.cache_shards.iter().enumerate() {
                        let slice =
                            |v: Option<usize>| v.map_or("unbounded".to_string(), |n| n.to_string());
                        println!(
                            "  shard {i}: {} hits / {} misses | {} evictions ({} B) | \
                             resident {} entries / {} B (peak {} B) | \
                             budget slice {} B / {} entries | {} admission rejection(s)",
                            s.hits,
                            s.misses,
                            s.evictions,
                            s.evicted_bytes,
                            s.resident_entries,
                            s.resident_bytes,
                            s.peak_resident_bytes,
                            slice(s.byte_slice),
                            slice(s.entry_slice),
                            s.admission_rejections,
                        );
                    }
                }
                other => println!("{other:?}"),
            }),
        "ping" => one_shot(&opts.addr, &Request::Ping)
            .map_err(|e| format!("ping failed: {e}"))
            .and_then(|r| match r {
                Response::Pong => {
                    println!("pong");
                    Ok(())
                }
                other => Err(format!("unexpected ping response: {other:?}")),
            }),
        "shutdown" => one_shot(&opts.addr, &Request::Shutdown)
            .map_err(|e| format!("shutdown failed: {e}"))
            .and_then(|r| match r {
                Response::ShutdownAck => {
                    println!("server acknowledged shutdown");
                    Ok(())
                }
                other => Err(format!("unexpected shutdown response: {other:?}")),
            }),
        other => Err(format!("unknown mode {other:?}")),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cvcp-client: {e}");
            ExitCode::FAILURE
        }
    }
}
