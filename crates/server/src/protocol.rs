//! The newline-delimited JSON wire protocol.
//!
//! Every message — in either direction — is one JSON object on one line,
//! terminated by `\n`.  Requests carry a `"type"` discriminator
//! (`select` / `stats` / `ping` / `shutdown`); responses mirror it
//! (`progress` / `result` / `error` / `stats` / `pong` / `shutdown_ack`).
//! The document model and parser live in [`cvcp_core::json`]; this module
//! only maps between [`Json`] trees and typed messages, in both
//! directions, so the server, the client example and the property tests
//! all share one codec.

use cvcp_core::json::{Json, ToJson};
use cvcp_core::{Algorithm, CvcpSelection, SelectionRequest, SideInfoSpec};
use cvcp_engine::{CacheStats, Priority, ShardStats};

/// A structured protocol-level failure, sent to clients as an `error`
/// response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Machine-readable error class (`parse_error`, `invalid_request`,
    /// `unknown_type`, `queue_full`, `shutting_down`, `cancelled`,
    /// `internal`).
    pub code: String,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// Builds an error with the given code and message.
    pub fn new(code: &str, message: impl Into<String>) -> Self {
        Self {
            code: code.to_string(),
            message: message.into(),
        }
    }
}

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run a model selection and stream its progress and result.
    Select(SelectionRequest),
    /// Report cache / queue / request statistics.
    Stats,
    /// Liveness probe.
    Ping,
    /// Gracefully shut the server down.
    Shutdown,
}

impl Request {
    /// Parses one request line.  Only *structural* validity is checked
    /// here (well-formed JSON, known type, fields of the right shape);
    /// semantic validation — does the dataset exist, are the fractions in
    /// range — happens in [`SelectionRequest::validate`] on the server.
    pub fn from_line(line: &str) -> Result<Request, WireError> {
        let doc = Json::parse(line.trim())
            .map_err(|e| WireError::new("parse_error", format!("malformed JSON: {e}")))?;
        let kind = doc
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| WireError::new("invalid_request", "missing string field \"type\""))?;
        match kind {
            "select" => Ok(Request::Select(selection_request_from_json(&doc)?)),
            "stats" => Ok(Request::Stats),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(WireError::new(
                "unknown_type",
                format!("unknown request type {other:?}"),
            )),
        }
    }

    /// Serialises the request to its JSON document.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Select(req) => selection_request_to_json(req),
            Request::Stats => Json::obj([("type", "stats".to_json())]),
            Request::Ping => Json::obj([("type", "ping".to_json())]),
            Request::Shutdown => Json::obj([("type", "shutdown".to_json())]),
        }
    }

    /// Serialises the request as one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        self.to_json().compact()
    }
}

fn require<'a>(doc: &'a Json, field: &str) -> Result<&'a Json, WireError> {
    doc.get(field)
        .ok_or_else(|| WireError::new("invalid_request", format!("missing field {field:?}")))
}

fn require_str(doc: &Json, field: &str) -> Result<String, WireError> {
    require(doc, field)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| {
            WireError::new(
                "invalid_request",
                format!("field {field:?} must be a string"),
            )
        })
}

fn require_f64(doc: &Json, field: &str) -> Result<f64, WireError> {
    require(doc, field)?.as_f64().ok_or_else(|| {
        WireError::new(
            "invalid_request",
            format!("field {field:?} must be a number"),
        )
    })
}

fn optional_usize(doc: &Json, field: &str, default: usize) -> Result<usize, WireError> {
    match doc.get(field) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => v.as_usize().ok_or_else(|| {
            WireError::new(
                "invalid_request",
                format!("field {field:?} must be a non-negative integer"),
            )
        }),
    }
}

fn optional_u64(doc: &Json, field: &str, default: u64) -> Result<u64, WireError> {
    match doc.get(field) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => v.as_u64().ok_or_else(|| {
            WireError::new(
                "invalid_request",
                format!("field {field:?} must be a non-negative integer"),
            )
        }),
    }
}

fn optional_bool(doc: &Json, field: &str, default: bool) -> Result<bool, WireError> {
    match doc.get(field) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => v.as_bool().ok_or_else(|| {
            WireError::new(
                "invalid_request",
                format!("field {field:?} must be a boolean"),
            )
        }),
    }
}

fn selection_request_from_json(doc: &Json) -> Result<SelectionRequest, WireError> {
    let algorithm_name = require_str(doc, "algorithm")?;
    let algorithm = Algorithm::parse(&algorithm_name).ok_or_else(|| {
        WireError::new(
            "invalid_request",
            format!("unknown algorithm {algorithm_name:?} (expected \"fosc\" or \"mpck\")"),
        )
    })?;
    let params = match doc.get("params") {
        None | Some(Json::Null) => Vec::new(),
        Some(v) => {
            let items = v.as_arr().ok_or_else(|| {
                WireError::new("invalid_request", "field \"params\" must be an array")
            })?;
            items
                .iter()
                .map(|p| {
                    p.as_usize().ok_or_else(|| {
                        WireError::new(
                            "invalid_request",
                            "field \"params\" must contain non-negative integers",
                        )
                    })
                })
                .collect::<Result<Vec<_>, _>>()?
        }
    };
    // The optional scheduling lane: absent (or null) means "let the
    // server apply its configured default" — interactive unless
    // overridden via `CVCP_DEFAULT_PRIORITY`.
    let priority = match doc.get("priority") {
        None | Some(Json::Null) => None,
        Some(v) => {
            let name = v.as_str().ok_or_else(|| {
                WireError::new("invalid_request", "field \"priority\" must be a string")
            })?;
            Some(Priority::parse(name).ok_or_else(|| {
                WireError::new(
                    "invalid_request",
                    format!("unknown priority {name:?} (expected \"interactive\" or \"batch\")"),
                )
            })?)
        }
    };
    Ok(SelectionRequest {
        id: match doc.get("id") {
            None | Some(Json::Null) => String::new(),
            Some(v) => v.as_str().map(str::to_string).ok_or_else(|| {
                WireError::new("invalid_request", "field \"id\" must be a string")
            })?,
        },
        dataset: require_str(doc, "dataset")?,
        algorithm,
        params,
        side_info: side_info_from_json(require(doc, "side_info")?)?,
        n_folds: optional_usize(doc, "n_folds", 5)?,
        stratified: optional_bool(doc, "stratified", true)?,
        seed: optional_u64(doc, "seed", 0)?,
        priority,
    })
}

fn selection_request_to_json(req: &SelectionRequest) -> Json {
    let mut fields = vec![
        ("type", "select".to_json()),
        ("id", req.id.to_json()),
        ("dataset", req.dataset.to_json()),
        ("algorithm", req.algorithm.name().to_json()),
        ("params", req.params.to_json()),
        ("side_info", side_info_to_json(&req.side_info)),
        ("n_folds", req.n_folds.to_json()),
        ("stratified", req.stratified.to_json()),
        ("seed", req.seed.to_json()),
    ];
    // Optional on the wire: only an explicitly chosen lane is written, so
    // "absent = server default" round-trips.
    if let Some(priority) = req.priority {
        fields.push(("priority", priority.name().to_json()));
    }
    Json::obj(fields)
}

fn side_info_to_json(spec: &SideInfoSpec) -> Json {
    match spec {
        SideInfoSpec::LabelFraction(fraction) => Json::obj([
            ("kind", "labels".to_json()),
            ("fraction", fraction.to_json()),
        ]),
        SideInfoSpec::ConstraintSample {
            pool_fraction,
            sample_fraction,
        } => Json::obj([
            ("kind", "constraints".to_json()),
            ("pool_fraction", pool_fraction.to_json()),
            ("sample_fraction", sample_fraction.to_json()),
        ]),
    }
}

fn side_info_from_json(doc: &Json) -> Result<SideInfoSpec, WireError> {
    let kind = require_str(doc, "kind")?;
    match kind.as_str() {
        "labels" => Ok(SideInfoSpec::LabelFraction(require_f64(doc, "fraction")?)),
        "constraints" => Ok(SideInfoSpec::ConstraintSample {
            pool_fraction: match doc.get("pool_fraction") {
                None | Some(Json::Null) => 0.1,
                Some(v) => v.as_f64().ok_or_else(|| {
                    WireError::new(
                        "invalid_request",
                        "field \"pool_fraction\" must be a number",
                    )
                })?,
            },
            sample_fraction: require_f64(doc, "sample_fraction")?,
        }),
        other => Err(WireError::new(
            "invalid_request",
            format!("unknown side_info kind {other:?}"),
        )),
    }
}

/// One entry of a ranked (or evaluation-ordered) score list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedEntry {
    /// The candidate parameter.
    pub param: usize,
    /// Its CVCP score.
    pub score: f64,
}

/// The final response payload of a selection request.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedSelection {
    /// The selected (highest-scoring) parameter.
    pub best_param: usize,
    /// Its score.
    pub best_score: f64,
    /// All candidates, best first (stable on ties, so the paper's
    /// first-wins argmax stays on top).
    pub ranking: Vec<RankedEntry>,
    /// All candidates in the request's evaluation order.
    pub evaluations: Vec<RankedEntry>,
}

impl RankedSelection {
    /// Ranks a [`CvcpSelection`] for the wire.
    pub fn from_selection(selection: &CvcpSelection) -> Self {
        let evaluations: Vec<RankedEntry> = selection
            .evaluations
            .iter()
            .map(|e| RankedEntry {
                param: e.param,
                score: e.score,
            })
            .collect();
        let mut ranking = evaluations.clone();
        // Stable descending sort: ties keep candidate order, matching the
        // selection's first-wins argmax.
        ranking.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        Self {
            best_param: selection.best_param,
            best_score: selection.best_score,
            ranking,
            evaluations,
        }
    }
}

/// Request / lifecycle counters of the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RequestStats {
    /// Select requests admitted to the queue.
    pub received: u64,
    /// Requests that ran to completion.
    pub completed: u64,
    /// Requests cancelled (client disconnect before or during execution).
    pub cancelled: u64,
    /// Requests rejected because the queue was full.
    pub rejected: u64,
    /// Requests that failed internally (evaluation panic).
    pub failed: u64,
}

/// The payload of a `stats` response.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// The engine's artifact-cache counters, aggregated over all shards.
    pub cache: CacheStats,
    /// Per-shard breakdown of the cache counters (one entry per shard, in
    /// shard order; `cache.shards` long).
    pub cache_shards: Vec<ShardStats>,
    /// Currently queued (pending) requests, across both priority lanes.
    pub queue_depth: usize,
    /// Currently queued requests on the interactive lane.
    pub queue_interactive: usize,
    /// Currently queued requests on the batch lane.
    pub queue_batch: usize,
    /// Configured queue capacity (shared across lanes).
    pub queue_capacity: usize,
    /// Configured worker count.
    pub workers: usize,
    /// The engine's thread count.
    pub engine_threads: usize,
    /// Request lifecycle counters.
    pub requests: RequestStats,
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// One candidate parameter finished.
    Progress {
        /// Echo of the request id.
        id: String,
        /// The finished candidate.
        param: usize,
        /// Its CVCP score.
        score: f64,
        /// Candidates finished so far.
        completed: usize,
        /// Total candidates.
        total: usize,
    },
    /// The final ranked selection.
    Result {
        /// Echo of the request id.
        id: String,
        /// The ranked payload.
        selection: RankedSelection,
    },
    /// A structured failure.
    Error {
        /// Echo of the request id, when one was parsed.
        id: Option<String>,
        /// The failure.
        error: WireError,
    },
    /// Statistics snapshot.
    Stats(StatsSnapshot),
    /// Liveness answer.
    Pong,
    /// Shutdown acknowledgement (the listener stops after sending it).
    ShutdownAck,
}

impl Response {
    /// Serialises the response to its JSON document.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Progress {
                id,
                param,
                score,
                completed,
                total,
            } => Json::obj([
                ("type", "progress".to_json()),
                ("id", id.to_json()),
                ("param", param.to_json()),
                ("score", score.to_json()),
                ("completed", completed.to_json()),
                ("total", total.to_json()),
            ]),
            Response::Result { id, selection } => Json::obj([
                ("type", "result".to_json()),
                ("id", id.to_json()),
                ("best_param", selection.best_param.to_json()),
                ("best_score", selection.best_score.to_json()),
                ("ranking", entries_to_json(&selection.ranking)),
                ("evaluations", entries_to_json(&selection.evaluations)),
            ]),
            Response::Error { id, error } => Json::obj([
                ("type", "error".to_json()),
                ("id", id.clone().to_json()),
                ("code", error.code.to_json()),
                ("message", error.message.to_json()),
            ]),
            Response::Stats(stats) => Json::obj([
                ("type", "stats".to_json()),
                (
                    "cache",
                    Json::obj([
                        ("hits", stats.cache.hits.to_json()),
                        ("misses", stats.cache.misses.to_json()),
                        ("hit_rate", stats.cache.hit_rate().to_json()),
                        ("evictions", stats.cache.evictions.to_json()),
                        ("evicted_bytes", stats.cache.evicted_bytes.to_json()),
                        ("resident_entries", stats.cache.resident_entries.to_json()),
                        ("resident_bytes", stats.cache.resident_bytes.to_json()),
                        (
                            "peak_resident_bytes",
                            stats.cache.peak_resident_bytes.to_json(),
                        ),
                        ("shards", stats.cache.shards.to_json()),
                        ("per_shard", shard_stats_to_json(&stats.cache_shards)),
                    ]),
                ),
                (
                    "queue",
                    Json::obj([
                        ("depth", stats.queue_depth.to_json()),
                        ("interactive_depth", stats.queue_interactive.to_json()),
                        ("batch_depth", stats.queue_batch.to_json()),
                        ("capacity", stats.queue_capacity.to_json()),
                        ("workers", stats.workers.to_json()),
                    ]),
                ),
                (
                    "requests",
                    Json::obj([
                        ("received", stats.requests.received.to_json()),
                        ("completed", stats.requests.completed.to_json()),
                        ("cancelled", stats.requests.cancelled.to_json()),
                        ("rejected", stats.requests.rejected.to_json()),
                        ("failed", stats.requests.failed.to_json()),
                    ]),
                ),
                (
                    "engine",
                    Json::obj([("threads", stats.engine_threads.to_json())]),
                ),
            ]),
            Response::Pong => Json::obj([("type", "pong".to_json())]),
            Response::ShutdownAck => Json::obj([("type", "shutdown_ack".to_json())]),
        }
    }

    /// Serialises the response as one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        self.to_json().compact()
    }

    /// Parses one response line (the client side of the codec).
    pub fn from_line(line: &str) -> Result<Response, WireError> {
        let doc = Json::parse(line.trim())
            .map_err(|e| WireError::new("parse_error", format!("malformed JSON: {e}")))?;
        let kind = doc
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| WireError::new("invalid_request", "missing string field \"type\""))?;
        match kind {
            "progress" => Ok(Response::Progress {
                id: require_str(&doc, "id")?,
                param: require_usize(&doc, "param")?,
                score: require_f64(&doc, "score")?,
                completed: require_usize(&doc, "completed")?,
                total: require_usize(&doc, "total")?,
            }),
            "result" => Ok(Response::Result {
                id: require_str(&doc, "id")?,
                selection: RankedSelection {
                    best_param: require_usize(&doc, "best_param")?,
                    best_score: require_f64(&doc, "best_score")?,
                    ranking: entries_from_json(require(&doc, "ranking")?)?,
                    evaluations: entries_from_json(require(&doc, "evaluations")?)?,
                },
            }),
            "error" => Ok(Response::Error {
                id: match doc.get("id") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(v.as_str().map(str::to_string).ok_or_else(|| {
                        WireError::new("invalid_request", "field \"id\" must be a string")
                    })?),
                },
                error: WireError {
                    code: require_str(&doc, "code")?,
                    message: require_str(&doc, "message")?,
                },
            }),
            "stats" => {
                let cache = require(&doc, "cache")?;
                let queue = require(&doc, "queue")?;
                let requests = require(&doc, "requests")?;
                let engine = require(&doc, "engine")?;
                Ok(Response::Stats(StatsSnapshot {
                    cache: CacheStats {
                        hits: require_u64(cache, "hits")?,
                        misses: require_u64(cache, "misses")?,
                        evictions: require_u64(cache, "evictions")?,
                        evicted_bytes: require_u64(cache, "evicted_bytes")?,
                        resident_entries: require_usize(cache, "resident_entries")?,
                        resident_bytes: require_usize(cache, "resident_bytes")?,
                        peak_resident_bytes: require_usize(cache, "peak_resident_bytes")?,
                        shards: require_usize(cache, "shards")?,
                    },
                    cache_shards: shard_stats_from_json(require(cache, "per_shard")?)?,
                    queue_depth: require_usize(queue, "depth")?,
                    queue_interactive: require_usize(queue, "interactive_depth")?,
                    queue_batch: require_usize(queue, "batch_depth")?,
                    queue_capacity: require_usize(queue, "capacity")?,
                    workers: require_usize(queue, "workers")?,
                    engine_threads: require_usize(engine, "threads")?,
                    requests: RequestStats {
                        received: require_u64(requests, "received")?,
                        completed: require_u64(requests, "completed")?,
                        cancelled: require_u64(requests, "cancelled")?,
                        rejected: require_u64(requests, "rejected")?,
                        failed: require_u64(requests, "failed")?,
                    },
                }))
            }
            "pong" => Ok(Response::Pong),
            "shutdown_ack" => Ok(Response::ShutdownAck),
            other => Err(WireError::new(
                "unknown_type",
                format!("unknown response type {other:?}"),
            )),
        }
    }
}

fn require_usize(doc: &Json, field: &str) -> Result<usize, WireError> {
    require(doc, field)?.as_usize().ok_or_else(|| {
        WireError::new(
            "invalid_request",
            format!("field {field:?} must be a non-negative integer"),
        )
    })
}

fn require_u64(doc: &Json, field: &str) -> Result<u64, WireError> {
    require(doc, field)?.as_u64().ok_or_else(|| {
        WireError::new(
            "invalid_request",
            format!("field {field:?} must be a non-negative integer"),
        )
    })
}

fn shard_stats_to_json(shards: &[ShardStats]) -> Json {
    Json::Arr(
        shards
            .iter()
            .map(|s| {
                Json::obj([
                    ("hits", s.hits.to_json()),
                    ("misses", s.misses.to_json()),
                    ("evictions", s.evictions.to_json()),
                    ("evicted_bytes", s.evicted_bytes.to_json()),
                    ("resident_entries", s.resident_entries.to_json()),
                    ("resident_bytes", s.resident_bytes.to_json()),
                    ("peak_resident_bytes", s.peak_resident_bytes.to_json()),
                ])
            })
            .collect(),
    )
}

fn shard_stats_from_json(doc: &Json) -> Result<Vec<ShardStats>, WireError> {
    let items = doc
        .as_arr()
        .ok_or_else(|| WireError::new("invalid_request", "field \"per_shard\" must be an array"))?;
    items
        .iter()
        .map(|item| {
            Ok(ShardStats {
                hits: require_u64(item, "hits")?,
                misses: require_u64(item, "misses")?,
                evictions: require_u64(item, "evictions")?,
                evicted_bytes: require_u64(item, "evicted_bytes")?,
                resident_entries: require_usize(item, "resident_entries")?,
                resident_bytes: require_usize(item, "resident_bytes")?,
                peak_resident_bytes: require_usize(item, "peak_resident_bytes")?,
            })
        })
        .collect()
}

fn entries_to_json(entries: &[RankedEntry]) -> Json {
    Json::Arr(
        entries
            .iter()
            .map(|e| Json::obj([("param", e.param.to_json()), ("score", e.score.to_json())]))
            .collect(),
    )
}

fn entries_from_json(doc: &Json) -> Result<Vec<RankedEntry>, WireError> {
    let items = doc
        .as_arr()
        .ok_or_else(|| WireError::new("invalid_request", "ranking fields must be arrays"))?;
    items
        .iter()
        .map(|item| {
            Ok(RankedEntry {
                param: require_usize(item, "param")?,
                score: require_f64(item, "score")?,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> SelectionRequest {
        SelectionRequest {
            id: "req-7".into(),
            dataset: "aloi:3".into(),
            algorithm: Algorithm::MpckMeans,
            params: vec![2, 3, 4],
            side_info: SideInfoSpec::ConstraintSample {
                pool_fraction: 0.1,
                sample_fraction: 0.5,
            },
            n_folds: 5,
            stratified: true,
            seed: 99,
            priority: None,
        }
    }

    #[test]
    fn select_request_round_trips() {
        let req = Request::Select(sample_request());
        let line = req.to_line();
        assert!(!line.contains('\n'));
        assert_eq!(Request::from_line(&line).unwrap(), req);
    }

    #[test]
    fn priority_round_trips_and_rejects_unknown_lanes() {
        // An explicit lane survives the round trip…
        for priority in [Priority::Interactive, Priority::Batch] {
            let mut request = sample_request();
            request.priority = Some(priority);
            let line = Request::Select(request.clone()).to_line();
            assert!(line.contains(&format!("\"priority\":\"{}\"", priority.name())));
            assert_eq!(Request::from_line(&line).unwrap(), Request::Select(request));
        }
        // …absence stays absent (server default applies)…
        let line = Request::Select(sample_request()).to_line();
        assert!(!line.contains("priority"));
        // …and unknown lane names are structured errors.
        let bad = r#"{"type":"select","dataset":"iris_like","algorithm":"fosc","side_info":{"kind":"labels","fraction":0.2},"priority":"turbo"}"#;
        let err = Request::from_line(bad).unwrap_err();
        assert_eq!(err.code, "invalid_request");
        assert!(err.message.contains("turbo"));
    }

    #[test]
    fn control_requests_round_trip() {
        for req in [Request::Stats, Request::Ping, Request::Shutdown] {
            assert_eq!(Request::from_line(&req.to_line()).unwrap(), req);
        }
    }

    #[test]
    fn missing_fields_are_invalid_not_panics() {
        for bad in [
            "{}",
            r#"{"type":"select"}"#,
            r#"{"type":"select","dataset":"iris_like"}"#,
            r#"{"type":"select","dataset":"iris_like","algorithm":"kmeans","side_info":{"kind":"labels","fraction":0.1}}"#,
            r#"{"type":"select","dataset":5,"algorithm":"fosc","side_info":{"kind":"labels","fraction":0.1}}"#,
            r#"{"type":"select","dataset":"iris_like","algorithm":"fosc","side_info":{"kind":"lab"}}"#,
            r#"{"type":"select","dataset":"iris_like","algorithm":"fosc","side_info":{"kind":"labels","fraction":0.1},"params":[1,-2]}"#,
            r#"{"type":"wat"}"#,
            "not json at all",
        ] {
            let err = Request::from_line(bad).unwrap_err();
            assert!(
                ["parse_error", "invalid_request", "unknown_type"].contains(&err.code.as_str()),
                "unexpected code {} for {bad:?}",
                err.code
            );
        }
    }

    #[test]
    fn optional_fields_take_defaults() {
        let line = r#"{"type":"select","dataset":"iris_like","algorithm":"fosc","side_info":{"kind":"labels","fraction":0.2}}"#;
        let Request::Select(req) = Request::from_line(line).unwrap() else {
            panic!("expected select");
        };
        assert_eq!(req.id, "");
        assert!(req.params.is_empty());
        assert_eq!(req.n_folds, 5);
        assert!(req.stratified);
        assert_eq!(req.seed, 0);
        assert_eq!(req.priority, None);
    }

    #[test]
    fn ranked_selection_sorts_stably_best_first() {
        let selection = CvcpSelection {
            best_param: 6,
            best_score: 0.9,
            evaluations: vec![
                cvcp_core::crossval::ParameterEvaluation {
                    param: 3,
                    score: 0.9,
                    folds: vec![],
                },
                cvcp_core::crossval::ParameterEvaluation {
                    param: 6,
                    score: 0.9,
                    folds: vec![],
                },
                cvcp_core::crossval::ParameterEvaluation {
                    param: 9,
                    score: 0.2,
                    folds: vec![],
                },
            ],
        };
        // NB: best_param above is deliberately the *second* tied candidate
        // to document that ranking order is independent of it.
        let ranked = RankedSelection::from_selection(&selection);
        let order: Vec<usize> = ranked.ranking.iter().map(|e| e.param).collect();
        assert_eq!(
            order,
            vec![3, 6, 9],
            "stable sort keeps tied candidate order"
        );
        assert_eq!(ranked.evaluations.len(), 3);
    }

    #[test]
    fn responses_round_trip() {
        let responses = [
            Response::Progress {
                id: "a".into(),
                param: 3,
                score: 0.8125,
                completed: 1,
                total: 8,
            },
            Response::Result {
                id: "a".into(),
                selection: RankedSelection {
                    best_param: 9,
                    best_score: 0.75,
                    ranking: vec![RankedEntry {
                        param: 9,
                        score: 0.75,
                    }],
                    evaluations: vec![RankedEntry {
                        param: 9,
                        score: 0.75,
                    }],
                },
            },
            Response::Error {
                id: None,
                error: WireError::new("queue_full", "32 requests already queued"),
            },
            Response::Error {
                id: Some("b".into()),
                error: WireError::new("cancelled", "client disconnected"),
            },
            Response::Stats(StatsSnapshot {
                cache: CacheStats {
                    hits: 10,
                    misses: 3,
                    evictions: 1,
                    evicted_bytes: 4096,
                    resident_entries: 2,
                    resident_bytes: 1234,
                    peak_resident_bytes: 5000,
                    shards: 2,
                },
                cache_shards: vec![
                    ShardStats {
                        hits: 6,
                        misses: 2,
                        evictions: 1,
                        evicted_bytes: 4096,
                        resident_entries: 1,
                        resident_bytes: 1000,
                        peak_resident_bytes: 3000,
                    },
                    ShardStats {
                        hits: 4,
                        misses: 1,
                        evictions: 0,
                        evicted_bytes: 0,
                        resident_entries: 1,
                        resident_bytes: 234,
                        peak_resident_bytes: 2000,
                    },
                ],
                queue_depth: 1,
                queue_interactive: 1,
                queue_batch: 0,
                queue_capacity: 32,
                workers: 2,
                engine_threads: 8,
                requests: RequestStats {
                    received: 5,
                    completed: 3,
                    cancelled: 1,
                    rejected: 1,
                    failed: 0,
                },
            }),
            Response::Pong,
            Response::ShutdownAck,
        ];
        for response in responses {
            let line = response.to_line();
            assert!(!line.contains('\n'));
            assert_eq!(Response::from_line(&line).unwrap(), response, "{line}");
        }
    }
}
