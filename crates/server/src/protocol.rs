//! The newline-delimited JSON wire protocol (v1 and v2).
//!
//! Every message — in either direction — is one JSON object on one line,
//! terminated by `\n`.  Requests carry a `"type"` discriminator
//! (`select` / `stats` / `metrics` / `ping` / `shutdown`); responses
//! mirror it (`progress` / `result` / `error` / `stats` / `metrics` /
//! `pong` / `shutdown_ack` / `hello_ack`).
//! The document model and parser live in [`cvcp_core::json`]; this module
//! only maps between [`Json`] trees and typed messages, in both
//! directions, so the server, the client example and the property tests
//! all share one codec.
//!
//! ## Version negotiation
//!
//! A connection's first line decides its protocol version.  A client that
//! opens with `{"hello":{"version":N}}` negotiates explicitly: the server
//! answers with a `hello_ack` carrying the **granted** version
//! (`min(N, 2)`, i.e. the highest version both sides speak) plus the
//! connection limits (`max_in_flight`, `max_frame_bytes`).  A first line
//! that is an ordinary request implies version 1 — exactly the protocol
//! existing clients speak, unchanged.
//!
//! ## Compatibility matrix
//!
//! | first client line                  | granted | connection semantics |
//! |------------------------------------|---------|----------------------|
//! | any request (no `hello`)           | v1      | one request per connection; the server closes the connection after the terminal response; further client bytes are ignored |
//! | `{"hello":{"version":1}}`          | v1      | `hello_ack` with `"version":1`, then v1 semantics for the one following request |
//! | `{"hello":{"version":2}}` (or any higher version) | v2 | persistent connection: any number of requests, pipelined and interleaved; every request must carry a client-chosen `"id"` (the server assigns `req-<n>` to an absent/empty one) and every `progress` / `result` / `error` echoes it |
//! | `{"hello":{"version":0}}` or a malformed `hello` | — | `unsupported_version` error, then the server closes the connection |
//!
//! Under v2 the connection is full-duplex: responses of different
//! requests interleave in completion order, and `progress` events of
//! concurrently running selections may alternate freely.  The `"id"` echo
//! is the only correlation mechanism — clients must not assume any
//! ordering between events of *different* ids (events of one id keep
//! their order: progress in evaluation order, terminal last).  Disconnect
//! semantics generalize from v1: closing a v2 connection cancels **all**
//! of its queued and in-flight requests.

use cvcp_core::json::{Json, ToJson};
use cvcp_core::{Algorithm, CvcpSelection, SelectionRequest, SideInfoSpec};
use cvcp_engine::obs::HistogramSnapshot;
use cvcp_engine::{CacheStats, Priority, ShardStats};

/// A structured protocol-level failure, sent to clients as an `error`
/// response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Machine-readable error class (`parse_error`, `invalid_request`,
    /// `unknown_type`, `queue_full`, `shutting_down`, `cancelled`,
    /// `internal`, `frame_too_large`, `in_flight_limit`, `duplicate_id`,
    /// `unsupported_version`, `server_busy`).
    pub code: String,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// Builds an error with the given code and message.
    pub fn new(code: &str, message: impl Into<String>) -> Self {
        Self {
            code: code.to_string(),
            message: message.into(),
        }
    }
}

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Protocol-version negotiation: `{"hello":{"version":N}}`, sent as a
    /// connection's first line.  The server grants `min(N, 2)` via
    /// [`Response::HelloAck`]; a connection that never sends a hello
    /// speaks v1 (see the module-level compatibility matrix).
    Hello {
        /// The highest protocol version the client speaks.
        version: u64,
    },
    /// Run a model selection and stream its progress and result.
    Select(SelectionRequest),
    /// Report cache / queue / request statistics.
    Stats,
    /// Report engine metrics: latency histograms, per-worker counters,
    /// cache latencies and the profile of the last traced graph.
    Metrics,
    /// Liveness probe.
    Ping,
    /// Gracefully shut the server down.
    Shutdown,
}

impl Request {
    /// Parses one request line.  Only *structural* validity is checked
    /// here (well-formed JSON, known type, fields of the right shape);
    /// semantic validation — does the dataset exist, are the fractions in
    /// range — happens in [`SelectionRequest::validate`] on the server.
    pub fn from_line(line: &str) -> Result<Request, WireError> {
        let doc = Json::parse(line.trim())
            .map_err(|e| WireError::new("parse_error", format!("malformed JSON: {e}")))?;
        // The hello opener has no "type" discriminator — `{"hello":{…}}`
        // is the whole message — so it is matched before the type switch.
        if let Some(hello) = doc.get("hello") {
            let version = hello.get("version").and_then(Json::as_u64).ok_or_else(|| {
                WireError::new(
                    "unsupported_version",
                    "hello must carry a non-negative integer \"version\"",
                )
            })?;
            return Ok(Request::Hello { version });
        }
        let kind = doc
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| WireError::new("invalid_request", "missing string field \"type\""))?;
        match kind {
            "select" => Ok(Request::Select(selection_request_from_json(&doc)?)),
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(WireError::new(
                "unknown_type",
                format!("unknown request type {other:?}"),
            )),
        }
    }

    /// Serialises the request to its JSON document.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Hello { version } => {
                Json::obj([("hello", Json::obj([("version", version.to_json())]))])
            }
            Request::Select(req) => selection_request_to_json(req),
            Request::Stats => Json::obj([("type", "stats".to_json())]),
            Request::Metrics => Json::obj([("type", "metrics".to_json())]),
            Request::Ping => Json::obj([("type", "ping".to_json())]),
            Request::Shutdown => Json::obj([("type", "shutdown".to_json())]),
        }
    }

    /// Serialises the request as one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        self.to_json().compact()
    }
}

fn require<'a>(doc: &'a Json, field: &str) -> Result<&'a Json, WireError> {
    doc.get(field)
        .ok_or_else(|| WireError::new("invalid_request", format!("missing field {field:?}")))
}

fn require_str(doc: &Json, field: &str) -> Result<String, WireError> {
    require(doc, field)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| {
            WireError::new(
                "invalid_request",
                format!("field {field:?} must be a string"),
            )
        })
}

fn require_f64(doc: &Json, field: &str) -> Result<f64, WireError> {
    require(doc, field)?.as_f64().ok_or_else(|| {
        WireError::new(
            "invalid_request",
            format!("field {field:?} must be a number"),
        )
    })
}

fn optional_usize(doc: &Json, field: &str, default: usize) -> Result<usize, WireError> {
    match doc.get(field) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => v.as_usize().ok_or_else(|| {
            WireError::new(
                "invalid_request",
                format!("field {field:?} must be a non-negative integer"),
            )
        }),
    }
}

fn optional_u64(doc: &Json, field: &str, default: u64) -> Result<u64, WireError> {
    match doc.get(field) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => v.as_u64().ok_or_else(|| {
            WireError::new(
                "invalid_request",
                format!("field {field:?} must be a non-negative integer"),
            )
        }),
    }
}

fn optional_bool(doc: &Json, field: &str, default: bool) -> Result<bool, WireError> {
    match doc.get(field) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => v.as_bool().ok_or_else(|| {
            WireError::new(
                "invalid_request",
                format!("field {field:?} must be a boolean"),
            )
        }),
    }
}

fn selection_request_from_json(doc: &Json) -> Result<SelectionRequest, WireError> {
    let algorithm_name = require_str(doc, "algorithm")?;
    let algorithm = Algorithm::parse(&algorithm_name).ok_or_else(|| {
        WireError::new(
            "invalid_request",
            format!("unknown algorithm {algorithm_name:?} (expected \"fosc\" or \"mpck\")"),
        )
    })?;
    let params = match doc.get("params") {
        None | Some(Json::Null) => Vec::new(),
        Some(v) => {
            let items = v.as_arr().ok_or_else(|| {
                WireError::new("invalid_request", "field \"params\" must be an array")
            })?;
            items
                .iter()
                .map(|p| {
                    p.as_usize().ok_or_else(|| {
                        WireError::new(
                            "invalid_request",
                            "field \"params\" must contain non-negative integers",
                        )
                    })
                })
                .collect::<Result<Vec<_>, _>>()?
        }
    };
    // The optional scheduling lane: absent (or null) means "let the
    // server apply its configured default" — interactive unless
    // overridden via `CVCP_DEFAULT_PRIORITY`.
    let priority = match doc.get("priority") {
        None | Some(Json::Null) => None,
        Some(v) => {
            let name = v.as_str().ok_or_else(|| {
                WireError::new("invalid_request", "field \"priority\" must be a string")
            })?;
            Some(Priority::parse(name).ok_or_else(|| {
                WireError::new(
                    "invalid_request",
                    format!("unknown priority {name:?} (expected \"interactive\" or \"batch\")"),
                )
            })?)
        }
    };
    Ok(SelectionRequest {
        id: match doc.get("id") {
            None | Some(Json::Null) => String::new(),
            Some(v) => v.as_str().map(str::to_string).ok_or_else(|| {
                WireError::new("invalid_request", "field \"id\" must be a string")
            })?,
        },
        dataset: require_str(doc, "dataset")?,
        algorithm,
        params,
        side_info: side_info_from_json(require(doc, "side_info")?)?,
        n_folds: optional_usize(doc, "n_folds", 5)?,
        stratified: optional_bool(doc, "stratified", true)?,
        seed: optional_u64(doc, "seed", 0)?,
        priority,
        trace: optional_bool(doc, "trace", false)?,
    })
}

fn selection_request_to_json(req: &SelectionRequest) -> Json {
    let mut fields = vec![
        ("type", "select".to_json()),
        ("id", req.id.to_json()),
        ("dataset", req.dataset.to_json()),
        ("algorithm", req.algorithm.name().to_json()),
        ("params", req.params.to_json()),
        ("side_info", side_info_to_json(&req.side_info)),
        ("n_folds", req.n_folds.to_json()),
        ("stratified", req.stratified.to_json()),
        ("seed", req.seed.to_json()),
    ];
    // Optional on the wire: only an explicitly chosen lane is written, so
    // "absent = server default" round-trips.
    if let Some(priority) = req.priority {
        fields.push(("priority", priority.name().to_json()));
    }
    // Tracing is strictly opt-in; the default (off) is never serialised.
    if req.trace {
        fields.push(("trace", true.to_json()));
    }
    Json::obj(fields)
}

fn side_info_to_json(spec: &SideInfoSpec) -> Json {
    match spec {
        SideInfoSpec::LabelFraction(fraction) => Json::obj([
            ("kind", "labels".to_json()),
            ("fraction", fraction.to_json()),
        ]),
        SideInfoSpec::ConstraintSample {
            pool_fraction,
            sample_fraction,
        } => Json::obj([
            ("kind", "constraints".to_json()),
            ("pool_fraction", pool_fraction.to_json()),
            ("sample_fraction", sample_fraction.to_json()),
        ]),
    }
}

fn side_info_from_json(doc: &Json) -> Result<SideInfoSpec, WireError> {
    let kind = require_str(doc, "kind")?;
    match kind.as_str() {
        "labels" => Ok(SideInfoSpec::LabelFraction(require_f64(doc, "fraction")?)),
        "constraints" => Ok(SideInfoSpec::ConstraintSample {
            pool_fraction: match doc.get("pool_fraction") {
                None | Some(Json::Null) => 0.1,
                Some(v) => v.as_f64().ok_or_else(|| {
                    WireError::new(
                        "invalid_request",
                        "field \"pool_fraction\" must be a number",
                    )
                })?,
            },
            sample_fraction: require_f64(doc, "sample_fraction")?,
        }),
        other => Err(WireError::new(
            "invalid_request",
            format!("unknown side_info kind {other:?}"),
        )),
    }
}

/// One entry of a ranked (or evaluation-ordered) score list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedEntry {
    /// The candidate parameter.
    pub param: usize,
    /// Its CVCP score.
    pub score: f64,
}

/// The final response payload of a selection request.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedSelection {
    /// The selected (highest-scoring) parameter.
    pub best_param: usize,
    /// Its score.
    pub best_score: f64,
    /// All candidates, best first (stable on ties, so the paper's
    /// first-wins argmax stays on top).
    pub ranking: Vec<RankedEntry>,
    /// All candidates in the request's evaluation order.
    pub evaluations: Vec<RankedEntry>,
}

impl RankedSelection {
    /// Ranks a [`CvcpSelection`] for the wire.
    pub fn from_selection(selection: &CvcpSelection) -> Self {
        let evaluations: Vec<RankedEntry> = selection
            .evaluations
            .iter()
            .map(|e| RankedEntry {
                param: e.param,
                score: e.score,
            })
            .collect();
        let mut ranking = evaluations.clone();
        // Stable descending sort: ties keep candidate order, matching the
        // selection's first-wins argmax.
        ranking.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        Self {
            best_param: selection.best_param,
            best_score: selection.best_score,
            ranking,
            evaluations,
        }
    }
}

/// A latency distribution condensed for the wire: count and the
/// percentile ladder of a [`HistogramSnapshot`], in nanoseconds.  Full
/// bucket arrays stay server-side; the summary is what dashboards need.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// Recorded samples.
    pub count: u64,
    /// Mean of the recorded values.
    pub mean_ns: u64,
    /// Median upper bound (log-bucket resolution).
    pub p50_ns: u64,
    /// 90th-percentile upper bound.
    pub p90_ns: u64,
    /// 99th-percentile upper bound.
    pub p99_ns: u64,
    /// Exact maximum recorded value.
    pub max_ns: u64,
}

impl HistogramSummary {
    /// Condenses a snapshot.
    pub fn from_snapshot(snapshot: &HistogramSnapshot) -> Self {
        Self {
            count: snapshot.count(),
            mean_ns: snapshot.mean_nanos(),
            p50_ns: snapshot.p50(),
            p90_ns: snapshot.p90(),
            p99_ns: snapshot.p99(),
            max_ns: snapshot.max_nanos(),
        }
    }
}

fn summary_to_json(s: &HistogramSummary) -> Json {
    Json::obj([
        ("count", s.count.to_json()),
        ("mean_ns", s.mean_ns.to_json()),
        ("p50_ns", s.p50_ns.to_json()),
        ("p90_ns", s.p90_ns.to_json()),
        ("p99_ns", s.p99_ns.to_json()),
        ("max_ns", s.max_ns.to_json()),
    ])
}

fn summary_from_json(doc: &Json) -> Result<HistogramSummary, WireError> {
    Ok(HistogramSummary {
        count: require_u64(doc, "count")?,
        mean_ns: require_u64(doc, "mean_ns")?,
        p50_ns: require_u64(doc, "p50_ns")?,
        p90_ns: require_u64(doc, "p90_ns")?,
        p99_ns: require_u64(doc, "p99_ns")?,
        max_ns: require_u64(doc, "max_ns")?,
    })
}

fn summaries_to_json(summaries: &[HistogramSummary]) -> Json {
    Json::Arr(summaries.iter().map(summary_to_json).collect())
}

fn summaries_from_json(doc: &Json, field: &str) -> Result<Vec<HistogramSummary>, WireError> {
    doc.as_arr()
        .ok_or_else(|| {
            WireError::new(
                "invalid_request",
                format!("field {field:?} must be an array"),
            )
        })?
        .iter()
        .map(summary_from_json)
        .collect()
}

/// One pool worker's counters on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerMetrics {
    /// Worker index.
    pub worker: usize,
    /// Tasks executed.
    pub tasks: u64,
    /// Nanoseconds spent executing tasks.
    pub busy_ns: u64,
    /// Tasks stolen from a sibling's deque.
    pub steals: u64,
    /// Times the worker parked waiting for work.
    pub parks: u64,
}

/// Per-artifact-kind cache latency summaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KindLatencyMetrics {
    /// Artifact kind name (see `cvcp_engine::cache`).
    pub kind: String,
    /// Latency of cache hits (lookup only).
    pub get: HistogramSummary,
    /// Latency of misses (the artifact computation).
    pub compute: HistogramSummary,
}

/// The payload of a `metrics` response: engine-wide latency
/// distributions, per-worker counters, per-kind cache latencies, the
/// serving queue's admission waits, and the [`cvcp_engine::GraphProfile`]
/// of the most recent traced selection (as its JSON rendering, when one
/// exists).
///
/// Per-lane vectors are indexed by [`Priority::lane_index`]
/// (interactive first).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsPayload {
    /// The engine's thread count.
    pub engine_threads: usize,
    /// Pool workers (0 on a sequential engine — all lanes still count).
    pub pool_workers: usize,
    /// Graphs submitted per lane.
    pub graphs_submitted: Vec<u64>,
    /// Per-job run-time distribution per lane.
    pub job_run: Vec<HistogramSummary>,
    /// Submit-to-first-job-start wait per lane.
    pub graph_queue_wait: Vec<HistogramSummary>,
    /// Per-worker counters, in worker order.
    pub workers: Vec<WorkerMetrics>,
    /// Stolen tasks over executed tasks, across all workers.
    pub steal_ratio: f64,
    /// Cache get/compute latency per artifact kind, in kind order.
    pub cache_kinds: Vec<KindLatencyMetrics>,
    /// Accept-to-dequeue wait of the serving queue per lane.
    pub queue_admission_wait: Vec<HistogramSummary>,
    /// JSON rendering of the last traced graph's profile
    /// (`cvcp_core::trace_export::graph_profile_json`), if any selection
    /// ran traced since startup.
    pub last_profile: Option<Json>,
}

/// Request / lifecycle counters of the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RequestStats {
    /// Select requests admitted to the queue.
    pub received: u64,
    /// Requests that ran to completion.
    pub completed: u64,
    /// Requests cancelled (client disconnect before or during execution).
    pub cancelled: u64,
    /// Requests rejected because the queue was full.
    pub rejected: u64,
    /// Requests that failed internally (evaluation panic).
    pub failed: u64,
}

/// Point-in-time connection gauges of the serving front-end's event loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConnectionGauges {
    /// Connections currently open (v1 and v2 alike).
    pub open: usize,
    /// Open connections with no queued or running request — `open` minus
    /// [`ConnectionGauges::active`].
    pub idle: usize,
    /// Open connections with at least one request queued or running.
    pub active: usize,
    /// Requests queued or running across all connections (a v2 connection
    /// can contribute several).
    pub in_flight_requests: usize,
}

/// The payload of a `stats` response.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// The engine's artifact-cache counters, aggregated over all shards.
    pub cache: CacheStats,
    /// Per-shard breakdown of the cache counters (one entry per shard, in
    /// shard order; `cache.shards` long).
    pub cache_shards: Vec<ShardStats>,
    /// Currently queued (pending) requests, across both priority lanes.
    pub queue_depth: usize,
    /// Currently queued requests on the interactive lane.
    pub queue_interactive: usize,
    /// Currently queued requests on the batch lane.
    pub queue_batch: usize,
    /// Configured queue capacity (shared across lanes).
    pub queue_capacity: usize,
    /// Accept-to-dequeue wait distribution per lane, in
    /// [`Priority::lane_index`] order (interactive first).
    pub queue_wait: Vec<HistogramSummary>,
    /// Configured worker count.
    pub workers: usize,
    /// The engine's thread count.
    pub engine_threads: usize,
    /// Request lifecycle counters.
    pub requests: RequestStats,
    /// Connection gauges of the readiness loop (open / idle / active
    /// connections, total in-flight requests).
    pub connections: ConnectionGauges,
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// One candidate parameter finished.
    Progress {
        /// Echo of the request id.
        id: String,
        /// The finished candidate.
        param: usize,
        /// Its CVCP score.
        score: f64,
        /// Candidates finished so far.
        completed: usize,
        /// Total candidates.
        total: usize,
    },
    /// The final ranked selection.
    Result {
        /// Echo of the request id.
        id: String,
        /// The ranked payload.
        selection: RankedSelection,
        /// The traced run's profile (JSON rendering of
        /// [`cvcp_engine::GraphProfile`]), present only when the request
        /// asked for tracing (`"trace": true`).
        profile: Option<Json>,
    },
    /// A structured failure.
    Error {
        /// Echo of the request id, when one was parsed.
        id: Option<String>,
        /// The failure.
        error: WireError,
    },
    /// Statistics snapshot.
    Stats(StatsSnapshot),
    /// Engine metrics snapshot.
    Metrics(MetricsPayload),
    /// Version-negotiation answer: the granted protocol version and the
    /// connection's limits.
    HelloAck {
        /// The granted protocol version (`min(requested, 2)`).
        version: u64,
        /// Selections this connection may have queued or running at once
        /// (v2; a v1 connection carries one request by construction).
        max_in_flight: usize,
        /// Longest accepted request line, in bytes; longer frames are
        /// rejected with a `frame_too_large` error.
        max_frame_bytes: usize,
    },
    /// Liveness answer.
    Pong,
    /// Shutdown acknowledgement (the listener stops after sending it).
    ShutdownAck,
}

impl Response {
    /// Serialises the response to its JSON document.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Progress {
                id,
                param,
                score,
                completed,
                total,
            } => Json::obj([
                ("type", "progress".to_json()),
                ("id", id.to_json()),
                ("param", param.to_json()),
                ("score", score.to_json()),
                ("completed", completed.to_json()),
                ("total", total.to_json()),
            ]),
            Response::Result {
                id,
                selection,
                profile,
            } => {
                let mut fields = vec![
                    ("type", "result".to_json()),
                    ("id", id.to_json()),
                    ("best_param", selection.best_param.to_json()),
                    ("best_score", selection.best_score.to_json()),
                    ("ranking", entries_to_json(&selection.ranking)),
                    ("evaluations", entries_to_json(&selection.evaluations)),
                ];
                if let Some(profile) = profile {
                    fields.push(("profile", profile.clone()));
                }
                Json::obj(fields)
            }
            Response::Error { id, error } => Json::obj([
                ("type", "error".to_json()),
                ("id", id.clone().to_json()),
                ("code", error.code.to_json()),
                ("message", error.message.to_json()),
            ]),
            Response::Stats(stats) => Json::obj([
                ("type", "stats".to_json()),
                (
                    "cache",
                    Json::obj([
                        ("hits", stats.cache.hits.to_json()),
                        ("misses", stats.cache.misses.to_json()),
                        ("hit_rate", stats.cache.hit_rate().to_json()),
                        ("evictions", stats.cache.evictions.to_json()),
                        ("evicted_bytes", stats.cache.evicted_bytes.to_json()),
                        ("resident_entries", stats.cache.resident_entries.to_json()),
                        ("resident_bytes", stats.cache.resident_bytes.to_json()),
                        (
                            "peak_resident_bytes",
                            stats.cache.peak_resident_bytes.to_json(),
                        ),
                        ("shards", stats.cache.shards.to_json()),
                        (
                            "admission_rejections",
                            stats.cache.admission_rejections.to_json(),
                        ),
                        ("rebalances", stats.cache.rebalances.to_json()),
                        ("per_shard", shard_stats_to_json(&stats.cache_shards)),
                    ]),
                ),
                (
                    "queue",
                    Json::obj([
                        ("depth", stats.queue_depth.to_json()),
                        ("interactive_depth", stats.queue_interactive.to_json()),
                        ("batch_depth", stats.queue_batch.to_json()),
                        ("capacity", stats.queue_capacity.to_json()),
                        ("admission_wait", summaries_to_json(&stats.queue_wait)),
                        ("workers", stats.workers.to_json()),
                    ]),
                ),
                (
                    "requests",
                    Json::obj([
                        ("received", stats.requests.received.to_json()),
                        ("completed", stats.requests.completed.to_json()),
                        ("cancelled", stats.requests.cancelled.to_json()),
                        ("rejected", stats.requests.rejected.to_json()),
                        ("failed", stats.requests.failed.to_json()),
                    ]),
                ),
                (
                    "connections",
                    Json::obj([
                        ("open", stats.connections.open.to_json()),
                        ("idle", stats.connections.idle.to_json()),
                        ("active", stats.connections.active.to_json()),
                        (
                            "in_flight_requests",
                            stats.connections.in_flight_requests.to_json(),
                        ),
                    ]),
                ),
                (
                    "engine",
                    Json::obj([("threads", stats.engine_threads.to_json())]),
                ),
            ]),
            Response::Metrics(metrics) => {
                let mut engine = vec![
                    ("threads", metrics.engine_threads.to_json()),
                    ("pool_workers", metrics.pool_workers.to_json()),
                    ("graphs_submitted", metrics.graphs_submitted.to_json()),
                    ("job_run", summaries_to_json(&metrics.job_run)),
                    (
                        "graph_queue_wait",
                        summaries_to_json(&metrics.graph_queue_wait),
                    ),
                    ("steal_ratio", metrics.steal_ratio.to_json()),
                    (
                        "workers",
                        Json::Arr(
                            metrics
                                .workers
                                .iter()
                                .map(|w| {
                                    Json::obj([
                                        ("worker", w.worker.to_json()),
                                        ("tasks", w.tasks.to_json()),
                                        ("busy_ns", w.busy_ns.to_json()),
                                        ("steals", w.steals.to_json()),
                                        ("parks", w.parks.to_json()),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ];
                engine.push((
                    "cache_kinds",
                    Json::Arr(
                        metrics
                            .cache_kinds
                            .iter()
                            .map(|k| {
                                Json::obj([
                                    ("kind", k.kind.to_json()),
                                    ("get", summary_to_json(&k.get)),
                                    ("compute", summary_to_json(&k.compute)),
                                ])
                            })
                            .collect(),
                    ),
                ));
                let mut fields = vec![
                    ("type", "metrics".to_json()),
                    ("engine", Json::obj(engine)),
                    (
                        "queue",
                        Json::obj([(
                            "admission_wait",
                            summaries_to_json(&metrics.queue_admission_wait),
                        )]),
                    ),
                ];
                if let Some(profile) = &metrics.last_profile {
                    fields.push(("last_profile", profile.clone()));
                }
                Json::obj(fields)
            }
            Response::HelloAck {
                version,
                max_in_flight,
                max_frame_bytes,
            } => Json::obj([
                ("type", "hello_ack".to_json()),
                ("version", version.to_json()),
                ("max_in_flight", max_in_flight.to_json()),
                ("max_frame_bytes", max_frame_bytes.to_json()),
            ]),
            Response::Pong => Json::obj([("type", "pong".to_json())]),
            Response::ShutdownAck => Json::obj([("type", "shutdown_ack".to_json())]),
        }
    }

    /// Serialises the response as one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        self.to_json().compact()
    }

    /// Parses one response line (the client side of the codec).
    pub fn from_line(line: &str) -> Result<Response, WireError> {
        let doc = Json::parse(line.trim())
            .map_err(|e| WireError::new("parse_error", format!("malformed JSON: {e}")))?;
        let kind = doc
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| WireError::new("invalid_request", "missing string field \"type\""))?;
        match kind {
            "progress" => Ok(Response::Progress {
                id: require_str(&doc, "id")?,
                param: require_usize(&doc, "param")?,
                score: require_f64(&doc, "score")?,
                completed: require_usize(&doc, "completed")?,
                total: require_usize(&doc, "total")?,
            }),
            "result" => Ok(Response::Result {
                id: require_str(&doc, "id")?,
                selection: RankedSelection {
                    best_param: require_usize(&doc, "best_param")?,
                    best_score: require_f64(&doc, "best_score")?,
                    ranking: entries_from_json(require(&doc, "ranking")?)?,
                    evaluations: entries_from_json(require(&doc, "evaluations")?)?,
                },
                profile: match doc.get("profile") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(v.clone()),
                },
            }),
            "error" => Ok(Response::Error {
                id: match doc.get("id") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(v.as_str().map(str::to_string).ok_or_else(|| {
                        WireError::new("invalid_request", "field \"id\" must be a string")
                    })?),
                },
                error: WireError {
                    code: require_str(&doc, "code")?,
                    message: require_str(&doc, "message")?,
                },
            }),
            "stats" => {
                let cache = require(&doc, "cache")?;
                let queue = require(&doc, "queue")?;
                let requests = require(&doc, "requests")?;
                let connections = require(&doc, "connections")?;
                let engine = require(&doc, "engine")?;
                Ok(Response::Stats(StatsSnapshot {
                    cache: CacheStats {
                        hits: require_u64(cache, "hits")?,
                        misses: require_u64(cache, "misses")?,
                        evictions: require_u64(cache, "evictions")?,
                        evicted_bytes: require_u64(cache, "evicted_bytes")?,
                        resident_entries: require_usize(cache, "resident_entries")?,
                        resident_bytes: require_usize(cache, "resident_bytes")?,
                        peak_resident_bytes: require_usize(cache, "peak_resident_bytes")?,
                        shards: require_usize(cache, "shards")?,
                        admission_rejections: require_u64(cache, "admission_rejections")?,
                        rebalances: require_u64(cache, "rebalances")?,
                    },
                    cache_shards: shard_stats_from_json(require(cache, "per_shard")?)?,
                    queue_depth: require_usize(queue, "depth")?,
                    queue_interactive: require_usize(queue, "interactive_depth")?,
                    queue_batch: require_usize(queue, "batch_depth")?,
                    queue_capacity: require_usize(queue, "capacity")?,
                    queue_wait: summaries_from_json(
                        require(queue, "admission_wait")?,
                        "admission_wait",
                    )?,
                    workers: require_usize(queue, "workers")?,
                    engine_threads: require_usize(engine, "threads")?,
                    requests: RequestStats {
                        received: require_u64(requests, "received")?,
                        completed: require_u64(requests, "completed")?,
                        cancelled: require_u64(requests, "cancelled")?,
                        rejected: require_u64(requests, "rejected")?,
                        failed: require_u64(requests, "failed")?,
                    },
                    connections: ConnectionGauges {
                        open: require_usize(connections, "open")?,
                        idle: require_usize(connections, "idle")?,
                        active: require_usize(connections, "active")?,
                        in_flight_requests: require_usize(connections, "in_flight_requests")?,
                    },
                }))
            }
            "metrics" => {
                let engine = require(&doc, "engine")?;
                let queue = require(&doc, "queue")?;
                let workers = engine
                    .get("workers")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| {
                        WireError::new("invalid_request", "field \"workers\" must be an array")
                    })?
                    .iter()
                    .map(|w| {
                        Ok(WorkerMetrics {
                            worker: require_usize(w, "worker")?,
                            tasks: require_u64(w, "tasks")?,
                            busy_ns: require_u64(w, "busy_ns")?,
                            steals: require_u64(w, "steals")?,
                            parks: require_u64(w, "parks")?,
                        })
                    })
                    .collect::<Result<Vec<_>, WireError>>()?;
                let cache_kinds = engine
                    .get("cache_kinds")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| {
                        WireError::new("invalid_request", "field \"cache_kinds\" must be an array")
                    })?
                    .iter()
                    .map(|k| {
                        Ok(KindLatencyMetrics {
                            kind: require_str(k, "kind")?,
                            get: summary_from_json(require(k, "get")?)?,
                            compute: summary_from_json(require(k, "compute")?)?,
                        })
                    })
                    .collect::<Result<Vec<_>, WireError>>()?;
                let graphs_submitted = engine
                    .get("graphs_submitted")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| {
                        WireError::new(
                            "invalid_request",
                            "field \"graphs_submitted\" must be an array",
                        )
                    })?
                    .iter()
                    .map(|v| {
                        v.as_u64().ok_or_else(|| {
                            WireError::new(
                                "invalid_request",
                                "field \"graphs_submitted\" must contain integers",
                            )
                        })
                    })
                    .collect::<Result<Vec<_>, WireError>>()?;
                Ok(Response::Metrics(MetricsPayload {
                    engine_threads: require_usize(engine, "threads")?,
                    pool_workers: require_usize(engine, "pool_workers")?,
                    graphs_submitted,
                    job_run: summaries_from_json(require(engine, "job_run")?, "job_run")?,
                    graph_queue_wait: summaries_from_json(
                        require(engine, "graph_queue_wait")?,
                        "graph_queue_wait",
                    )?,
                    workers,
                    steal_ratio: require_f64(engine, "steal_ratio")?,
                    cache_kinds,
                    queue_admission_wait: summaries_from_json(
                        require(queue, "admission_wait")?,
                        "admission_wait",
                    )?,
                    last_profile: match doc.get("last_profile") {
                        None | Some(Json::Null) => None,
                        Some(v) => Some(v.clone()),
                    },
                }))
            }
            "hello_ack" => Ok(Response::HelloAck {
                version: require_u64(&doc, "version")?,
                max_in_flight: require_usize(&doc, "max_in_flight")?,
                max_frame_bytes: require_usize(&doc, "max_frame_bytes")?,
            }),
            "pong" => Ok(Response::Pong),
            "shutdown_ack" => Ok(Response::ShutdownAck),
            other => Err(WireError::new(
                "unknown_type",
                format!("unknown response type {other:?}"),
            )),
        }
    }
}

fn require_usize(doc: &Json, field: &str) -> Result<usize, WireError> {
    require(doc, field)?.as_usize().ok_or_else(|| {
        WireError::new(
            "invalid_request",
            format!("field {field:?} must be a non-negative integer"),
        )
    })
}

fn require_u64(doc: &Json, field: &str) -> Result<u64, WireError> {
    require(doc, field)?.as_u64().ok_or_else(|| {
        WireError::new(
            "invalid_request",
            format!("field {field:?} must be a non-negative integer"),
        )
    })
}

/// A field that is a non-negative integer, `null`, or absent (the latter
/// two both mean `None` — "unbounded" for cache budget slices).
fn nullable_usize(doc: &Json, field: &str) -> Result<Option<usize>, WireError> {
    match doc.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_usize().map(Some).ok_or_else(|| {
            WireError::new(
                "invalid_request",
                format!("field {field:?} must be a non-negative integer or null"),
            )
        }),
    }
}

fn shard_stats_to_json(shards: &[ShardStats]) -> Json {
    Json::Arr(
        shards
            .iter()
            .map(|s| {
                Json::obj([
                    ("hits", s.hits.to_json()),
                    ("misses", s.misses.to_json()),
                    ("evictions", s.evictions.to_json()),
                    ("evicted_bytes", s.evicted_bytes.to_json()),
                    ("resident_entries", s.resident_entries.to_json()),
                    ("resident_bytes", s.resident_bytes.to_json()),
                    ("peak_resident_bytes", s.peak_resident_bytes.to_json()),
                    ("admission_rejections", s.admission_rejections.to_json()),
                    // `null` = unbounded: the rebalancer's *current* budget
                    // slices, so adaptive shifts are visible over the wire.
                    ("byte_slice", s.byte_slice.to_json()),
                    ("entry_slice", s.entry_slice.to_json()),
                ])
            })
            .collect(),
    )
}

fn shard_stats_from_json(doc: &Json) -> Result<Vec<ShardStats>, WireError> {
    let items = doc
        .as_arr()
        .ok_or_else(|| WireError::new("invalid_request", "field \"per_shard\" must be an array"))?;
    items
        .iter()
        .map(|item| {
            Ok(ShardStats {
                hits: require_u64(item, "hits")?,
                misses: require_u64(item, "misses")?,
                evictions: require_u64(item, "evictions")?,
                evicted_bytes: require_u64(item, "evicted_bytes")?,
                resident_entries: require_usize(item, "resident_entries")?,
                resident_bytes: require_usize(item, "resident_bytes")?,
                peak_resident_bytes: require_usize(item, "peak_resident_bytes")?,
                admission_rejections: require_u64(item, "admission_rejections")?,
                byte_slice: nullable_usize(item, "byte_slice")?,
                entry_slice: nullable_usize(item, "entry_slice")?,
            })
        })
        .collect()
}

fn entries_to_json(entries: &[RankedEntry]) -> Json {
    Json::Arr(
        entries
            .iter()
            .map(|e| Json::obj([("param", e.param.to_json()), ("score", e.score.to_json())]))
            .collect(),
    )
}

fn entries_from_json(doc: &Json) -> Result<Vec<RankedEntry>, WireError> {
    let items = doc
        .as_arr()
        .ok_or_else(|| WireError::new("invalid_request", "ranking fields must be arrays"))?;
    items
        .iter()
        .map(|item| {
            Ok(RankedEntry {
                param: require_usize(item, "param")?,
                score: require_f64(item, "score")?,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> SelectionRequest {
        SelectionRequest {
            id: "req-7".into(),
            dataset: "aloi:3".into(),
            algorithm: Algorithm::MpckMeans,
            params: vec![2, 3, 4],
            side_info: SideInfoSpec::ConstraintSample {
                pool_fraction: 0.1,
                sample_fraction: 0.5,
            },
            n_folds: 5,
            stratified: true,
            seed: 99,
            priority: None,
            trace: false,
        }
    }

    #[test]
    fn select_request_round_trips() {
        let req = Request::Select(sample_request());
        let line = req.to_line();
        assert!(!line.contains('\n'));
        assert_eq!(Request::from_line(&line).unwrap(), req);
    }

    #[test]
    fn priority_round_trips_and_rejects_unknown_lanes() {
        // An explicit lane survives the round trip…
        for priority in [Priority::Interactive, Priority::Batch] {
            let mut request = sample_request();
            request.priority = Some(priority);
            let line = Request::Select(request.clone()).to_line();
            assert!(line.contains(&format!("\"priority\":\"{}\"", priority.name())));
            assert_eq!(Request::from_line(&line).unwrap(), Request::Select(request));
        }
        // …absence stays absent (server default applies)…
        let line = Request::Select(sample_request()).to_line();
        assert!(!line.contains("priority"));
        // …and unknown lane names are structured errors.
        let bad = r#"{"type":"select","dataset":"iris_like","algorithm":"fosc","side_info":{"kind":"labels","fraction":0.2},"priority":"turbo"}"#;
        let err = Request::from_line(bad).unwrap_err();
        assert_eq!(err.code, "invalid_request");
        assert!(err.message.contains("turbo"));
    }

    #[test]
    fn hello_round_trips_and_malformed_hello_is_unsupported_version() {
        // The negotiation opener survives the round trip…
        for version in [1u64, 2, 7] {
            let req = Request::Hello { version };
            let line = req.to_line();
            assert_eq!(line, format!("{{\"hello\":{{\"version\":{version}}}}}"));
            assert_eq!(Request::from_line(&line).unwrap(), req);
        }
        // …a version 0 hello parses (the server rejects it at the
        // connection layer, not the codec)…
        assert_eq!(
            Request::from_line(r#"{"hello":{"version":0}}"#).unwrap(),
            Request::Hello { version: 0 }
        );
        // …and a hello without a usable version is a structured error.
        for bad in [
            r#"{"hello":{}}"#,
            r#"{"hello":{"version":"two"}}"#,
            r#"{"hello":{"version":-1}}"#,
            r#"{"hello":true}"#,
        ] {
            let err = Request::from_line(bad).unwrap_err();
            assert_eq!(err.code, "unsupported_version", "for {bad:?}");
        }
    }

    #[test]
    fn control_requests_round_trip() {
        for req in [
            Request::Stats,
            Request::Metrics,
            Request::Ping,
            Request::Shutdown,
        ] {
            assert_eq!(Request::from_line(&req.to_line()).unwrap(), req);
        }
    }

    #[test]
    fn trace_flag_round_trips_and_defaults_off() {
        // Tracing is strictly opt-in: the default is absent on the wire…
        let line = Request::Select(sample_request()).to_line();
        assert!(!line.contains("trace"));
        // …an explicit request round-trips…
        let mut request = sample_request();
        request.trace = true;
        let line = Request::Select(request.clone()).to_line();
        assert!(line.contains("\"trace\":true"));
        assert_eq!(Request::from_line(&line).unwrap(), Request::Select(request));
        // …and non-boolean values are structured errors.
        let bad = r#"{"type":"select","dataset":"iris_like","algorithm":"fosc","side_info":{"kind":"labels","fraction":0.2},"trace":"yes"}"#;
        assert_eq!(Request::from_line(bad).unwrap_err().code, "invalid_request");
    }

    #[test]
    fn missing_fields_are_invalid_not_panics() {
        for bad in [
            "{}",
            r#"{"type":"select"}"#,
            r#"{"type":"select","dataset":"iris_like"}"#,
            r#"{"type":"select","dataset":"iris_like","algorithm":"kmeans","side_info":{"kind":"labels","fraction":0.1}}"#,
            r#"{"type":"select","dataset":5,"algorithm":"fosc","side_info":{"kind":"labels","fraction":0.1}}"#,
            r#"{"type":"select","dataset":"iris_like","algorithm":"fosc","side_info":{"kind":"lab"}}"#,
            r#"{"type":"select","dataset":"iris_like","algorithm":"fosc","side_info":{"kind":"labels","fraction":0.1},"params":[1,-2]}"#,
            r#"{"type":"wat"}"#,
            "not json at all",
        ] {
            let err = Request::from_line(bad).unwrap_err();
            assert!(
                ["parse_error", "invalid_request", "unknown_type"].contains(&err.code.as_str()),
                "unexpected code {} for {bad:?}",
                err.code
            );
        }
    }

    #[test]
    fn optional_fields_take_defaults() {
        let line = r#"{"type":"select","dataset":"iris_like","algorithm":"fosc","side_info":{"kind":"labels","fraction":0.2}}"#;
        let Request::Select(req) = Request::from_line(line).unwrap() else {
            panic!("expected select");
        };
        assert_eq!(req.id, "");
        assert!(req.params.is_empty());
        assert_eq!(req.n_folds, 5);
        assert!(req.stratified);
        assert_eq!(req.seed, 0);
        assert_eq!(req.priority, None);
    }

    #[test]
    fn ranked_selection_sorts_stably_best_first() {
        let selection = CvcpSelection {
            best_param: 6,
            best_score: 0.9,
            evaluations: vec![
                cvcp_core::crossval::ParameterEvaluation {
                    param: 3,
                    score: 0.9,
                    folds: vec![],
                },
                cvcp_core::crossval::ParameterEvaluation {
                    param: 6,
                    score: 0.9,
                    folds: vec![],
                },
                cvcp_core::crossval::ParameterEvaluation {
                    param: 9,
                    score: 0.2,
                    folds: vec![],
                },
            ],
        };
        // NB: best_param above is deliberately the *second* tied candidate
        // to document that ranking order is independent of it.
        let ranked = RankedSelection::from_selection(&selection);
        let order: Vec<usize> = ranked.ranking.iter().map(|e| e.param).collect();
        assert_eq!(
            order,
            vec![3, 6, 9],
            "stable sort keeps tied candidate order"
        );
        assert_eq!(ranked.evaluations.len(), 3);
    }

    #[test]
    fn responses_round_trip() {
        let responses = [
            Response::Progress {
                id: "a".into(),
                param: 3,
                score: 0.8125,
                completed: 1,
                total: 8,
            },
            Response::Result {
                id: "a".into(),
                selection: RankedSelection {
                    best_param: 9,
                    best_score: 0.75,
                    ranking: vec![RankedEntry {
                        param: 9,
                        score: 0.75,
                    }],
                    evaluations: vec![RankedEntry {
                        param: 9,
                        score: 0.75,
                    }],
                },
                profile: None,
            },
            Response::Result {
                id: "traced".into(),
                selection: RankedSelection {
                    best_param: 3,
                    best_score: 0.5,
                    ranking: vec![RankedEntry {
                        param: 3,
                        score: 0.5,
                    }],
                    evaluations: vec![RankedEntry {
                        param: 3,
                        score: 0.5,
                    }],
                },
                profile: Some(Json::obj([
                    ("graph", "traced".to_json()),
                    ("parallelism", 2.5.to_json()),
                ])),
            },
            Response::Error {
                id: None,
                error: WireError::new("queue_full", "32 requests already queued"),
            },
            Response::Error {
                id: Some("b".into()),
                error: WireError::new("cancelled", "client disconnected"),
            },
            Response::Stats(StatsSnapshot {
                cache: CacheStats {
                    hits: 10,
                    misses: 3,
                    evictions: 1,
                    evicted_bytes: 4096,
                    resident_entries: 2,
                    resident_bytes: 1234,
                    peak_resident_bytes: 5000,
                    shards: 2,
                    admission_rejections: 4,
                    rebalances: 2,
                },
                cache_shards: vec![
                    ShardStats {
                        hits: 6,
                        misses: 2,
                        evictions: 1,
                        evicted_bytes: 4096,
                        resident_entries: 1,
                        resident_bytes: 1000,
                        peak_resident_bytes: 3000,
                        admission_rejections: 4,
                        // A rebalanced slice: hotter shard holds more budget.
                        byte_slice: Some(6144),
                        entry_slice: None,
                    },
                    ShardStats {
                        hits: 4,
                        misses: 1,
                        evictions: 0,
                        evicted_bytes: 0,
                        resident_entries: 1,
                        resident_bytes: 234,
                        peak_resident_bytes: 2000,
                        admission_rejections: 0,
                        byte_slice: Some(2048),
                        entry_slice: None,
                    },
                ],
                queue_depth: 1,
                queue_interactive: 1,
                queue_batch: 0,
                queue_capacity: 32,
                queue_wait: vec![
                    HistogramSummary {
                        count: 4,
                        mean_ns: 1500,
                        p50_ns: 1023,
                        p90_ns: 4095,
                        p99_ns: 4095,
                        max_ns: 3999,
                    },
                    HistogramSummary::default(),
                ],
                workers: 2,
                engine_threads: 8,
                requests: RequestStats {
                    received: 5,
                    completed: 3,
                    cancelled: 1,
                    rejected: 1,
                    failed: 0,
                },
                connections: ConnectionGauges {
                    open: 17,
                    idle: 15,
                    active: 2,
                    in_flight_requests: 3,
                },
            }),
            Response::HelloAck {
                version: 2,
                max_in_flight: 32,
                max_frame_bytes: 1 << 20,
            },
            Response::Pong,
            Response::ShutdownAck,
        ];
        for response in responses {
            let line = response.to_line();
            assert!(!line.contains('\n'));
            assert_eq!(Response::from_line(&line).unwrap(), response, "{line}");
        }
    }

    #[test]
    fn metrics_response_round_trips() {
        let summary = HistogramSummary {
            count: 12,
            mean_ns: 2048,
            p50_ns: 2047,
            p90_ns: 8191,
            p99_ns: 8191,
            max_ns: 8000,
        };
        for last_profile in [
            None,
            Some(Json::obj([
                ("graph", "req-7".to_json()),
                ("critical_path_us", 1234.5.to_json()),
            ])),
        ] {
            let response = Response::Metrics(MetricsPayload {
                engine_threads: 4,
                pool_workers: 4,
                graphs_submitted: vec![3, 1],
                job_run: vec![summary, HistogramSummary::default()],
                graph_queue_wait: vec![summary, HistogramSummary::default()],
                workers: vec![
                    WorkerMetrics {
                        worker: 0,
                        tasks: 40,
                        busy_ns: 9_000_000,
                        steals: 3,
                        parks: 7,
                    },
                    WorkerMetrics {
                        worker: 1,
                        tasks: 38,
                        busy_ns: 8_500_000,
                        steals: 5,
                        parks: 9,
                    },
                ],
                steal_ratio: 0.1025390625,
                cache_kinds: vec![KindLatencyMetrics {
                    kind: "pairwise_distances".into(),
                    get: summary,
                    compute: HistogramSummary::default(),
                }],
                queue_admission_wait: vec![summary, HistogramSummary::default()],
                last_profile,
            });
            let line = response.to_line();
            assert!(!line.contains('\n'));
            assert_eq!(Response::from_line(&line).unwrap(), response, "{line}");
        }
    }
}
