//! The readiness-based serving loop: one thread owning every client
//! connection.
//!
//! ## Why a loop
//!
//! The previous front-end spawned one OS thread per connection plus a
//! disconnect-watcher thread per in-flight request: idle clients cost
//! threads, and the ROADMAP's serving ambitions die at the thread table
//! long before the engine saturates.  This module replaces that with a
//! single event loop owning **all** connections: non-blocking sockets,
//! per-connection read/write buffers with incremental newline framing,
//! and a registration channel fed by the accept thread.  A connection
//! costs a socket and two buffers — never a thread — so thousands of
//! idle connections are free.
//!
//! ## How it wakes
//!
//! The workspace forbids `unsafe` (rule L1), which rules out
//! `epoll`/`kqueue` FFI; instead the loop multiplexes over its
//! [`LoopMsg`] channel with `recv_timeout` as the tick.  Channel traffic
//! (new connections from the accept thread, responses from workers)
//! wakes it immediately; client bytes are noticed on the next tick.  The
//! tick adapts: [`TICK_MIN`] while traffic flows, doubling to
//! [`TICK_MAX`] when polls come back empty, and a lazy [`TICK_IDLE`]
//! when no connection is open at all — an idle server burns a handful of
//! wakeups per second, not a core.
//!
//! ## Connection state machine
//!
//! A connection's first line selects its protocol version (see
//! [`crate::protocol`] for the compatibility matrix).  v1 connections
//! carry one request and close after its terminal response; v2
//! connections are persistent and pipelined — every admitted `select` is
//! keyed by a loop-assigned sequence number, workers report back through
//! an [`EventSink`] carrying that key, and the loop routes each event to
//! its connection's write buffer.  Disconnect (EOF, reset, write
//! failure) cancels every queued or running request of that connection
//! via its [`cvcp_engine::CancelToken`]s.
//!
//! An oversized frame (longer than [`MAX_FRAME_BYTES`] without a
//! newline) is answered with a structured `frame_too_large` error; the
//! loop then *discards* bytes up to the next newline so a v2 connection
//! survives the bad frame with its other in-flight requests intact.
//! Malformed JSON mid-pipeline likewise earns an `error` response
//! without touching the connection's other requests.
//!
//! The loop owns all per-connection state exclusively — it takes no
//! locks beyond the channel's own internals, so no lock-rank
//! registration is needed (the shared state it touches is atomics, the
//! admission queue and the existing profile mutex via
//! [`Shared::metrics`]).

use crate::protocol::{Request, Response, WireError};
use crate::server::Shared;
use cvcp_engine::obs::Gauge;
use cvcp_engine::CancelToken;
use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Longest accepted request line, in bytes; longer frames are rejected
/// with a `frame_too_large` error and discarded up to the next newline.
pub(crate) const MAX_FRAME_BYTES: usize = 1 << 20;

/// Highest wire-protocol version this server speaks (granted to any
/// client that says hello with this version or higher).
pub(crate) const PROTOCOL_VERSION: u64 = 2;

/// Poll tick while connections are actively producing work.
const TICK_MIN: Duration = Duration::from_millis(1);

/// Poll tick ceiling once consecutive polls come back empty.
const TICK_MAX: Duration = Duration::from_millis(16);

/// Poll tick with no open connections (only the channel can make work).
const TICK_IDLE: Duration = Duration::from_millis(100);

/// Read granularity per `read` call.
const READ_CHUNK: usize = 8 << 10;

/// Cap on `read` calls per connection per tick, so one fire-hose client
/// cannot starve its siblings within an iteration.
const MAX_READS_PER_TICK: usize = 32;

/// Messages multiplexed onto the loop's wakeup channel.
pub(crate) enum LoopMsg {
    /// A freshly accepted connection, handed over by the accept thread.
    Register(TcpStream),
    /// A progress or terminal response from a worker, keyed by the
    /// connection and request sequence number the loop assigned.
    Event {
        /// The owning connection's loop-assigned id.
        conn: u64,
        /// The request's loop-assigned sequence number.
        seq: u64,
        /// The response to route onto that connection (boxed: stats and
        /// metrics payloads dwarf the other variants).
        response: Box<Response>,
    },
    /// Final stop: flush what can be flushed and exit (sent after the
    /// workers have drained and joined).
    Shutdown,
}

/// A worker's handle for reporting one admitted request's responses back
/// to the event loop, which routes them to the owning connection (or
/// drops them if that connection is gone).
#[derive(Clone)]
pub(crate) struct EventSink {
    tx: mpsc::Sender<LoopMsg>,
    conn: u64,
    seq: u64,
}

impl EventSink {
    /// Sends one response toward the owning connection.  Errors (the
    /// loop has exited) are ignored — there is nobody left to tell.
    pub(crate) fn send(&self, response: Response) {
        let _ = self.tx.send(LoopMsg::Event {
            conn: self.conn,
            seq: self.seq,
            response: Box::new(response),
        });
    }
}

/// The per-connection gauges the loop maintains (wait-free atomics; read
/// by [`Shared::stats`]).
#[derive(Debug, Default)]
pub(crate) struct ConnGauges {
    /// Connections currently open.
    pub(crate) open: Gauge,
    /// Connections with at least one request queued or running.
    pub(crate) active: Gauge,
    /// Requests queued or running, across all connections.
    pub(crate) in_flight: Gauge,
}

/// One queued-or-running request of a connection.
struct InFlight {
    /// The wire id echoed on its responses (used for duplicate checks).
    id: String,
    /// Fired when the connection goes away.
    cancel: CancelToken,
}

/// One connection's entire state, owned exclusively by the loop.
struct Conn {
    stream: TcpStream,
    /// Bytes received but not yet framed into lines.
    read_buf: Vec<u8>,
    /// Bytes queued for the client; `written` of them are already sent.
    write_buf: Vec<u8>,
    written: usize,
    /// 0 until the first line decides it; then 1 or 2.
    version: u8,
    /// v1 only: the connection's one request has been dispatched, all
    /// further input is ignored (v1 clients have nothing more to say).
    v1_consumed: bool,
    /// Discarding an oversized frame: drop bytes up to the next newline.
    discarding: bool,
    /// Close once `write_buf` is fully flushed (v1 terminal response,
    /// negotiation failure, shutdown ack).
    close_after_flush: bool,
    /// Counter behind server-assigned `req-<n>` ids (v2 requests that
    /// arrive with an absent/empty id).
    auto_id: u64,
    /// Queued-or-running requests, keyed by loop sequence number.
    in_flight: BTreeMap<u64, InFlight>,
}

struct LoopState {
    shared: Arc<Shared>,
    /// Kept to mint [`EventSink`]s for admitted requests.
    tx: mpsc::Sender<LoopMsg>,
    conns: BTreeMap<u64, Conn>,
    next_conn: u64,
    next_seq: u64,
}

/// Runs the serving loop until a [`LoopMsg::Shutdown`] arrives.
pub(crate) fn event_loop(
    shared: Arc<Shared>,
    tx: mpsc::Sender<LoopMsg>,
    rx: mpsc::Receiver<LoopMsg>,
) {
    let mut state = LoopState {
        shared,
        tx,
        conns: BTreeMap::new(),
        next_conn: 0,
        next_seq: 0,
    };
    let mut tick = TICK_MIN;
    'run: loop {
        let timeout = if state.conns.is_empty() {
            TICK_IDLE
        } else {
            tick
        };
        let mut worked = false;
        match rx.recv_timeout(timeout) {
            Ok(msg) => {
                worked = true;
                if state.handle_msg(msg) {
                    break 'run;
                }
                // Drain whatever else is already queued before polling
                // sockets, so a burst of worker events is batched into
                // one write pass.
                while let Ok(msg) = rx.try_recv() {
                    if state.handle_msg(msg) {
                        break 'run;
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => break 'run,
        }
        let ids: Vec<u64> = state.conns.keys().copied().collect();
        for id in ids {
            if state.service(id) {
                worked = true;
            }
        }
        tick = if worked {
            TICK_MIN
        } else {
            TICK_MAX.min(tick * 2)
        };
    }
    state.shutdown_flush();
}

impl LoopState {
    /// Applies one channel message; `true` means "stop the loop".
    fn handle_msg(&mut self, msg: LoopMsg) -> bool {
        match msg {
            LoopMsg::Shutdown => true,
            LoopMsg::Register(stream) => {
                self.register(stream);
                false
            }
            LoopMsg::Event {
                conn,
                seq,
                response,
            } => {
                self.handle_event(conn, seq, *response);
                false
            }
        }
    }

    /// Adopts a connection from the accept thread (or refuses it with
    /// `server_busy` when the connection cap is reached).
    fn register(&mut self, stream: TcpStream) {
        if self.conns.len() >= self.shared.max_connections {
            let error = Response::Error {
                id: None,
                error: WireError::new(
                    "server_busy",
                    format!(
                        "connection limit ({}) reached; retry later",
                        self.shared.max_connections
                    ),
                ),
            };
            let mut line = error.to_line();
            line.push('\n');
            // The stream is still blocking here; bound the courtesy
            // write so a non-reading client cannot stall the loop.
            let mut stream = stream;
            let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
            let _ = stream.write_all(line.as_bytes());
            return;
        }
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        // One-line responses should not sit in Nagle's buffer.
        let _ = stream.set_nodelay(true);
        let id = self.next_conn;
        self.next_conn += 1;
        self.conns.insert(
            id,
            Conn {
                stream,
                read_buf: Vec::new(),
                write_buf: Vec::new(),
                written: 0,
                version: 0,
                v1_consumed: false,
                discarding: false,
                close_after_flush: false,
                auto_id: 0,
                in_flight: BTreeMap::new(),
            },
        );
        self.shared.gauges.open.inc();
    }

    /// Routes one worker response onto its connection (dropped when the
    /// connection disconnected in the meantime).
    fn handle_event(&mut self, conn_id: u64, seq: u64, response: Response) {
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return;
        };
        let terminal = matches!(response, Response::Result { .. } | Response::Error { .. });
        if terminal {
            if conn.in_flight.remove(&seq).is_none() {
                // Stale event for a request this connection no longer
                // tracks; nothing to route.
                return;
            }
            self.shared.gauges.in_flight.dec();
            if conn.in_flight.is_empty() {
                self.shared.gauges.active.dec();
            }
            if conn.version == 1 {
                // v1 contract: the connection closes after its one
                // request's terminal response.
                conn.close_after_flush = true;
            }
        }
        self.push_response(conn_id, &response);
    }

    /// One service pass over a connection: read, frame, dispatch, flush.
    /// Returns whether any progress was made (for tick adaptation).
    fn service(&mut self, id: u64) -> bool {
        let mut worked = false;
        let mut disconnected = false;
        if let Some(conn) = self.conns.get_mut(&id) {
            let mut chunk = [0u8; READ_CHUNK];
            for _ in 0..MAX_READS_PER_TICK {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        disconnected = true;
                        break;
                    }
                    Ok(n) => {
                        conn.read_buf.extend_from_slice(&chunk[..n]);
                        worked = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => {
                        disconnected = true;
                        break;
                    }
                }
            }
        }
        if disconnected {
            // EOF or reset: the client is gone — but frames it completed
            // before closing are still dispatched first, because a client
            // may legitimately write a request and close without waiting.
            // The disconnect then cancels whatever those frames started
            // (same semantics v1's disconnect watcher had, generalized to
            // every in-flight request).
            self.extract_frames(id);
            self.close_conn(id);
            return true;
        }
        if self.extract_frames(id) {
            worked = true;
        }
        if self.flush(id) {
            worked = true;
        }
        worked
    }

    /// Splits the read buffer into newline frames and dispatches each.
    fn extract_frames(&mut self, id: u64) -> bool {
        let mut worked = false;
        loop {
            let Some(conn) = self.conns.get_mut(&id) else {
                return worked;
            };
            if conn.close_after_flush {
                // A closing connection accepts no further input.
                conn.read_buf.clear();
                return worked;
            }
            let Some(pos) = conn.read_buf.iter().position(|&b| b == b'\n') else {
                if conn.read_buf.len() > MAX_FRAME_BYTES {
                    let first_overflow = !conn.discarding;
                    conn.read_buf.clear();
                    conn.discarding = true;
                    if first_overflow {
                        worked = true;
                        self.reject_oversized_frame(id);
                    }
                }
                return worked;
            };
            let line: Vec<u8> = conn.read_buf.drain(..=pos).collect();
            if std::mem::take(&mut conn.discarding) {
                // The tail of an already-rejected oversized frame.
                continue;
            }
            worked = true;
            if line.len() > MAX_FRAME_BYTES {
                self.reject_oversized_frame(id);
                continue;
            }
            let text = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
            self.dispatch_line(id, &text);
        }
    }

    /// Answers an oversized frame with `frame_too_large`.  A v1 (or
    /// not-yet-negotiated) connection closes — it had exactly one frame
    /// to get right; a v2 connection survives with its other in-flight
    /// requests untouched.
    fn reject_oversized_frame(&mut self, id: u64) {
        let close = match self.conns.get_mut(&id) {
            Some(conn) => {
                if conn.version == 0 {
                    conn.version = 1;
                }
                conn.version == 1
            }
            None => return,
        };
        self.push_response(
            id,
            &Response::Error {
                id: None,
                error: WireError::new(
                    "frame_too_large",
                    format!("request line exceeds {MAX_FRAME_BYTES} bytes"),
                ),
            },
        );
        if close {
            if let Some(conn) = self.conns.get_mut(&id) {
                conn.close_after_flush = true;
            }
        }
    }

    /// Parses one frame and applies the per-version state machine.
    fn dispatch_line(&mut self, id: u64, line: &str) {
        let Some(version) = self.conns.get(&id).map(|c| c.version) else {
            return;
        };
        let parsed = Request::from_line(line);
        match version {
            // The first line decides the connection's protocol version.
            0 => match parsed {
                Ok(Request::Hello { version: requested }) => {
                    let granted = requested.min(PROTOCOL_VERSION);
                    if granted == 0 {
                        self.push_response(
                            id,
                            &Response::Error {
                                id: None,
                                error: WireError::new(
                                    "unsupported_version",
                                    "protocol version 0 does not exist; \
                                     say hello with version 1 or 2",
                                ),
                            },
                        );
                        self.set_close_after_flush(id);
                        return;
                    }
                    if let Some(conn) = self.conns.get_mut(&id) {
                        conn.version = granted as u8;
                    }
                    self.push_response(
                        id,
                        &Response::HelloAck {
                            version: granted,
                            max_in_flight: self.shared.max_in_flight,
                            max_frame_bytes: MAX_FRAME_BYTES,
                        },
                    );
                }
                Err(error) if error.code == "unsupported_version" => {
                    self.push_response(id, &Response::Error { id: None, error });
                    self.set_close_after_flush(id);
                }
                // An ordinary request as the first line: v1 semantics,
                // exactly what pre-v2 clients speak.
                Ok(request) => {
                    if let Some(conn) = self.conns.get_mut(&id) {
                        conn.version = 1;
                        conn.v1_consumed = true;
                    }
                    self.dispatch_request(id, request);
                }
                Err(error) => {
                    if let Some(conn) = self.conns.get_mut(&id) {
                        conn.version = 1;
                    }
                    self.push_response(id, &Response::Error { id: None, error });
                    self.set_close_after_flush(id);
                }
            },
            1 => {
                if self.conns.get(&id).is_some_and(|c| c.v1_consumed) {
                    // v1 clients have nothing more to say after their one
                    // request; stray bytes are ignored (pre-v2 behavior).
                    return;
                }
                match parsed {
                    Ok(Request::Hello { .. }) => {
                        self.push_response(
                            id,
                            &Response::Error {
                                id: None,
                                error: WireError::new(
                                    "invalid_request",
                                    "hello must be a connection's first line",
                                ),
                            },
                        );
                        self.set_close_after_flush(id);
                    }
                    Ok(request) => {
                        if let Some(conn) = self.conns.get_mut(&id) {
                            conn.v1_consumed = true;
                        }
                        self.dispatch_request(id, request);
                    }
                    Err(error) => {
                        self.push_response(id, &Response::Error { id: None, error });
                        self.set_close_after_flush(id);
                    }
                }
            }
            // v2: persistent and pipelined.  A bad frame earns an error
            // response but never takes down the connection's other
            // in-flight requests.
            _ => match parsed {
                Ok(Request::Hello { .. }) => {
                    self.push_response(
                        id,
                        &Response::Error {
                            id: None,
                            error: WireError::new(
                                "invalid_request",
                                "hello must be a connection's first line",
                            ),
                        },
                    );
                }
                Ok(request) => self.dispatch_request(id, request),
                Err(error) => {
                    self.push_response(id, &Response::Error { id: None, error });
                }
            },
        }
    }

    /// Executes one non-hello request in the context of its connection.
    fn dispatch_request(&mut self, id: u64, request: Request) {
        match request {
            // Hellos are consumed by `dispatch_line`; one reaching here
            // would be a state-machine bug, answered defensively.
            Request::Hello { .. } => {
                self.push_response(
                    id,
                    &Response::Error {
                        id: None,
                        error: WireError::new(
                            "invalid_request",
                            "hello must be a connection's first line",
                        ),
                    },
                );
            }
            Request::Ping => {
                self.push_response(id, &Response::Pong);
                self.close_v1_after_control(id);
            }
            Request::Stats => {
                let stats = self.shared.stats();
                self.push_response(id, &Response::Stats(stats));
                self.close_v1_after_control(id);
            }
            Request::Metrics => {
                let metrics = self.shared.metrics();
                self.push_response(id, &Response::Metrics(metrics));
                self.close_v1_after_control(id);
            }
            Request::Shutdown => {
                self.push_response(id, &Response::ShutdownAck);
                self.set_close_after_flush(id);
                // Push the ack toward the client before the teardown
                // races it.
                self.flush(id);
                self.shared.initiate_shutdown();
            }
            Request::Select(request) => self.dispatch_select(id, request),
        }
    }

    /// Admits one selection: v2 id assignment and per-connection caps,
    /// then queue admission via [`Shared::admit_select`].
    fn dispatch_select(&mut self, id: u64, mut request: cvcp_core::SelectionRequest) {
        let version = match self.conns.get(&id) {
            Some(conn) => conn.version,
            None => return,
        };
        if version >= 2 {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            // v2 responses are correlated by id alone, so every request
            // gets one: the server assigns `req-<n>` when the client
            // didn't choose.
            if request.id.is_empty() {
                conn.auto_id += 1;
                request.id = format!("req-{}", conn.auto_id);
            }
            if conn.in_flight.len() >= self.shared.max_in_flight {
                let error = Response::Error {
                    id: Some(request.id),
                    error: WireError::new(
                        "in_flight_limit",
                        format!(
                            "connection already has {} requests in flight (cap {})",
                            conn.in_flight.len(),
                            self.shared.max_in_flight
                        ),
                    ),
                };
                self.push_response(id, &error);
                return;
            }
            if conn.in_flight.values().any(|f| f.id == request.id) {
                let error = Response::Error {
                    id: Some(request.id.clone()),
                    error: WireError::new(
                        "duplicate_id",
                        format!(
                            "id {:?} is already in flight on this connection",
                            request.id
                        ),
                    ),
                };
                self.push_response(id, &error);
                return;
            }
        }
        let wire_id = request.id.clone();
        let seq = self.next_seq;
        self.next_seq += 1;
        let sink = EventSink {
            tx: self.tx.clone(),
            conn: id,
            seq,
        };
        match self.shared.admit_select(request, sink) {
            Ok(cancel) => {
                let Some(conn) = self.conns.get_mut(&id) else {
                    // The connection vanished between frame and
                    // admission (cannot happen single-threaded, but a
                    // dangling request must still be cancelled).
                    cancel.cancel();
                    return;
                };
                conn.in_flight.insert(
                    seq,
                    InFlight {
                        id: wire_id,
                        cancel,
                    },
                );
                self.shared.gauges.in_flight.inc();
                if conn.in_flight.len() == 1 {
                    self.shared.gauges.active.inc();
                }
            }
            Err(response) => {
                self.push_response(id, &response);
                self.close_v1_after_control(id);
            }
        }
    }

    /// Appends one response line to a connection's write buffer.
    fn push_response(&mut self, id: u64, response: &Response) {
        if let Some(conn) = self.conns.get_mut(&id) {
            let mut line = response.to_line();
            line.push('\n');
            conn.write_buf.extend_from_slice(line.as_bytes());
        }
    }

    fn set_close_after_flush(&mut self, id: u64) {
        if let Some(conn) = self.conns.get_mut(&id) {
            conn.close_after_flush = true;
        }
    }

    /// v1 closes after any synchronously answered request (control
    /// responses and admission failures); v2 stays open.
    fn close_v1_after_control(&mut self, id: u64) {
        if let Some(conn) = self.conns.get_mut(&id) {
            if conn.version == 1 {
                conn.close_after_flush = true;
            }
        }
    }

    /// Writes as much buffered output as the socket accepts right now.
    /// Returns whether bytes moved.  Closes the connection on write
    /// failure or once a `close_after_flush` buffer drains.
    fn flush(&mut self, id: u64) -> bool {
        let mut worked = false;
        let mut dead = false;
        let mut close = false;
        if let Some(conn) = self.conns.get_mut(&id) {
            while conn.written < conn.write_buf.len() {
                match conn.stream.write(&conn.write_buf[conn.written..]) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => {
                        conn.written += n;
                        worked = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            if conn.written == conn.write_buf.len() {
                conn.write_buf.clear();
                conn.written = 0;
                close = conn.close_after_flush;
            } else if conn.written > (64 << 10) {
                // Reclaim the already-sent prefix of a large buffer.
                conn.write_buf.drain(..conn.written);
                conn.written = 0;
            }
        }
        if dead || close {
            self.close_conn(id);
        }
        worked
    }

    /// Removes a connection: cancels everything it still has in flight
    /// and settles the gauges.  Dropping the stream closes the socket.
    fn close_conn(&mut self, id: u64) {
        let Some(conn) = self.conns.remove(&id) else {
            return;
        };
        if !conn.in_flight.is_empty() {
            self.shared.gauges.active.dec();
        }
        for flight in conn.in_flight.values() {
            flight.cancel.cancel();
            self.shared.gauges.in_flight.dec();
        }
        self.shared.gauges.open.dec();
    }

    /// Final teardown: best-effort blocking flush of pending output,
    /// then every connection is closed.
    fn shutdown_flush(&mut self) {
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            if let Some(conn) = self.conns.get_mut(&id) {
                let pending = conn.written < conn.write_buf.len();
                if pending
                    && conn.stream.set_nonblocking(false).is_ok()
                    && conn
                        .stream
                        .set_write_timeout(Some(Duration::from_millis(200)))
                        .is_ok()
                {
                    let buf: Vec<u8> = conn.write_buf.split_off(conn.written);
                    conn.written = 0;
                    conn.write_buf.clear();
                    let _ = conn.stream.write_all(&buf);
                }
            }
            self.close_conn(id);
        }
    }
}
