//! The TCP front-end: accept thread, readiness event loop, bounded
//! request queue and selection workers.
//!
//! ## Thread model
//!
//! The server runs exactly `workers + 2` threads regardless of how many
//! clients are connected: one accept thread (blocking `accept`, hands
//! each stream to the loop over a channel), one readiness event loop
//! owning every connection (see [`crate::event_loop`]), and the
//! selection workers.  Connections cost buffers, not threads — the
//! property the idle-connections test pins.
//!
//! ## Connection lifecycle
//!
//! A connection's first line selects its protocol version (see
//! [`crate::protocol`] for the matrix).  v1 connections carry **one**
//! request line and its response stream, then close — unchanged from the
//! pre-v2 server.  v2 connections (negotiated via
//! `{"hello":{"version":2}}`) are persistent and pipelined: many
//! requests in flight at once, responses correlated by the echoed
//! `"id"`.  In both versions, disconnect cancels the connection's
//! queued and running requests via their [`CancelToken`]s, so the
//! engine skips every job of their DAGs that has not started yet.
//!
//! ## Admission control
//!
//! `select` requests are validated, then enqueued with
//! [`BoundedQueue::try_push_with`].  A full queue answers `queue_full`
//! *immediately* — the connection is never parked waiting for capacity —
//! so clients see back-pressure as a structured error they can retry,
//! instead of an unbounded stall.  Two more caps guard the front-end
//! itself: `max_connections` (excess connections are refused with
//! `server_busy`) and `max_in_flight` (a v2 connection pipelining past
//! its cap gets `in_flight_limit` errors).

use crate::event_loop::{event_loop, ConnGauges, EventSink, LoopMsg};
use crate::protocol::{
    ConnectionGauges, HistogramSummary, KindLatencyMetrics, MetricsPayload, RankedSelection,
    RequestStats, Response, StatsSnapshot, WireError, WorkerMetrics,
};
use crate::queue::{BoundedQueue, PushError};
use cvcp_core::json::Json;
use cvcp_core::trace_export::{graph_profile_json, write_chrome_trace};
use cvcp_core::{
    run_selection_request, run_selection_request_traced, RunRequestError, SelectionRequest,
};
use cvcp_engine::{CancelToken, Engine, GraphProfile, Priority};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7878` (`:0` picks a free port).
    pub addr: String,
    /// Maximum number of queued (admitted but not yet running) requests.
    pub queue_depth: usize,
    /// Number of selection worker threads.  `0` is accepted and means "no
    /// execution at all" — requests queue until rejected — which tests use
    /// to pin admission-control behaviour deterministically.
    pub workers: usize,
    /// The scheduling lane applied to requests that do not carry an
    /// explicit `"priority"` field (default [`Priority::Interactive`]).
    pub default_priority: Priority,
    /// When set, **every** selection runs traced and its Chrome trace
    /// file is written into this directory (`<id>.trace.json`).  `None`
    /// (the default) keeps tracing strictly per-request opt-in via the
    /// `"trace": true` wire field.
    pub trace_dir: Option<PathBuf>,
    /// Maximum simultaneously open connections; further connections are
    /// refused with a `server_busy` error (default 1024).
    pub max_connections: usize,
    /// Maximum requests one v2 connection may have queued or running at
    /// once; pipelining past the cap earns `in_flight_limit` errors
    /// (default 32).
    pub max_in_flight: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_string(),
            queue_depth: 32,
            workers: 2,
            default_priority: Priority::Interactive,
            trace_dir: None,
            max_connections: 1024,
            max_in_flight: 32,
        }
    }
}

impl ServerConfig {
    /// Reads the configuration from the environment:
    ///
    /// * `CVCP_ADDR` — listen address (default `127.0.0.1:7878`);
    /// * `CVCP_QUEUE_DEPTH` — request queue capacity (default 32);
    /// * `CVCP_SERVER_WORKERS` — selection workers (default 2);
    /// * `CVCP_DEFAULT_PRIORITY` — lane for requests without an explicit
    ///   `"priority"` field: `interactive` (default) or `batch`;
    /// * `CVCP_TRACE_DIR` — when set (non-empty), every selection runs
    ///   traced and its Chrome trace file lands in that directory;
    /// * `CVCP_MAX_CONNECTIONS` — simultaneously open connections before
    ///   `server_busy` refusals (default 1024);
    /// * `CVCP_MAX_IN_FLIGHT` — per-connection pipelined-request cap
    ///   before `in_flight_limit` errors (default 32).
    ///
    /// Unset or unparsable variables keep their defaults.
    pub fn from_env() -> Self {
        let defaults = Self::default();
        let read_usize = |var: &str, default: usize| -> usize {
            // cvcp: allow(D3, reason = "generic reader helper; the literal CVCP_* names at the call sites are checked")
            std::env::var(var)
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(default)
        };
        Self {
            addr: std::env::var("CVCP_ADDR").unwrap_or(defaults.addr),
            queue_depth: read_usize("CVCP_QUEUE_DEPTH", defaults.queue_depth),
            workers: read_usize("CVCP_SERVER_WORKERS", defaults.workers),
            default_priority: std::env::var("CVCP_DEFAULT_PRIORITY")
                .ok()
                .and_then(|v| Priority::parse(&v))
                .unwrap_or(defaults.default_priority),
            trace_dir: std::env::var("CVCP_TRACE_DIR")
                .ok()
                .filter(|v| !v.trim().is_empty())
                .map(PathBuf::from),
            max_connections: read_usize("CVCP_MAX_CONNECTIONS", defaults.max_connections),
            max_in_flight: read_usize("CVCP_MAX_IN_FLIGHT", defaults.max_in_flight),
        }
    }
}

/// An admitted request travelling from the event loop to a worker.
struct QueuedJob {
    request: SelectionRequest,
    sink: EventSink,
    cancel: CancelToken,
}

#[derive(Default)]
struct Counters {
    received: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    rejected: AtomicU64,
    failed: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> RequestStats {
        RequestStats {
            received: self.received.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
        }
    }
}

pub(crate) struct Shared {
    engine: Arc<Engine>,
    queue: BoundedQueue<QueuedJob>,
    counters: Counters,
    workers: usize,
    default_priority: Priority,
    /// Per-connection pipelining cap, enforced by the event loop.
    pub(crate) max_in_flight: usize,
    /// Open-connection cap, enforced by the event loop at registration.
    pub(crate) max_connections: usize,
    /// Connection gauges maintained by the event loop.
    pub(crate) gauges: ConnGauges,
    shutdown: AtomicBool,
    addr: SocketAddr,
    trace_dir: Option<PathBuf>,
    /// The event loop's wakeup channel; kept here to mint the final
    /// [`LoopMsg::Shutdown`] at join time.
    loop_tx: mpsc::Sender<LoopMsg>,
    /// JSON rendering of the most recent traced selection's
    /// [`GraphProfile`], served by the `metrics` endpoint.
    last_profile: Mutex<Option<Json>>,
}

impl Shared {
    pub(crate) fn stats(&self) -> StatsSnapshot {
        let (queue_interactive, queue_batch) = self.queue.lane_depths();
        let open = self.gauges.open.get();
        let active = self.gauges.active.get();
        StatsSnapshot {
            cache: self.engine.cache_stats(),
            cache_shards: self.engine.cache_shard_stats(),
            queue_depth: queue_interactive + queue_batch,
            queue_interactive,
            queue_batch,
            queue_capacity: self.queue.capacity(),
            workers: self.workers,
            engine_threads: self.engine.n_threads(),
            requests: self.counters.snapshot(),
            queue_wait: self
                .queue
                .admission_wait_snapshots()
                .iter()
                .map(HistogramSummary::from_snapshot)
                .collect(),
            connections: ConnectionGauges {
                open,
                // Gauges are updated independently; clamp so a read
                // between two updates can never report negative idleness.
                idle: open.saturating_sub(active),
                active,
                in_flight_requests: self.gauges.in_flight.get(),
            },
        }
    }

    pub(crate) fn metrics(&self) -> MetricsPayload {
        let snapshot = self.engine.metrics_snapshot();
        MetricsPayload {
            engine_threads: self.engine.n_threads(),
            pool_workers: snapshot.workers.len(),
            graphs_submitted: snapshot.graphs_submitted.clone(),
            job_run: snapshot
                .job_run
                .iter()
                .map(HistogramSummary::from_snapshot)
                .collect(),
            graph_queue_wait: snapshot
                .graph_queue_wait
                .iter()
                .map(HistogramSummary::from_snapshot)
                .collect(),
            workers: snapshot
                .workers
                .iter()
                .enumerate()
                .map(|(worker, w)| WorkerMetrics {
                    worker,
                    tasks: w.tasks,
                    busy_ns: w.busy_nanos,
                    steals: w.steals,
                    parks: w.parks,
                })
                .collect(),
            steal_ratio: snapshot.steal_ratio(),
            cache_kinds: self
                .engine
                .cache()
                .kind_latency_snapshots()
                .iter()
                .map(|k| KindLatencyMetrics {
                    kind: k.kind.to_string(),
                    get: HistogramSummary::from_snapshot(&k.get),
                    compute: HistogramSummary::from_snapshot(&k.compute),
                })
                .collect(),
            queue_admission_wait: self
                .queue
                .admission_wait_snapshots()
                .iter()
                .map(HistogramSummary::from_snapshot)
                .collect(),
            last_profile: self.last_profile.lock().expect("profile lock").clone(),
        }
    }

    /// Validates and admits one selection.  On success the job is queued
    /// with the given sink and the request's [`CancelToken`] is returned
    /// (for the event loop's in-flight table); on failure the error
    /// response to route back is returned instead.
    pub(crate) fn admit_select(
        &self,
        mut request: SelectionRequest,
        sink: EventSink,
    ) -> Result<CancelToken, Box<Response>> {
        let id = request.id.clone();
        // Reject invalid requests before they occupy a queue slot.
        if let Err(e) = request.validate() {
            return Err(Box::new(Response::Error {
                id: Some(id),
                error: WireError::new("invalid_request", e.to_string()),
            }));
        }
        // Resolve the lane at admission: an explicit request priority
        // wins, otherwise the server's configured default.  The resolved
        // lane is pinned onto the request so the engine lowering queues
        // the job DAG on the same lane the queue admitted it to.
        let priority = request.priority.unwrap_or(self.default_priority);
        request.priority = Some(priority);
        let cancel = CancelToken::new();
        let job = QueuedJob {
            request,
            sink,
            cancel: cancel.clone(),
        };
        match self.queue.try_push_with(job, priority) {
            Ok(()) => {
                self.counters.received.fetch_add(1, Ordering::Relaxed);
                Ok(cancel)
            }
            Err(PushError::Full(_)) => {
                self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                Err(Box::new(Response::Error {
                    id: Some(id),
                    error: WireError::new(
                        "queue_full",
                        format!(
                            "request queue is at capacity ({}); retry later",
                            self.queue.capacity()
                        ),
                    ),
                }))
            }
            // A closed queue means the server is going away — telling the
            // client to "retry later" (or counting it as back-pressure)
            // would be wrong on both counts.
            Err(PushError::Closed(_)) => Err(Box::new(Response::Error {
                id: Some(id),
                error: WireError::new("shutting_down", "server is shutting down"),
            })),
        }
    }

    /// Initiates shutdown: flips the flag, closes the queue (workers drain
    /// and exit) and pokes the accept loop awake with a loopback connect.
    /// A wildcard bind address (`0.0.0.0` / `::`) is not connectable on
    /// every platform, so fall back to loopback on the bound port.
    pub(crate) fn initiate_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.close();
        let timeout = Duration::from_millis(200);
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake {
                SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        if TcpStream::connect_timeout(&wake, timeout).is_err() && wake != self.addr {
            let _ = TcpStream::connect_timeout(&self.addr, timeout);
        }
    }
}

/// A running serving front-end.
///
/// Dropping the handle does **not** stop the server; call
/// [`Server::shutdown`] for a synchronous stop or [`Server::wait`] to
/// block until a client sends the `shutdown` request.
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    event: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `config.addr` and starts the accept thread, the event loop
    /// and the worker threads on the given engine.
    pub fn start(config: &ServerConfig, engine: Arc<Engine>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let (loop_tx, loop_rx) = mpsc::channel();
        let shared = Arc::new(Shared {
            engine,
            queue: BoundedQueue::new(config.queue_depth),
            counters: Counters::default(),
            workers: config.workers,
            default_priority: config.default_priority,
            max_in_flight: config.max_in_flight,
            max_connections: config.max_connections,
            gauges: ConnGauges::default(),
            shutdown: AtomicBool::new(false),
            addr,
            trace_dir: config.trace_dir.clone(),
            loop_tx: loop_tx.clone(),
            last_profile: Mutex::new(None),
        });
        let workers = (0..config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let event = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || event_loop(shared, loop_tx, loop_rx))
        };
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        Ok(Server {
            shared,
            accept: Some(accept),
            event: Some(event),
            workers,
        })
    }

    /// The bound address (useful with `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A statistics snapshot — the same payload the `stats` request
    /// returns over the wire.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats()
    }

    /// Stops the server: no new connections, queued requests are drained
    /// by the workers, then all server threads are joined.
    pub fn shutdown(mut self) {
        self.shared.initiate_shutdown();
        self.join_threads();
    }

    /// Blocks until the server shuts down (via a `shutdown` request or
    /// another handle), then joins all server threads.
    pub fn wait(mut self) {
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // Workers first: they drain the queue and may still be streaming
        // responses through the loop — only once they are done may the
        // loop flush its last buffers and exit.
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(event) = self.event.take() {
            let _ = self.shared.loop_tx.send(LoopMsg::Shutdown);
            let _ = event.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Hand the stream to the event loop; if the loop is gone
                // the server is tearing down anyway.
                if shared.loop_tx.send(LoopMsg::Register(stream)).is_err() {
                    return;
                }
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Transient accept errors (aborted handshakes, fd
                // exhaustion under a connection flood) are not fatal to
                // the listener, but must not busy-spin the accept thread
                // either — back off briefly before retrying.
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        let QueuedJob {
            request,
            sink,
            cancel,
        } = job;
        let id = request.id.clone();
        if cancel.is_cancelled() {
            shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
            sink.send(Response::Error {
                id: Some(id),
                error: WireError::new("cancelled", "client disconnected before the request ran"),
            });
            continue;
        }
        let progress_sink = sink.clone();
        let progress_id = id.clone();
        // A request is traced when the client asked for it on the wire or
        // the server is configured with a trace directory.  Tracing never
        // changes the selection itself (pinned by tests), only what is
        // recorded alongside it.
        let traced = request.trace || shared.trace_dir.is_some();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let on_progress = move |p: cvcp_core::SelectionProgress| {
                progress_sink.send(Response::Progress {
                    id: progress_id.clone(),
                    param: p.param,
                    score: p.score,
                    completed: p.completed,
                    total: p.total,
                });
            };
            if traced {
                run_selection_request_traced(
                    &shared.engine,
                    &request,
                    Some(cancel.clone()),
                    on_progress,
                )
            } else {
                run_selection_request(&shared.engine, &request, Some(cancel.clone()), on_progress)
                    .map(|selection| (selection, None))
            }
        }));
        let response = match outcome {
            Ok(Ok((selection, trace))) => {
                shared.counters.completed.fetch_add(1, Ordering::Relaxed);
                let profile = trace
                    .as_ref()
                    .map(|trace| graph_profile_json(&GraphProfile::from_trace(trace)));
                if let (Some(trace), Some(dir)) = (trace.as_ref(), shared.trace_dir.as_deref()) {
                    if let Err(e) = write_chrome_trace(trace, dir) {
                        eprintln!("cvcp-server: failed to write trace for {id}: {e}");
                    }
                }
                if let Some(profile) = profile.clone() {
                    *shared.last_profile.lock().expect("profile lock") = Some(profile);
                }
                Response::Result {
                    id,
                    selection: RankedSelection::from_selection(&selection),
                    // The profile rides on the wire only when the client
                    // opted in; a server-side trace dir alone should not
                    // change what existing clients receive.
                    profile: if request.trace { profile } else { None },
                }
            }
            Ok(Err(RunRequestError::Cancelled)) => {
                shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
                Response::Error {
                    id: Some(id),
                    error: WireError::new("cancelled", "client disconnected; selection cancelled"),
                }
            }
            Ok(Err(RunRequestError::Invalid(e))) => {
                shared.counters.failed.fetch_add(1, Ordering::Relaxed);
                Response::Error {
                    id: Some(id),
                    error: WireError::new("invalid_request", e.to_string()),
                }
            }
            Err(panic) => {
                shared.counters.failed.fetch_add(1, Ordering::Relaxed);
                let message = panic
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "selection panicked".to_string());
                Response::Error {
                    id: Some(id),
                    error: WireError::new("internal", message),
                }
            }
        };
        sink.send(response);
    }
}
