//! A bounded multi-producer / multi-consumer request queue with two
//! priority lanes.
//!
//! Admission control is the queue's whole point: [`BoundedQueue::try_push`]
//! **never blocks** — when the queue is at capacity the request is handed
//! back to the caller so the front-end can answer with a structured
//! `queue_full` error instead of stalling the accepting connection (and,
//! transitively, the client) for an unbounded time.  Consumers block in
//! [`BoundedQueue::pop`] until an item arrives or the queue is closed;
//! items still queued at close time are drained before `pop` starts
//! returning `None`.
//!
//! Priority: items are admitted to one of two lanes
//! ([`Priority::Interactive`] / [`Priority::Batch`]); `pop` always drains
//! the interactive lane first, so an interactive request admitted while
//! batch work is queued leapfrogs every batch item that has not been
//! popped yet.  The capacity bound is shared across both lanes.
//!
//! Fairness **within a lane**: admission order is the only order.  A
//! request rejected with `queue_full` and re-submitted once a slot frees
//! is served strictly before any same-lane request admitted after it —
//! there is no LIFO path or wakeup-order dependence that could starve
//! retried requests (items are handed out FIFO regardless of which
//! blocked consumer wakes first).  Across lanes the priority is strict:
//! a saturating interactive stream can starve queued batch items, which
//! is the intended trade for this workload (interactive requests are
//! short; batch fan-outs are long).

use cvcp_engine::obs::lock_rank::SERVER_QUEUE;
use cvcp_engine::obs::{HistogramSnapshot, LogHistogram, RankedCondvar, RankedMutex};
use cvcp_engine::{Priority, N_LANES};
use std::collections::VecDeque;
use std::time::Instant;

/// Why [`BoundedQueue::try_push`] handed an item back.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item was not enqueued.
    Full(T),
    /// The queue was closed; the item was not enqueued.
    Closed(T),
}

struct QueueState<T> {
    /// One FIFO per lane, indexed by [`Priority::lane_index`]
    /// (interactive-first — the engine's own lane mapping, so queue
    /// admission and pool scheduling can never disagree).  Each item
    /// carries its admission instant so `pop` can attribute the
    /// accept-to-dequeue wait to the lane it was queued on.
    lanes: [VecDeque<(Instant, T)>; N_LANES],
    closed: bool,
}

impl<T> QueueState<T> {
    fn len(&self) -> usize {
        self.lanes.iter().map(VecDeque::len).sum()
    }
}

/// A capacity-bounded two-lane queue with non-blocking admission:
/// FIFO within each lane, interactive drained first.
pub struct BoundedQueue<T> {
    /// Rank [`SERVER_QUEUE`]: the outermost lock of the workspace — held
    /// only to admit or pop a request, never across an engine call (see
    /// `cvcp_obs::lock_rank`).
    state: RankedMutex<QueueState<T>>,
    available: RankedCondvar,
    capacity: usize,
    /// Accept-to-dequeue wait per lane (always-on; a few relaxed atomic
    /// adds per item).  This is *admission* wait — time a request spent in
    /// this queue before a worker picked it up — as opposed to the
    /// engine-side queue wait the [`cvcp_engine::EngineMetrics`] track.
    admission_wait: [LogHistogram; N_LANES],
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` pending items across both
    /// lanes (0 rejects every push — useful to pin rejection behaviour in
    /// tests).
    pub fn new(capacity: usize) -> Self {
        Self {
            state: RankedMutex::new(
                &SERVER_QUEUE,
                QueueState {
                    lanes: std::array::from_fn(|_| VecDeque::new()),
                    closed: false,
                },
            ),
            available: RankedCondvar::new(),
            capacity,
            admission_wait: std::array::from_fn(|_| LogHistogram::new()),
        }
    }

    /// Accept-to-dequeue wait distributions, one [`HistogramSnapshot`] per
    /// lane in [`Priority::lane_index`] order (interactive first).
    pub fn admission_wait_snapshots(&self) -> Vec<HistogramSnapshot> {
        self.admission_wait
            .iter()
            .map(LogHistogram::snapshot)
            .collect()
    }

    /// The configured capacity (shared across lanes).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently queued items, across both lanes.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").len()
    }

    /// Queued items per lane: `(interactive, batch)`.
    pub fn lane_depths(&self) -> (usize, usize) {
        let state = self.state.lock().expect("queue lock");
        (
            state.lanes[Priority::Interactive.lane_index()].len(),
            state.lanes[Priority::Batch.lane_index()].len(),
        )
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `item` on the [`Priority::Interactive`] lane, or returns
    /// it immediately when the queue is full or closed.  Never blocks.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        self.try_push_with(item, Priority::Interactive)
    }

    /// Enqueues `item` on the given lane, or returns it immediately when
    /// the queue is full or closed.  Never blocks.
    pub fn try_push_with(&self, item: T, priority: Priority) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.lanes[priority.lane_index()].push_back((Instant::now(), item));
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until an item is available and returns it — interactive
    /// lane first, FIFO within a lane; returns `None` once the queue is
    /// closed *and* both lanes are drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            for lane in 0..state.lanes.len() {
                if let Some((admitted, item)) = state.lanes[lane].pop_front() {
                    self.admission_wait[lane].record(admitted.elapsed().as_nanos() as u64);
                    return Some(item);
                }
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).expect("queue lock");
        }
    }

    /// Closes the queue: pending pushes are rejected, blocked consumers
    /// wake up, queued items remain poppable until drained.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_queue_rejects_instead_of_blocking() {
        // The regression this pins: a full queue must hand the item back
        // immediately (so the server can answer `queue_full`), never park
        // the pushing connection thread.
        let queue = BoundedQueue::new(2);
        assert_eq!(queue.try_push(1), Ok(()));
        assert_eq!(queue.try_push(2), Ok(()));
        let start = std::time::Instant::now();
        assert_eq!(queue.try_push(3), Err(PushError::Full(3)));
        assert!(
            start.elapsed() < std::time::Duration::from_millis(100),
            "rejection must be immediate"
        );
        assert_eq!(queue.len(), 2);
        // freeing a slot re-admits
        assert_eq!(queue.pop(), Some(1));
        assert_eq!(queue.try_push(3), Ok(()));
    }

    #[test]
    fn capacity_is_shared_across_lanes() {
        let queue = BoundedQueue::new(2);
        assert_eq!(queue.try_push_with(1, Priority::Batch), Ok(()));
        assert_eq!(queue.try_push_with(2, Priority::Interactive), Ok(()));
        assert_eq!(
            queue.try_push_with(3, Priority::Interactive),
            Err(PushError::Full(3))
        );
        assert_eq!(queue.lane_depths(), (1, 1));
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let queue = BoundedQueue::new(0);
        assert_eq!(queue.try_push(9), Err(PushError::Full(9)));
        assert!(queue.is_empty());
    }

    #[test]
    fn close_wakes_blocked_consumers_and_drains_first() {
        let queue = Arc::new(BoundedQueue::new(4));
        queue.try_push(7).unwrap();
        let q = Arc::clone(&queue);
        let consumer = std::thread::spawn(move || {
            let mut seen = Vec::new();
            while let Some(v) = q.pop() {
                seen.push(v);
            }
            seen
        });
        queue.try_push(8).unwrap();
        queue.close();
        assert_eq!(queue.try_push(9), Err(PushError::Closed(9)));
        let seen = consumer.join().unwrap();
        assert_eq!(seen, vec![7, 8]);
    }

    #[test]
    fn fifo_order_is_preserved_within_a_lane() {
        let queue = BoundedQueue::new(16);
        for i in 0..5 {
            queue.try_push_with(i, Priority::Batch).unwrap();
        }
        let drained: Vec<i32> = (0..5).map(|_| queue.pop().unwrap()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn interactive_items_leapfrog_queued_batch_items() {
        // The prioritisation contract: an interactive request admitted
        // *after* a pile of batch work is served first — FIFO holds within
        // each lane.
        let queue = BoundedQueue::new(8);
        queue.try_push_with("b1", Priority::Batch).unwrap();
        queue.try_push_with("b2", Priority::Batch).unwrap();
        queue.try_push_with("i1", Priority::Interactive).unwrap();
        queue.try_push_with("b3", Priority::Batch).unwrap();
        queue.try_push_with("i2", Priority::Interactive).unwrap();
        assert_eq!(queue.lane_depths(), (2, 3));
        let drained: Vec<&str> = (0..5).map(|_| queue.pop().unwrap()).collect();
        assert_eq!(drained, vec!["i1", "i2", "b1", "b2", "b3"]);
        assert_eq!(queue.lane_depths(), (0, 0));
    }

    #[test]
    fn readmission_after_rejection_preserves_fifo_order() {
        // The admission-ordering contract under reject-and-retry: a
        // request bounced with `queue_full` and re-submitted once a slot
        // frees must be served before any same-lane request admitted after
        // it — otherwise a client that dutifully retries could be starved
        // by later arrivals.
        let queue = BoundedQueue::new(2);
        queue.try_push("r1").unwrap();
        queue.try_push("r2").unwrap();
        assert_eq!(queue.try_push("r3"), Err(PushError::Full("r3")));
        assert_eq!(queue.pop(), Some("r1"));
        queue.try_push("r3").unwrap(); // the retry is admitted…
        assert_eq!(queue.try_push("r4"), Err(PushError::Full("r4")));
        assert_eq!(queue.pop(), Some("r2"));
        queue.try_push("r4").unwrap(); // …and a later request after it
        assert_eq!(
            queue.pop(),
            Some("r3"),
            "the re-submitted request must precede the later admission"
        );
        assert_eq!(queue.pop(), Some("r4"));
    }

    #[test]
    fn admission_wait_is_attributed_per_lane() {
        let queue = BoundedQueue::new(4);
        queue.try_push_with("i", Priority::Interactive).unwrap();
        queue.try_push_with("b", Priority::Batch).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert_eq!(queue.pop(), Some("i"));
        assert_eq!(queue.pop(), Some("b"));
        let waits = queue.admission_wait_snapshots();
        assert_eq!(waits.len(), N_LANES);
        assert_eq!(waits[Priority::Interactive.lane_index()].count(), 1);
        assert_eq!(waits[Priority::Batch.lane_index()].count(), 1);
        assert!(
            waits.iter().all(|w| w.max_nanos() >= 2_000_000),
            "both items waited at least the 2ms sleep"
        );
    }

    #[test]
    fn retries_under_contention_are_never_starved_or_reordered() {
        // Producers hammer a tiny queue, retrying on `queue_full`; a
        // consumer asserts that each producer's items arrive in submission
        // order (FIFO per producer ⇒ no retried item was overtaken by a
        // later item from the same producer, all producers push to one
        // lane) and that every item arrives (no starvation).
        const PRODUCERS: usize = 4;
        const ITEMS: usize = 64;
        let queue = Arc::new(BoundedQueue::new(3));
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || {
                    for seq in 0..ITEMS {
                        let mut item = (p, seq);
                        loop {
                            match queue.try_push(item) {
                                Ok(()) => break,
                                Err(PushError::Full(back)) => {
                                    item = back;
                                    std::thread::yield_now();
                                }
                                Err(PushError::Closed(_)) => panic!("queue closed early"),
                            }
                        }
                    }
                })
            })
            .collect();
        let consumer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                let mut next_expected = [0usize; PRODUCERS];
                for _ in 0..PRODUCERS * ITEMS {
                    let (p, seq) = queue.pop().expect("producers still pushing");
                    assert_eq!(
                        seq, next_expected[p],
                        "producer {p}'s items arrived out of admission order"
                    );
                    next_expected[p] = seq + 1;
                }
                next_expected
            })
        };
        for h in producers {
            h.join().unwrap();
        }
        let next_expected = consumer.join().unwrap();
        assert_eq!(
            next_expected, [ITEMS; PRODUCERS],
            "every retried item must eventually be admitted and served"
        );
    }
}
