//! # cvcp-server
//!
//! A network serving front-end over the CVCP execution engine: a std-only
//! TCP server speaking newline-delimited JSON that turns model-selection
//! requests into job DAGs on a shared [`Engine`](cvcp_engine::Engine) and
//! streams per-parameter progress followed by a final ranked selection.
//!
//! The value proposition is the shared engine: every request served by one
//! process multiplexes over one worker pool and one content-keyed
//! [`ArtifactCache`](cvcp_engine::ArtifactCache), so concurrent selections
//! on the same replicas reuse each other's distance matrices, density
//! hierarchies and seeding structures — the serving traffic *is* what
//! makes the cache pay.
//!
//! ## Protocol (one JSON object per line, both directions)
//!
//! | request                        | response stream                           |
//! |--------------------------------|-------------------------------------------|
//! | `{"hello":{"version":2}}`      | `hello_ack` (granted version + limits)     |
//! | `{"type":"select", …}`         | `progress`* then `result` (or `error`)     |
//! | `{"type":"stats"}`             | `stats` (cache, queue, connections,        |
//! |                                | request counters)                          |
//! | `{"type":"metrics"}`           | `metrics` (latency histograms, workers,    |
//! |                                | cache latencies, last traced profile)      |
//! | `{"type":"ping"}`              | `pong`                                     |
//! | `{"type":"shutdown"}`          | `shutdown_ack`, then the server stops      |
//!
//! A `select` request names a replica (`dataset`), an algorithm family
//! (`fosc` / `mpck`), a candidate grid (`params`), the side-information
//! draw (`side_info`), the fold count and a `seed`.  The streamed result
//! is **bit-identical** to running
//! [`select_model_with`](cvcp_core::select_model_with) in-process on the
//! same request — the contract the smoke tests assert end-to-end.
//!
//! Connections are served by a single readiness event loop rather than a
//! thread each, so open connections cost buffers, not threads.  A
//! connection's first line selects its protocol version (the full matrix
//! lives in [`protocol`]): without a hello it speaks **v1** — one
//! request, one response stream, then the server closes it — exactly
//! what pre-v2 clients expect.  After `{"hello":{"version":2}}` it is
//! **v2**: persistent and pipelined, any number of requests in flight at
//! once (up to `CVCP_MAX_IN_FLIGHT`), responses correlated by their
//! echoed `"id"`.  The [`client::Connection`] handle wraps the client
//! side of both.
//!
//! In either version, disconnecting while selections are queued or
//! running cancels their job DAGs (observable in the `stats` counters);
//! a full request queue answers `queue_full` immediately instead of
//! blocking.
//!
//! Requests may carry an optional `"priority"` field (`"interactive"` /
//! `"batch"`, default interactive or `CVCP_DEFAULT_PRIORITY`): the
//! request queue and the engine's worker pool both drain the interactive
//! lane first, so a latency-sensitive selection overtakes queued batch
//! work — at the queue *and* at the job level, while a batch graph is
//! already in flight.  The lane never changes results.
//!
//! Requests may also carry `"trace": true` to run traced: the `result`
//! then includes a `"profile"` object (critical path, per-worker
//! occupancy, steal ratio), and when the server was started with
//! `CVCP_TRACE_DIR` a Chrome `trace_event` file named after the request
//! id is written there.  Tracing never changes the selection itself.
//!
//! ```no_run
//! use cvcp_engine::Engine;
//! use cvcp_server::{Server, ServerConfig};
//! use std::sync::Arc;
//!
//! let engine = Arc::new(Engine::parallel());
//! let server = Server::start(&ServerConfig::from_env(), engine).unwrap();
//! println!("listening on {}", server.local_addr());
//! server.wait(); // until a client sends {"type":"shutdown"}
//! ```

#![warn(missing_docs)]

pub mod client;
mod event_loop;
pub mod protocol;
pub mod queue;
mod server;

pub use client::Connection;
pub use protocol::{
    ConnectionGauges, HistogramSummary, KindLatencyMetrics, MetricsPayload, RankedEntry,
    RankedSelection, Request, RequestStats, Response, StatsSnapshot, WireError, WorkerMetrics,
};
pub use queue::{BoundedQueue, PushError};
pub use server::{Server, ServerConfig};
