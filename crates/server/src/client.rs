//! A small client library for the wire protocol: one persistent,
//! pipelined v2 [`Connection`] handle (plus v1 one-shot helpers), shared
//! by the `cvcp-client` example, the integration tests and the CI
//! probes.
//!
//! The handle is deliberately synchronous and thin — connect once, pump
//! requests in with [`Connection::send`], pump events out with
//! [`Connection::next_event`] — because the multiplexing intelligence
//! lives on the wire: every response carries the `"id"` of the request
//! it answers, so a caller keeping a map of its outstanding ids can
//! drive any number of in-flight selections over one socket.
//!
//! ```no_run
//! use cvcp_core::{Algorithm, SelectionRequest, SideInfoSpec};
//! use cvcp_server::client::Connection;
//! use cvcp_server::Response;
//!
//! let request = SelectionRequest {
//!     id: String::new(), // empty: `send` assigns `client-<n>`
//!     dataset: "aloi:0".into(),
//!     algorithm: Algorithm::Fosc,
//!     params: vec![3, 6, 9],
//!     side_info: SideInfoSpec::LabelFraction(0.2),
//!     n_folds: 5,
//!     stratified: true,
//!     seed: 42,
//!     priority: None,
//!     trace: false,
//! };
//! let mut conn = Connection::connect("127.0.0.1:7878").unwrap();
//! let a = conn.send(&request).unwrap();
//! let b = conn.send(&request).unwrap(); // pipelined on the same socket
//! let mut pending = vec![a, b];
//! while !pending.is_empty() {
//!     match conn.next_event().unwrap() {
//!         Response::Result { id, .. } => pending.retain(|p| *p != id),
//!         Response::Error { id, .. } => pending.retain(|p| Some(p) != id.as_ref()),
//!         _ => {}
//!     }
//! }
//! ```

use crate::protocol::{Request, Response};
use cvcp_core::SelectionRequest;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A persistent connection to a `cvcp-server`, speaking the negotiated
/// protocol version (v2 unless constructed via
/// [`Connection::connect_v1`]).
pub struct Connection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    version: u64,
    max_in_flight: usize,
    max_frame_bytes: usize,
    auto_id: u64,
}

impl Connection {
    /// Connects and negotiates protocol v2: sends
    /// `{"hello":{"version":2}}` and consumes the server's `hello_ack`.
    /// The granted version and the connection limits are available via
    /// the accessors afterwards.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Connection> {
        Self::connect_with_version(addr, 2)
    }

    /// Connects and negotiates the given protocol version (useful for
    /// compatibility testing).  The server grants `min(version, 2)`.
    pub fn connect_with_version(
        addr: impl ToSocketAddrs,
        version: u64,
    ) -> std::io::Result<Connection> {
        let mut conn = Self::connect_v1(addr)?;
        conn.send_request(&Request::Hello { version })?;
        match conn.next_event()? {
            Response::HelloAck {
                version,
                max_in_flight,
                max_frame_bytes,
            } => {
                conn.version = version;
                conn.max_in_flight = max_in_flight;
                conn.max_frame_bytes = max_frame_bytes;
                Ok(conn)
            }
            Response::Error { error, .. } => Err(std::io::Error::other(format!(
                "negotiation failed: {}: {}",
                error.code, error.message
            ))),
            other => Err(std::io::Error::other(format!(
                "negotiation failed: unexpected response {other:?}"
            ))),
        }
    }

    /// Connects **without** a hello: the connection speaks v1 (one
    /// request, one response stream, then the server closes it).
    pub fn connect_v1(addr: impl ToSocketAddrs) -> std::io::Result<Connection> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true).ok();
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Connection {
            reader,
            writer,
            version: 1,
            max_in_flight: 1,
            max_frame_bytes: 0,
            auto_id: 0,
        })
    }

    /// The negotiated protocol version (1 or 2).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The server's per-connection pipelining cap (from the `hello_ack`;
    /// 1 on a v1 connection, which carries one request by construction).
    pub fn max_in_flight(&self) -> usize {
        self.max_in_flight
    }

    /// The server's frame-size limit in bytes (from the `hello_ack`;
    /// 0 when unknown, i.e. on a v1 connection).
    pub fn max_frame_bytes(&self) -> usize {
        self.max_frame_bytes
    }

    /// Sends one selection request and returns the id its responses will
    /// echo.  An empty `request.id` gets a client-assigned `client-<n>`
    /// id first, so the returned id always correlates.
    pub fn send(&mut self, request: &SelectionRequest) -> std::io::Result<String> {
        let mut request = request.clone();
        if request.id.is_empty() {
            self.auto_id += 1;
            request.id = format!("client-{}", self.auto_id);
        }
        let id = request.id.clone();
        self.send_request(&Request::Select(request))?;
        Ok(id)
    }

    /// Writes one raw request line (control requests, explicit hellos).
    pub fn send_request(&mut self, request: &Request) -> std::io::Result<()> {
        let mut line = request.to_line();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()
    }

    /// Blocks for the next server event on this connection.  Events of
    /// concurrently in-flight requests arrive interleaved in completion
    /// order; correlate by their echoed id.  EOF surfaces as
    /// [`std::io::ErrorKind::UnexpectedEof`], unparsable lines as
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn next_event(&mut self) -> std::io::Result<Response> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Response::from_line(&line).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad response line: {}: {}", e.code, e.message),
            )
        })
    }
}

/// v1 one-shot: opens a fresh connection, sends one request and returns
/// the first response — the pre-v2 interaction pattern, kept for
/// backward-compatible tooling (`--mode stats` / `ping` / `shutdown`).
pub fn one_shot(addr: impl ToSocketAddrs, request: &Request) -> std::io::Result<Response> {
    let mut conn = Connection::connect_v1(addr)?;
    conn.send_request(request)?;
    conn.next_event()
}
