//! Wire-protocol v2 integration tests: version negotiation, pipelined
//! multiplexing with bit-identical results, framing robustness (partial
//! reads, slow-loris, oversized frames, garbage mid-pipeline) and the
//! admission limits (`in_flight_limit`, `duplicate_id`, `server_busy`).
//!
//! The ≥500-idle-connections thread-bound test lives in its own binary
//! (`idle_connections.rs`) so this binary's test threads don't disturb
//! its `/proc/self/status` thread counting.

use cvcp_core::{Algorithm, Engine, SelectionRequest, SideInfoSpec};
use cvcp_server::client::Connection;
use cvcp_server::{RankedSelection, Request, Response, Server, ServerConfig};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn start_server(config: ServerConfig) -> Server {
    Server::start(&config, Arc::new(Engine::new(2))).expect("bind loopback")
}

fn default_server(workers: usize) -> Server {
    start_server(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        queue_depth: 16,
        workers,
        ..ServerConfig::default()
    })
}

fn request_for(id: &str, seed: u64) -> SelectionRequest {
    SelectionRequest {
        id: id.to_string(),
        dataset: "iris_like".to_string(),
        algorithm: Algorithm::Fosc,
        params: vec![3, 6, 9],
        side_info: SideInfoSpec::LabelFraction(0.2),
        n_folds: 4,
        stratified: true,
        seed,
        priority: None,
        trace: false,
    }
}

fn assert_bit_identical(a: &RankedSelection, b: &RankedSelection) {
    assert_eq!(a.best_param, b.best_param);
    assert_eq!(a.best_score.to_bits(), b.best_score.to_bits());
    assert_eq!(a.evaluations.len(), b.evaluations.len());
    for (x, y) in a.evaluations.iter().zip(&b.evaluations) {
        assert_eq!((x.param, x.score.to_bits()), (y.param, y.score.to_bits()));
    }
    assert_eq!(a.ranking.len(), b.ranking.len());
    for (x, y) in a.ranking.iter().zip(&b.ranking) {
        assert_eq!((x.param, x.score.to_bits()), (y.param, y.score.to_bits()));
    }
}

/// Pumps `conn` until a terminal response for `id` arrives; other ids'
/// events are ignored.
fn wait_result(conn: &mut Connection, id: &str) -> RankedSelection {
    loop {
        match conn.next_event().expect("read event") {
            Response::Result {
                id: got, selection, ..
            } if got == id => return selection,
            Response::Error { id: got, error } if got.as_deref() == Some(id) => {
                panic!("request {id} failed: {}: {}", error.code, error.message)
            }
            _ => {}
        }
    }
}

#[test]
fn hello_negotiates_versions_and_rejects_version_zero() {
    let server = default_server(1);
    let addr = server.local_addr();

    // v2 is granted verbatim, with the connection limits advertised.
    let conn = Connection::connect(addr).expect("v2 handshake");
    assert_eq!(conn.version(), 2);
    assert!(conn.max_in_flight() >= 1);
    assert!(conn.max_frame_bytes() >= 1 << 16);

    // A v1 hello is honored (explicitly downgraded persistent framing is
    // still one-request-per-connection).
    let conn = Connection::connect_with_version(addr, 1).expect("v1 handshake");
    assert_eq!(conn.version(), 1);

    // Future versions are capped at what the server speaks today.
    let conn = Connection::connect_with_version(addr, 7).expect("v7 handshake");
    assert_eq!(conn.version(), 2);

    // Version 0 does not exist: structured refusal, then the server
    // closes the connection.
    let err = match Connection::connect_with_version(addr, 0) {
        Err(err) => err,
        Ok(_) => panic!("v0 must be refused"),
    };
    assert!(
        err.to_string().contains("unsupported_version"),
        "unexpected error: {err}"
    );

    // A malformed hello is refused the same way.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"{\"hello\":{\"version\":\"two\"}}\n")
        .expect("send");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    match Response::from_line(&line).expect("well-formed response") {
        Response::Error { error, .. } => assert_eq!(error.code, "unsupported_version"),
        other => panic!("expected unsupported_version, got {other:?}"),
    }
    line.clear();
    assert_eq!(
        reader.read_line(&mut line).expect("read eof"),
        0,
        "server must close after refusing the hello"
    );
    server.shutdown();
}

#[test]
fn pipelined_requests_interleave_and_stay_bit_identical_to_v1() {
    let server = default_server(2);
    let addr = server.local_addr();

    // Two different selections pipelined on ONE v2 connection.
    let first = request_for("pipe-a", 20_140_324);
    let second = request_for("pipe-b", 99);
    let mut conn = Connection::connect(addr).expect("v2 handshake");
    conn.send(&first).expect("send first");
    conn.send(&second).expect("send second");

    let mut results: BTreeMap<String, RankedSelection> = BTreeMap::new();
    let mut progress: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    while results.len() < 2 {
        match conn.next_event().expect("read event") {
            Response::Progress { id, completed, .. } => {
                progress.entry(id).or_default().push(completed)
            }
            Response::Result { id, selection, .. } => {
                results.insert(id, selection);
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    // Both requests streamed all their progress on the shared socket,
    // and each id's events kept their order.
    for id in ["pipe-a", "pipe-b"] {
        let seen = progress.get(id).expect("progress for each request");
        assert_eq!(seen, &vec![1, 2, 3], "progress order for {id}");
    }

    // Each pipelined result is bit-identical to the same request served
    // the v1 way: one fresh connection per request, no hello.
    for request in [&first, &second] {
        let mut baseline = Connection::connect_v1(addr).expect("v1 connect");
        baseline.send(request).expect("v1 send");
        let served = wait_result(&mut baseline, &request.id);
        assert_bit_identical(&results[&request.id], &served);
    }

    // The connection is still usable afterwards (persistent, not
    // close-after-terminal like v1).
    let third = request_for("pipe-c", 7);
    conn.send(&third).expect("send third");
    wait_result(&mut conn, "pipe-c");
    server.shutdown();
}

#[test]
fn slow_loris_byte_at_a_time_requests_still_parse() {
    let server = default_server(1);
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");

    // The hello dribbles in one byte at a time across many read ticks;
    // the incremental framer must hold partial lines indefinitely.
    for byte in b"{\"hello\":{\"version\":2}}\n" {
        stream.write_all(&[*byte]).expect("send byte");
        stream.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(2));
    }
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("read ack");
    match Response::from_line(&line).expect("well-formed response") {
        Response::HelloAck { version, .. } => assert_eq!(version, 2),
        other => panic!("expected hello_ack, got {other:?}"),
    }

    // A ping split across two writes with a pause in between.
    stream.write_all(b"{\"type\":").expect("send prefix");
    stream.flush().expect("flush");
    std::thread::sleep(Duration::from_millis(20));
    stream.write_all(b"\"ping\"}\n").expect("send suffix");
    stream.flush().expect("flush");
    line.clear();
    reader.read_line(&mut line).expect("read pong");
    assert_eq!(
        Response::from_line(&line).expect("well-formed response"),
        Response::Pong
    );
    server.shutdown();
}

#[test]
fn oversized_frame_is_rejected_and_v2_pipeline_survives() {
    let server = default_server(1);
    // The advertised frame limit, read off a throwaway handshake.
    let max_frame = Connection::connect(server.local_addr())
        .expect("v2 handshake")
        .max_frame_bytes();
    let mut junk = vec![b'x'; max_frame + 4096];
    junk.push(b'\n');

    // Raw stream: one request in flight, then a frame larger than the
    // advertised limit on the SAME connection.
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .write_all(b"{\"hello\":{\"version\":2}}\n")
        .expect("hello");
    let request_line = {
        let mut line = Request::Select(request_for("survivor", 1)).to_line();
        line.push('\n');
        line
    };
    stream
        .write_all(request_line.as_bytes())
        .expect("send select");
    stream.write_all(&junk).expect("send oversized frame");
    stream.flush().expect("flush");

    let reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut saw_ack = false;
    let mut saw_too_large = false;
    let mut saw_result = false;
    for line in reader.lines() {
        let line = line.expect("read line");
        match Response::from_line(&line).expect("well-formed response") {
            Response::HelloAck { .. } => saw_ack = true,
            Response::Error { error, .. } => {
                assert_eq!(error.code, "frame_too_large", "unexpected error: {error:?}");
                saw_too_large = true;
            }
            Response::Result { id, .. } => {
                assert_eq!(id, "survivor");
                saw_result = true;
                break;
            }
            _ => {}
        }
    }
    assert!(saw_ack, "hello_ack arrived");
    assert!(saw_too_large, "oversized frame earned frame_too_large");
    assert!(
        saw_result,
        "the in-flight request survived the oversized frame"
    );

    // The connection is still alive: a ping after the rejected frame
    // still answers.
    stream.write_all(b"{\"type\":\"ping\"}\n").expect("ping");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read pong");
    assert_eq!(
        Response::from_line(&line).expect("well-formed response"),
        Response::Pong
    );
    server.shutdown();
}

#[test]
fn garbage_mid_pipeline_does_not_kill_other_in_flight_requests() {
    let server = default_server(1);
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .write_all(b"{\"hello\":{\"version\":2}}\n")
        .expect("hello");
    fn send_select(stream: &mut TcpStream, request: SelectionRequest) {
        let mut line = Request::Select(request).to_line();
        line.push('\n');
        stream.write_all(line.as_bytes()).expect("send select");
    }
    send_select(&mut stream, request_for("g1", 5));
    // Garbage between the two pipelined requests.
    stream
        .write_all(b"this is not json\n")
        .expect("send garbage");
    send_select(&mut stream, request_for("g2", 6));
    stream.flush().expect("flush");

    let reader = BufReader::new(stream);
    let mut parse_errors = 0;
    let mut completed = Vec::new();
    for line in reader.lines() {
        let line = line.expect("read line");
        match Response::from_line(&line).expect("well-formed response") {
            Response::Error { id, error } => {
                assert_eq!(error.code, "parse_error");
                assert_eq!(id, None, "garbage has no id to correlate");
                parse_errors += 1;
            }
            Response::Result { id, .. } => {
                completed.push(id);
                if completed.len() == 2 {
                    break;
                }
            }
            _ => {}
        }
    }
    assert_eq!(parse_errors, 1, "the garbage line earned one parse_error");
    completed.sort();
    assert_eq!(
        completed,
        vec!["g1".to_string(), "g2".to_string()],
        "both pipelined requests completed despite the garbage between them"
    );
    server.shutdown();
}

#[test]
fn in_flight_cap_and_duplicate_ids_are_refused_per_connection() {
    // workers = 0: admitted requests stay in flight forever, making the
    // per-connection bookkeeping deterministic.
    let server = start_server(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        queue_depth: 16,
        workers: 0,
        max_in_flight: 2,
        ..ServerConfig::default()
    });
    let mut conn = Connection::connect(server.local_addr()).expect("v2 handshake");
    assert_eq!(conn.max_in_flight(), 2);

    conn.send(&request_for("a", 1)).expect("send a");
    conn.send(&request_for("a", 2)).expect("send duplicate a");
    match conn.next_event().expect("read") {
        Response::Error { id, error } => {
            assert_eq!(id.as_deref(), Some("a"));
            assert_eq!(error.code, "duplicate_id");
        }
        other => panic!("expected duplicate_id, got {other:?}"),
    }

    conn.send(&request_for("b", 3)).expect("send b");
    conn.send(&request_for("c", 4)).expect("send c");
    match conn.next_event().expect("read") {
        Response::Error { id, error } => {
            assert_eq!(id.as_deref(), Some("c"));
            assert_eq!(error.code, "in_flight_limit");
        }
        other => panic!("expected in_flight_limit, got {other:?}"),
    }

    // The gauges see one connection with two requests in flight.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = server.stats();
        let conns = &stats.connections;
        if conns.open == 1 && conns.active == 1 && conns.in_flight_requests == 2 {
            assert_eq!(conns.idle, 0);
            break;
        }
        assert!(Instant::now() < deadline, "gauges never settled: {stats:?}");
        std::thread::sleep(Duration::from_millis(10));
    }

    // A second, idle connection raises `open` and `idle` but not
    // `active`.
    let _idle = Connection::connect(server.local_addr()).expect("second handshake");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = server.stats();
        let conns = &stats.connections;
        if conns.open == 2 && conns.idle == 1 && conns.active == 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "idle gauge never settled: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
}

#[test]
fn connection_cap_refuses_with_server_busy() {
    let server = start_server(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        queue_depth: 4,
        workers: 1,
        max_connections: 1,
        ..ServerConfig::default()
    });
    // The first connection occupies the single slot (the handshake
    // round-trip guarantees it is registered with the loop).
    let _held = Connection::connect(server.local_addr()).expect("first handshake");

    let stream = TcpStream::connect(server.local_addr()).expect("second connect");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read refusal");
    match Response::from_line(&line).expect("well-formed response") {
        Response::Error { error, .. } => assert_eq!(error.code, "server_busy"),
        other => panic!("expected server_busy, got {other:?}"),
    }
    line.clear();
    assert_eq!(
        reader.read_line(&mut line).expect("read eof"),
        0,
        "refused connection is closed"
    );
    server.shutdown();
}
