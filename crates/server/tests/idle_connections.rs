//! The headline scaling property of the readiness loop: hundreds of idle
//! v2 connections cost buffers, not threads.
//!
//! This test lives in its own integration-test binary on purpose — it
//! counts this process's threads via `/proc/self/status`, and sibling
//! tests running concurrently in the same binary would pollute the
//! count.

use cvcp_core::Engine;
use cvcp_server::client::Connection;
use cvcp_server::{Server, ServerConfig};
use std::sync::Arc;

/// Reads this process's live thread count from `/proc/self/status`.
fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line")
}

#[test]
fn hundreds_of_idle_connections_do_not_cost_threads() {
    const IDLE_CONNECTIONS: usize = 500;
    const WORKERS: usize = 2;

    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        queue_depth: 8,
        workers: WORKERS,
        max_connections: IDLE_CONNECTIONS + 8,
        ..ServerConfig::default()
    };
    let engine = Arc::new(Engine::new(2));
    let before = thread_count();
    let server = Server::start(&config, Arc::clone(&engine)).expect("bind loopback");
    let with_server = thread_count();
    // workers + accept + event loop (the engine pool was already up).
    assert!(
        with_server <= before + WORKERS + 2,
        "server startup spawned {} threads, expected at most {}",
        with_server - before,
        WORKERS + 2
    );

    // Open hundreds of fully negotiated v2 connections and keep them
    // idle.  Each handshake round-trips, so by the time `connect`
    // returns the server has registered the connection with its loop.
    let mut held = Vec::with_capacity(IDLE_CONNECTIONS);
    for i in 0..IDLE_CONNECTIONS {
        let conn = Connection::connect(server.local_addr())
            .unwrap_or_else(|e| panic!("handshake {i} failed: {e}"));
        assert_eq!(conn.version(), 2);
        held.push(conn);
    }

    let stats = server.stats();
    assert_eq!(stats.connections.open, IDLE_CONNECTIONS);
    assert_eq!(stats.connections.idle, IDLE_CONNECTIONS);
    assert_eq!(stats.connections.active, 0);
    assert_eq!(stats.connections.in_flight_requests, 0);

    // The property under test: the thread count is bounded by the worker
    // count plus O(1) loop threads — NOT by the connection count.
    let with_connections = thread_count();
    assert!(
        with_connections <= before + WORKERS + 2,
        "{IDLE_CONNECTIONS} idle connections raised the thread count \
         from {with_server} to {with_connections}; connections must not cost threads"
    );

    drop(held);
    server.shutdown();
}
