//! End-to-end smoke tests: a real TCP server on a loopback port, driven
//! through the wire protocol, asserted against the in-process engine.
//!
//! These are the same three contracts the CI `server-smoke` job asserts
//! via the `serve` binary and the `cvcp-client` example:
//!
//! 1. a served FOSC selection is bit-identical to `select_model_with`;
//! 2. a served MPCKMeans selection is bit-identical to `select_model_with`;
//! 3. a client disconnect mid-request cancels the DAG (visible in `stats`).

use cvcp_core::{Algorithm, Engine, Priority, SelectionRequest, SideInfoSpec};
use cvcp_server::{RankedSelection, Request, Response, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn start_server(workers: usize, queue_depth: usize) -> Server {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        queue_depth,
        workers,
        ..ServerConfig::default()
    };
    Server::start(&config, Arc::new(Engine::with_exact_threads(4))).expect("bind loopback")
}

fn send_line(server: &Server, request: &Request) -> TcpStream {
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut line = request.to_line();
    line.push('\n');
    stream.write_all(line.as_bytes()).expect("send request");
    stream.flush().expect("flush request");
    stream
}

fn collect_responses(stream: TcpStream) -> Vec<Response> {
    let reader = BufReader::new(stream);
    let mut out = Vec::new();
    for line in reader.lines() {
        let line = line.expect("read response line");
        let response = Response::from_line(&line).expect("well-formed response");
        let terminal = matches!(response, Response::Result { .. } | Response::Error { .. });
        out.push(response);
        if terminal {
            break;
        }
    }
    out
}

fn request_for(algorithm: Algorithm, id: &str) -> SelectionRequest {
    SelectionRequest {
        id: id.to_string(),
        dataset: "iris_like".to_string(),
        algorithm,
        params: match algorithm {
            Algorithm::Fosc => vec![3, 6, 9],
            Algorithm::MpckMeans => vec![2, 3, 4],
        },
        side_info: SideInfoSpec::LabelFraction(0.2),
        n_folds: 4,
        stratified: true,
        seed: 20_140_324,
        priority: None,
        trace: false,
    }
}

fn assert_bit_identical(served: &RankedSelection, local: &RankedSelection) {
    assert_eq!(served.best_param, local.best_param);
    assert_eq!(
        served.best_score.to_bits(),
        local.best_score.to_bits(),
        "best_score bits differ"
    );
    assert_eq!(served.evaluations.len(), local.evaluations.len());
    for (s, l) in served.evaluations.iter().zip(&local.evaluations) {
        assert_eq!(s.param, l.param);
        assert_eq!(
            s.score.to_bits(),
            l.score.to_bits(),
            "score bits differ at param {}",
            s.param
        );
    }
    assert_eq!(served.ranking.len(), local.ranking.len());
    for (s, l) in served.ranking.iter().zip(&local.ranking) {
        assert_eq!((s.param, s.score.to_bits()), (l.param, l.score.to_bits()));
    }
}

fn served_selection_matches_in_process(algorithm: Algorithm) {
    let server = start_server(2, 8);
    let request = request_for(algorithm, "smoke");
    let stream = send_line(&server, &Request::Select(request.clone()));
    let responses = collect_responses(stream);

    let progress: Vec<_> = responses
        .iter()
        .filter_map(|r| match r {
            Response::Progress {
                param,
                score,
                total,
                ..
            } => Some((*param, *score, *total)),
            _ => None,
        })
        .collect();
    assert_eq!(
        progress.len(),
        request.params.len(),
        "one progress event per candidate: {responses:?}"
    );
    assert!(progress
        .iter()
        .all(|&(_, _, total)| total == request.params.len()));

    let served = match responses.last() {
        Some(Response::Result { id, selection, .. }) => {
            assert_eq!(id, "smoke");
            selection.clone()
        }
        other => panic!("expected a result, got {other:?}"),
    };

    // The reference: the identical request lowered and run in-process.
    let local = RankedSelection::from_selection(
        &request
            .realize()
            .expect("valid request")
            .select(&Engine::with_exact_threads(4)),
    );
    assert_bit_identical(&served, &local);

    // Progress events carry the same scores as the final evaluations.
    for (param, score, _) in progress {
        let eval = served
            .evaluations
            .iter()
            .find(|e| e.param == param)
            .expect("progress param is a candidate");
        assert_eq!(eval.score.to_bits(), score.to_bits());
    }

    let stats = server.stats();
    assert_eq!(stats.requests.completed, 1);
    assert_eq!(stats.requests.cancelled, 0);
    server.shutdown();
}

#[test]
fn served_fosc_selection_is_bit_identical_to_in_process() {
    served_selection_matches_in_process(Algorithm::Fosc);
}

#[test]
fn served_mpck_selection_is_bit_identical_to_in_process() {
    served_selection_matches_in_process(Algorithm::MpckMeans);
}

#[test]
fn client_disconnect_mid_request_cancels_the_dag() {
    let server = start_server(1, 8);
    // A heavyweight request (125×144 ALOI replica, full MPCK k-grid) so the
    // selection is reliably still running when the disconnect lands.
    let request = SelectionRequest {
        id: "to-cancel".to_string(),
        dataset: "aloi:0".to_string(),
        algorithm: Algorithm::MpckMeans,
        params: vec![],
        side_info: SideInfoSpec::LabelFraction(0.2),
        n_folds: 5,
        stratified: true,
        seed: 7,
        priority: None,
        trace: false,
    };
    let stream = send_line(&server, &Request::Select(request));
    // Drop the connection immediately: the watcher sees EOF and cancels.
    drop(stream);

    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = server.stats();
        if stats.requests.cancelled == 1 {
            assert_eq!(stats.requests.completed, 0, "request must not complete");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "cancellation never surfaced in stats: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // The engine survives: a fresh request on the same server still works.
    let follow_up = request_for(Algorithm::Fosc, "after-cancel");
    let responses = collect_responses(send_line(&server, &Request::Select(follow_up)));
    assert!(
        matches!(responses.last(), Some(Response::Result { .. })),
        "follow-up failed: {responses:?}"
    );
    server.shutdown();
}

#[test]
fn interactive_request_completes_while_batch_graph_is_in_flight() {
    // The starvation regression: a large batch selection saturates the
    // engine's workers with queued jobs; an interactive request submitted
    // afterwards must still complete while the batch graph is in flight —
    // its jobs jump the engine's interactive lane instead of queueing
    // behind the batch fan-out.
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        queue_depth: 8,
        workers: 2,
        ..ServerConfig::default()
    };
    let server = Server::start(&config, Arc::new(Engine::new(2))).expect("bind loopback");

    // The batch request: a heavyweight full-k-grid MPCKMeans selection on
    // the 125×144 ALOI replica (tens of engine jobs).
    let batch = SelectionRequest {
        id: "big-batch".to_string(),
        dataset: "aloi:0".to_string(),
        algorithm: Algorithm::MpckMeans,
        params: vec![],
        side_info: SideInfoSpec::LabelFraction(0.2),
        n_folds: 5,
        stratified: true,
        seed: 11,
        priority: Some(Priority::Batch),
        trace: false,
    };
    let batch_stream = send_line(&server, &Request::Select(batch));
    // Wait until the batch request has been admitted and picked up.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.stats().requests.received == 0 {
        assert!(Instant::now() < deadline, "batch request never admitted");
        std::thread::sleep(Duration::from_millis(10));
    }

    // The interactive request: small FOSC grid on the iris-like replica.
    let mut interactive = request_for(Algorithm::Fosc, "small-interactive");
    interactive.priority = Some(Priority::Interactive);
    let responses = collect_responses(send_line(&server, &Request::Select(interactive)));
    assert!(
        matches!(responses.last(), Some(Response::Result { .. })),
        "interactive request failed: {responses:?}"
    );

    // The batch request must still be in flight: only the interactive one
    // has completed.
    let stats = server.stats();
    assert_eq!(
        stats.requests.completed, 1,
        "interactive must complete while the batch graph is in flight: {stats:?}"
    );

    // Dropping the batch connection cancels its DAG; wait for the server
    // to notice so shutdown is clean.
    drop(batch_stream);
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let stats = server.stats();
        if stats.requests.cancelled + stats.requests.completed >= 2 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "batch request neither completed nor cancelled: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    server.shutdown();
}

#[test]
fn full_queue_rejects_with_a_structured_error() {
    // workers = 0: nothing drains the queue, so admission control is
    // deterministic — the first request occupies the single slot, the
    // second must be rejected with `queue_full` immediately.
    let server = start_server(0, 1);
    let first = send_line(
        &server,
        &Request::Select(request_for(Algorithm::Fosc, "first")),
    );
    // Wait until the first request is actually queued.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.stats().queue_depth == 0 {
        assert!(Instant::now() < deadline, "first request never queued");
        std::thread::sleep(Duration::from_millis(10));
    }
    let responses = collect_responses(send_line(
        &server,
        &Request::Select(request_for(Algorithm::Fosc, "second")),
    ));
    match responses.as_slice() {
        [Response::Error { id, error }] => {
            assert_eq!(id.as_deref(), Some("second"));
            assert_eq!(error.code, "queue_full");
        }
        other => panic!("expected queue_full, got {other:?}"),
    }
    let stats = server.stats();
    assert_eq!(stats.requests.rejected, 1);
    assert_eq!(stats.requests.received, 1);
    assert_eq!(stats.queue_capacity, 1);
    drop(first);
    server.shutdown();
}

#[test]
fn invalid_and_malformed_requests_get_structured_errors() {
    let server = start_server(1, 4);

    // Malformed JSON.
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.write_all(b"this is not json\n").expect("send");
    let responses = collect_responses(stream);
    match responses.as_slice() {
        [Response::Error { error, .. }] => assert_eq!(error.code, "parse_error"),
        other => panic!("expected parse_error, got {other:?}"),
    }

    // Unknown dataset (semantically invalid).
    let mut bad = request_for(Algorithm::Fosc, "bad");
    bad.dataset = "does_not_exist".to_string();
    let responses = collect_responses(send_line(&server, &Request::Select(bad)));
    match responses.as_slice() {
        [Response::Error { id, error }] => {
            assert_eq!(id.as_deref(), Some("bad"));
            assert_eq!(error.code, "invalid_request");
        }
        other => panic!("expected invalid_request, got {other:?}"),
    }

    // Neither touched the request counters' happy paths.
    let stats = server.stats();
    assert_eq!(stats.requests.received, 0);
    assert_eq!(stats.requests.completed, 0);
    server.shutdown();
}

#[test]
fn traced_request_carries_a_profile_and_stays_bit_identical() {
    let server = start_server(2, 8);
    // Reference: the identical request served untraced.
    let untraced = request_for(Algorithm::Fosc, "plain");
    let responses = collect_responses(send_line(&server, &Request::Select(untraced)));
    let (plain, plain_profile) = match responses.last() {
        Some(Response::Result {
            selection, profile, ..
        }) => (selection.clone(), profile.clone()),
        other => panic!("expected a result, got {other:?}"),
    };
    assert!(
        plain_profile.is_none(),
        "profile must not appear unless the request opts in"
    );

    let mut traced = request_for(Algorithm::Fosc, "traced");
    traced.trace = true;
    let responses = collect_responses(send_line(&server, &Request::Select(traced.clone())));
    let (served, profile) = match responses.last() {
        Some(Response::Result {
            id,
            selection,
            profile,
        }) => {
            assert_eq!(id, "traced");
            (selection.clone(), profile.clone())
        }
        other => panic!("expected a result, got {other:?}"),
    };
    assert_bit_identical(&served, &plain);

    let profile = profile.expect("traced request returns a profile");
    let n_jobs = profile
        .get("n_jobs")
        .and_then(|v| v.as_usize())
        .expect("profile.n_jobs");
    assert!(n_jobs > 0, "profile covers the graph: {profile:?}");
    assert_eq!(
        profile.get("graph").and_then(|v| v.as_str()),
        Some("traced"),
        "profile is named after the request id"
    );

    // The metrics endpoint retains the last traced profile and reports
    // engine activity from both requests.
    match collect_responses(send_line(&server, &Request::Metrics)).as_slice() {
        [Response::Metrics(metrics)] => {
            assert_eq!(metrics.engine_threads, 4);
            let last = metrics.last_profile.as_ref().expect("last_profile is set");
            assert_eq!(last.get("graph").and_then(|v| v.as_str()), Some("traced"));
            let jobs: u64 = metrics.job_run.iter().map(|h| h.count).sum();
            assert!(jobs > 0, "job-run histograms saw work: {metrics:?}");
            let admitted: u64 = metrics.queue_admission_wait.iter().map(|h| h.count).sum();
            assert!(admitted >= 2, "both requests waited in the queue");
        }
        other => panic!("expected metrics, got {other:?}"),
    }

    // The stats payload exposes the same admission waits per lane.
    match collect_responses(send_line(&server, &Request::Stats)).as_slice() {
        [Response::Stats(stats)] => {
            let admitted: u64 = stats.queue_wait.iter().map(|h| h.count).sum();
            assert!(admitted >= 2, "stats carry admission waits: {stats:?}");
        }
        other => panic!("expected stats, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn trace_dir_exports_a_chrome_trace_per_selection() {
    let dir = std::env::temp_dir().join(format!("cvcp-trace-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        queue_depth: 8,
        workers: 1,
        trace_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };
    let server = Server::start(&config, Arc::new(Engine::new(2))).expect("bind loopback");

    // The request does NOT opt in on the wire: the server-side trace dir
    // alone must produce the file, and the wire result must stay
    // profile-free.
    let responses = collect_responses(send_line(
        &server,
        &Request::Select(request_for(Algorithm::Fosc, "to-disk")),
    ));
    match responses.last() {
        Some(Response::Result { profile, .. }) => assert!(profile.is_none()),
        other => panic!("expected a result, got {other:?}"),
    }

    let path = dir.join("to-disk.trace.json");
    let raw = std::fs::read_to_string(&path).expect("trace file written");
    let doc = cvcp_core::Json::parse(&raw).expect("trace file is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    assert!(
        events
            .iter()
            .any(|e| e.get("ph").and_then(|v| v.as_str()) == Some("X")),
        "trace contains span events"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stats_ping_and_protocol_shutdown_round_trip() {
    let server = start_server(1, 4);
    let addr = server.local_addr();

    let responses = collect_responses(send_line(&server, &Request::Ping));
    assert_eq!(responses, vec![Response::Pong]);

    match collect_responses(send_line(&server, &Request::Stats)).as_slice() {
        [Response::Stats(stats)] => {
            assert_eq!(stats.queue_capacity, 4);
            assert_eq!(stats.workers, 1);
            assert_eq!(stats.engine_threads, 4);
        }
        other => panic!("expected stats, got {other:?}"),
    }

    let responses = collect_responses(send_line(&server, &Request::Shutdown));
    assert_eq!(responses, vec![Response::ShutdownAck]);
    server.wait();

    // The listener is gone after a protocol-initiated shutdown.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match TcpStream::connect(addr) {
            Err(_) => break,
            Ok(_) => {
                assert!(Instant::now() < deadline, "listener still accepting");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}
